//! `tinman-run` — run a text-assembly app under the TinMan runtime.
//!
//! ```bash
//! tinman-run app.tasm \
//!     --cor "Vault password=s3cret@vault.example" \
//!     --input username=alice \
//!     --link 3g --stock --scan s3cret
//! ```
//!
//! The world is built from the flags: each `--cor` registers a secret on
//! the trusted node (format `description=plaintext@domain`) and installs an
//! authentication server for its domain that accepts `user=<any>&...&pass=
//! <plaintext>`; each `--input` scripts an `app.input` key. After the run,
//! `--scan <needle>` performs the §5.1 residue scan.

use std::collections::HashMap;
use std::process::ExitCode;

use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};
use tinman::vm::assemble;

struct Options {
    source_path: String,
    cors: Vec<(String, String, String)>, // (description, plaintext, domain)
    inputs: HashMap<String, String>,
    link: LinkProfile,
    stock: bool,
    scans: Vec<String>,
    disasm: bool,
}

fn usage() -> &'static str {
    "usage: tinman-run <app.tasm> [options]\n\
     \n\
     options:\n\
       --cor <description>=<plaintext>@<domain>   register a cor + its site\n\
       --input <key>=<value>                      script an app.input key\n\
       --link wifi|3g                             radio profile (default wifi)\n\
       --stock                                    run without TinMan (typed secrets)\n\
       --scan <needle>                            residue-scan after the run\n\
       --disasm                                   print the disassembly and exit\n"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        source_path: String::new(),
        cors: Vec::new(),
        inputs: HashMap::new(),
        link: LinkProfile::wifi(),
        stock: false,
        scans: Vec::new(),
        disasm: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cor" => {
                let v = it.next().ok_or("--cor needs a value")?;
                let (desc, rest) =
                    v.split_once('=').ok_or("--cor format: description=plaintext@domain")?;
                let (plain, domain) =
                    rest.split_once('@').ok_or("--cor format: description=plaintext@domain")?;
                opts.cors.push((desc.to_owned(), plain.to_owned(), domain.to_owned()));
            }
            "--input" => {
                let v = it.next().ok_or("--input needs a value")?;
                let (k, val) = v.split_once('=').ok_or("--input format: key=value")?;
                opts.inputs.insert(k.to_owned(), val.to_owned());
            }
            "--link" => {
                let v = it.next().ok_or("--link needs a value")?;
                opts.link = match v.as_str() {
                    "wifi" => LinkProfile::wifi(),
                    "3g" => LinkProfile::three_g(),
                    other => return Err(format!("unknown link '{other}'")),
                };
            }
            "--stock" => opts.stock = true,
            "--scan" => {
                opts.scans.push(it.next().ok_or("--scan needs a value")?.clone());
            }
            "--disasm" => opts.disasm = true,
            "--help" | "-h" => return Err(String::new()),
            other if opts.source_path.is_empty() && !other.starts_with('-') => {
                opts.source_path = other.to_owned();
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.source_path.is_empty() {
        return Err("no source file given".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let source = match std::fs::read_to_string(&opts.source_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.source_path);
            return ExitCode::FAILURE;
        }
    };
    let name =
        opts.source_path.rsplit('/').next().unwrap_or("app").trim_end_matches(".tasm").to_owned();
    let app = match assemble(&name, &source) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.disasm {
        print!("{}", tinman::vm::disassemble(&app));
        return ExitCode::SUCCESS;
    }

    // Build the world.
    let mut store = CorStore::new(0xC0FFEE);
    for (desc, plain, _domain) in &opts.cors {
        let domains: Vec<&str> = opts
            .cors
            .iter()
            .filter(|(d, _, _)| d == desc)
            .map(|(_, _, dom)| dom.as_str())
            .collect();
        if store.register(plain, desc, &domains).is_none() {
            eprintln!("error: cor label space exhausted");
            return ExitCode::FAILURE;
        }
    }
    let mut rt = TinmanRuntime::new(store, opts.link.clone(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    for (_, plain, domain) in &opts.cors {
        install_auth_server(
            &mut rt.world,
            tls.clone(),
            AuthServerSpec {
                domain: Box::leak(domain.clone().into_boxed_str()),
                user: opts.inputs.get("username").cloned().unwrap_or_default().leak(),
                password: plain.clone(),
                hash_login: false,
                think: SimDuration::from_millis(200),
                page_bytes: 0,
            },
        );
    }

    let mode = if opts.stock {
        Mode::Stock(opts.cors.iter().map(|(d, p, _)| (d.clone(), p.clone())).collect())
    } else {
        Mode::TinMan
    };
    match rt.run_app(&app, mode, &opts.inputs) {
        Ok(report) => {
            println!("result:    {:?}", report.result);
            println!("latency:   {}", report.latency);
            println!("offloads:  {}", report.offloads);
            println!(
                "dsm:       {} syncs, {} B init, {} B dirty",
                report.dsm.sync_count, report.dsm.init_bytes, report.dsm.dirty_bytes
            );
            println!("methods:   {} client / {} node", report.client_methods, report.node_methods);
            let mut clean = true;
            for needle in &opts.scans {
                let r = rt.scan_residue(needle);
                println!(
                    "scan {:?}: {}",
                    needle,
                    if r.is_clean() {
                        "clean".to_owned()
                    } else {
                        format!("FOUND at {:?}", r.hits)
                    }
                );
                clean &= r.is_clean();
            }
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            ExitCode::FAILURE
        }
    }
}
