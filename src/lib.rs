#![warn(missing_docs)]
//! TinMan facade crate: re-exports the whole reproduction workspace.
pub use tinman_apps as apps;
pub use tinman_chaos as chaos;
pub use tinman_cor as cor;
pub use tinman_core as core;
pub use tinman_dsm as dsm;
pub use tinman_fleet as fleet;
pub use tinman_guard as guard;
pub use tinman_net as net;
pub use tinman_obs as obs;
pub use tinman_sim as sim;
pub use tinman_taint as taint;
pub use tinman_tenant as tenant;
pub use tinman_tls as tls;
pub use tinman_vault as vault;
pub use tinman_vm as vm;
