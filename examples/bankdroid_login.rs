//! The §4.1 BankDroid case study as a runnable scenario.
//!
//! The bank requires `sha256(password)` for login. Hashing the placeholder
//! is the offload trigger; the hash the trusted node computes becomes a
//! *derived cor* with its own placeholder, so neither the password nor its
//! hash ever exists on the phone — while the transaction history the app
//! then fetches is ordinary private data, displayed and cached in
//! plaintext.
//!
//! ```bash
//! cargo run --example bankdroid_login
//! ```

use std::collections::HashMap;

use sha2::{Digest, Sha256};
use tinman::apps::bankdroid::build_bankdroid;
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};

fn main() {
    let password = "correct-horse-battery";

    let mut store = CorStore::new(7);
    store.register(password, "Citibank password", &["citibank.com"]).unwrap();

    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: "citibank.com",
            user: "alice",
            password: password.to_owned(),
            hash_login: true, // the bank checks sha256(password)
            think: SimDuration::from_millis(400),
            page_bytes: 30_000,
        },
    );

    let app = build_bankdroid("citibank.com", "Citibank password");
    let inputs = HashMap::from([("username".to_owned(), "alice".to_owned())]);
    let report = rt.run_app(&app, Mode::TinMan, &inputs).expect("bankdroid runs");

    println!("login result: {:?}", report.result);
    println!("cors on the trusted node now: {} (original + derived)", rt.node.store.len());

    // Neither the password nor its hash is on the device.
    let hash_hex: String =
        Sha256::digest(password.as_bytes()).iter().map(|b| format!("{b:02x}")).collect();
    println!(
        "password residue: {}",
        if rt.scan_residue(password).is_clean() { "none" } else { "FOUND" }
    );
    println!(
        "hash residue:     {} (the hash is a derived cor)",
        if rt.scan_residue(&hash_hex).is_clean() { "none" } else { "FOUND" }
    );

    // The device log shows what the user saw.
    println!("\ndevice log:");
    for line in &rt.client.device_log {
        let shown: String = line.chars().take(72).collect();
        println!("  | {shown}");
    }

    // The audit trail on the trusted node.
    println!("\ntrusted-node audit log ({} entries):", rt.node.audit.len());
    for e in rt.node.audit.entries() {
        println!(
            "  | t={:.2}s cor={:?} domain={:?} decision={:?}",
            e.time.as_secs_f64(),
            e.cor,
            e.domain,
            e.decision
        );
    }
}
