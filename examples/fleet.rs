//! Drive a small fleet of device sessions against a trusted-node pool,
//! then knock a node out and watch its sessions fail over to a replica.
//!
//! Run with `cargo run --release --example fleet`.

use tinman::fleet::{run_fleet, FaultPlan, FleetConfig};

fn main() {
    // A healthy 48-session fleet on 4 workers and 3 nodes.
    let mut cfg = FleetConfig::new(48, 4);
    cfg.nodes = 3;
    let healthy = run_fleet(&cfg).expect("fleet runs");
    println!(
        "healthy pool: {}/{} sessions ok, {:.2} sessions/sim-s, p95 {:.2}s",
        healthy.ok,
        healthy.sessions,
        healthy.sim_throughput,
        healthy.latency.p95.as_secs_f64()
    );
    for n in &healthy.per_node {
        println!(
            "  {:<20} {:>3} sessions  util {:>5.1}%",
            n.name,
            n.sessions,
            n.utilization * 100.0
        );
    }

    // Same fleet, node 0 down: its sessions complete on replicas, paying
    // a simulated backoff penalty.
    cfg.faults = FaultPlan { down_nodes: vec![0], slow_nodes: vec![] };
    let degraded = run_fleet(&cfg).expect("fleet runs");
    println!(
        "\nnode0 down:   {}/{} sessions ok, {} failovers, p95 {:.2}s",
        degraded.ok,
        degraded.sessions,
        degraded.failovers,
        degraded.latency.p95.as_secs_f64()
    );
    for n in &degraded.per_node {
        println!(
            "  {:<20} {:>3} sessions  util {:>5.1}%  [{}]",
            n.name,
            n.sessions,
            n.utilization * 100.0,
            n.health
        );
    }

    // The simulated aggregate is a pure function of the config: rerunning
    // with a different worker count changes nothing but wall clock.
    let mut solo = cfg.clone();
    solo.workers = 1;
    let a = run_fleet(&solo).expect("fleet runs");
    assert_eq!(
        tinman::fleet::FleetReport::simulated_value(&a),
        degraded.simulated_value(),
        "worker count must not affect simulated results"
    );
    println!("\ndeterminism check passed: 1-worker and 4-worker aggregates are identical");
}
