//! Quickstart: protect a password with TinMan in ~40 lines.
//!
//! Builds a world (phone + trusted node + a bank site), registers one cor,
//! runs a login app under TinMan, and shows that (a) the site accepted the
//! real credential and (b) a full device scan finds no trace of it.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};

fn main() {
    let password = "hunter2-sUp3r-s3cret";

    // 1. The trusted node's cor store: the password exists ONLY here.
    //    The phone will get a same-length placeholder.
    let mut store = CorStore::new(42);
    let spec = LoginAppSpec::github();
    store.register(password, spec.cor_description, &[spec.domain]).expect("cor registered");

    // 2. The world: a phone on Wi-Fi, the trusted node, and the site.
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: password.to_owned(),
            hash_login: false,
            think: SimDuration::from_millis(300),
            page_bytes: 50_000,
        },
    );

    // 3. Run the unmodified login app. The user picks the password from
    //    the cor list; the app sees a tainted placeholder; touching it
    //    offloads execution to the trusted node, which performs the send
    //    via SSL session injection + TCP payload replacement.
    let app = build_login_app(&spec);
    let inputs = HashMap::from([("username".to_owned(), "alice".to_owned())]);
    let report = rt.run_app(&app, Mode::TinMan, &inputs).expect("login runs");

    println!("login result:        {:?} (1 = site accepted the real credential)", report.result);
    println!("simulated latency:   {}", report.latency);
    println!("offloads:            {}", report.offloads);
    println!(
        "DSM syncs:           {} ({} B init, {} B dirty)",
        report.dsm.sync_count, report.dsm.init_bytes, report.dsm.dirty_bytes
    );
    println!(
        "methods client/node: {} / {} ({:.1}% offloaded)",
        report.client_methods,
        report.node_methods,
        100.0 * report.offloaded_fraction()
    );

    // 4. The attacker's move: scan the whole device for the password.
    let residue = rt.scan_residue(password);
    println!(
        "\ndevice residue scan: {}",
        if residue.is_clean() {
            "CLEAN — no plaintext anywhere on the phone"
        } else {
            "FOUND (this would be a bug)"
        }
    );
    assert!(residue.is_clean());
}
