//! The §4.2 browser-checkout case study as a runnable scenario.
//!
//! The user pays for an order; card number and CVV come from the cor
//! dropdown, and the trusted node enforces the §4.2 card rules (domain
//! whitelist, time window, rate limit, full audit). The second run of the
//! day trips the rate limit.
//!
//! ```bash
//! cargo run --example browser_checkout
//! ```

use std::collections::HashMap;

use tinman::apps::browser::build_browser_checkout;
use tinman::apps::servers::install_payment_server;
use tinman::cor::{CorStore, PolicyRule};
use tinman::core::error::RuntimeError;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};

fn main() {
    let card = "4111111111111111";
    let cvv = "847";

    let mut store = CorStore::new(5);
    store.register(card, "Visa card number", &["shop.com"]).unwrap();
    store.register(cvv, "Visa security code", &["shop.com"]).unwrap();

    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_payment_server(
        &mut rt.world,
        tls,
        "shop.com",
        card,
        cvv,
        SimDuration::from_millis(350),
    );

    // §4.2 rules: one purchase per day, only to shop.com.
    for cor in rt.node.store.ids() {
        rt.node.policy.set_rule(
            cor,
            PolicyRule {
                domain_whitelist: vec!["shop.com".into()],
                max_uses_per_day: Some(1),
                ..Default::default()
            },
        );
    }

    let app = build_browser_checkout("shop.com", "Visa card number", "Visa security code");
    let inputs = HashMap::from([("amount".to_owned(), "99.95".to_owned())]);

    // First checkout: accepted.
    let report = rt.run_app(&app, Mode::TinMan, &inputs).expect("checkout runs");
    println!("first checkout:  result {:?} (1 = PAID)", report.result);
    println!(
        "card residue:    {}",
        if rt.scan_residue(card).is_clean() { "none" } else { "FOUND" }
    );
    println!("cvv residue:     {}", if rt.scan_residue(cvv).is_clean() { "none" } else { "FOUND" });

    // Second checkout the same day: the rate limit stops it on the node.
    match rt.run_app(&app, Mode::TinMan, &inputs) {
        Err(RuntimeError::PolicyDenied(decision)) => {
            println!("second checkout: DENIED by the trusted node ({decision:?})");
        }
        other => println!("second checkout: unexpected {other:?}"),
    }

    println!("\naudit trail:");
    for e in rt.node.audit.entries() {
        println!("  | cor={:?} domain={:?} decision={:?}", e.cor, e.domain, e.decision);
    }
}
