//! The threat-model scenario: a stolen phone (§2.3, §5).
//!
//! An attacker with physical control of the device (1) dumps its memory
//! and storage hunting for secrets, and (2) runs the victim's own app to
//! abuse the credentials. TinMan's answer: the dump is empty of cor, and
//! the victim's revocation cuts the device off from the trusted node.
//!
//! ```bash
//! cargo run --example stolen_phone
//! ```

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::{CorStore, PolicyDecision};
use tinman::core::error::RuntimeError;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};

fn main() {
    let password = "hunter2-sUp3r-s3cret";
    let spec = LoginAppSpec::paypal();

    let mut store = CorStore::new(11);
    store.register(password, spec.cor_description, &[spec.domain]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: password.to_owned(),
            hash_login: false,
            think: SimDuration::from_millis(200),
            page_bytes: 40_000,
        },
    );

    // The victim used the phone normally this morning.
    let app = build_login_app(&spec);
    let inputs = HashMap::from([("username".to_owned(), "alice".to_owned())]);
    rt.run_app(&app, Mode::TinMan, &inputs).expect("victim's login");
    println!("victim logged in normally.");

    // --- the phone is stolen ---

    // Attack 1: cold-boot-style dump of memory, socket buffers, disk, log.
    let residue = rt.scan_residue(password);
    println!(
        "\n[attack 1] full memory/disk dump scan: {}",
        if residue.is_clean() {
            "NOTHING FOUND — no cor plaintext exists on the device"
        } else {
            "found secrets (bug!)"
        }
    );

    // Attack 2: the thief runs the app (phone unlocked). Before the victim
    // reacts, the trusted node still honours the device... and the thief
    // can log in (cor *abuse* — §5.4 acknowledges this window).
    let report = rt.run_app(&app, Mode::TinMan, &inputs).expect("thief's login");
    println!("\n[attack 2] thief runs the app before revocation: login {:?}", report.result);
    println!("           (the password itself still never touched the phone;");
    println!("            every access is on the audit log and cannot be denied)");

    // The victim notices and revokes the device on the trusted node.
    rt.node.policy.revoke_device("phone-1");
    match rt.run_app(&app, Mode::TinMan, &inputs) {
        Err(RuntimeError::PolicyDenied(PolicyDecision::DeniedRevoked)) => {
            println!("\n[response] victim revokes the device: further cor access DENIED.");
        }
        other => println!("unexpected: {other:?}"),
    }

    println!(
        "\naudit log had {} entries, {} abnormal.",
        rt.node.audit.len(),
        rt.node.audit.abnormal().len()
    );
}
