//! Writing your own app in the text assembly format and running it under
//! TinMan — no builder API needed.
//!
//! The app reads a secret via the cor widget, derives a login body from it
//! (which triggers offloading), sends it, and checks the reply. We then
//! disassemble the image to show the round trip.
//!
//! ```bash
//! cargo run --example custom_app
//! ```

use std::collections::HashMap;

use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};
use tinman::vm::{assemble, disassemble};

const SOURCE: &str = r#"
; my-vault: a hand-written TinMan app
.string desc   "Vault password"
.string site   "vault.example"
.string prefix "user=alice&round=0&pass="
.string okmark "OK"

.native select    "ui.select_cor"
.native connect   "net.connect"
.native handshake "net.tls_handshake"
.native send      "net.send"
.native recv      "net.recv"
.native close     "net.close"
.native show      "ui.show"

.func main args=0 locals=4
  ; pick the secret from the cor list -> tainted placeholder in local 0
  const_s desc
  call_native select 1
  store 0

  ; open https to the vault
  const_s site
  const_i 443
  call_native connect 2
  store 1
  load 1
  call_native handshake 1
  pop

  ; body = prefix + secret  (tainted concat => offload happens HERE)
  const_s prefix
  load 0
  concat
  store 2

  ; send (payload replacement) and read the reply
  load 1
  load 2
  call_native send 2
  pop
  load 1
  call_native recv 1
  store 3

  ; success = reply contains "OK"
  load 3
  const_s okmark
  index_of
  const_i 0
  ge
  load 1
  call_native close 1
  pop
  halt
.end
"#;

fn main() {
    let app = assemble("my-vault", SOURCE).expect("assembles");
    println!(
        "assembled '{}' — {} instructions, image hash {}…\n",
        app.name,
        app.code_len(),
        &app.hash_hex()[..16]
    );

    // World: secret on the trusted node, vault server installed.
    let secret = "v4ult-s3cret-passphrase";
    let mut store = CorStore::new(1);
    store.register(secret, "Vault password", &["vault.example"]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: "vault.example",
            user: "alice",
            password: secret.to_owned(),
            hash_login: false,
            think: SimDuration::from_millis(150),
            page_bytes: 0,
        },
    );

    let report = rt.run_app(&app, Mode::TinMan, &HashMap::new()).expect("app runs");
    println!("login result:  {:?} (1 = accepted)", report.result);
    println!("offloads:      {}", report.offloads);
    println!(
        "residue scan:  {}",
        if rt.scan_residue(secret).is_clean() { "clean" } else { "FOUND (bug)" }
    );

    println!("\n--- disassembly (first 24 lines) ---");
    for line in disassemble(&app).lines().take(24) {
        println!("{line}");
    }
}
