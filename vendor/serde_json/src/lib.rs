//! Offline, API-compatible subset of `serde_json` for this repository.
//!
//! Renders the offline serde [`Value`] data model to JSON text and parses
//! it back. Struct maps become JSON objects; `HashMap`/`BTreeMap` encode
//! as arrays of `[key, value]` pairs (keys need not be strings), sorted so
//! equal maps produce byte-identical text — the workspace hashes and
//! compares encodings.

use std::fmt;

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = Parser { input: s.as_bytes(), pos: 0 }.parse_document()?;
    T::deserialize_value(&value)
}

/// Parses a value of type `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::U64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's shortest-round-trip formatting; add `.0` so the
                // text re-parses as a float, matching serde_json.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value> {
        let v = self.parse_value(0)?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > 192 {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value(depth + 1)?;
                    entries.push((key, val));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.input.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.input.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-borrow the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.input[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let s = self
            .input
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.input.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.input.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

// ---- json! macro ----

/// Builds a [`Value`] from JSON-like syntax, like `serde_json::json!`.
///
/// Supports `null`, nested arrays/objects with string-literal keys, and
/// arbitrary expressions whose types implement `Serialize`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Implementation detail of [`json!`] (tt-muncher).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Seq(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::json_internal!(@array [] (@buf) $($tt)+) };
    ({}) => { $crate::Value::Map(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => { $crate::json_internal!(@object [] $($tt)+) };
    ($other:expr) => { $crate::to_value(&$other) };

    // -- array muncher: accumulate element tokens until a top-level comma --
    (@array [$($done:expr),*] (@buf $($buf:tt)+) , $($rest:tt)*) => {
        $crate::json_internal!(@array
            [$($done,)* $crate::json_internal!($($buf)+)] (@buf) $($rest)*)
    };
    (@array [$($done:expr),*] (@buf $($buf:tt)+)) => {
        $crate::Value::Seq(::std::vec![$($done,)* $crate::json_internal!($($buf)+)])
    };
    (@array [$($done:expr),*] (@buf)) => {
        $crate::Value::Seq(::std::vec![$($done),*])
    };
    (@array [$($done:expr),*] (@buf $($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@array [$($done),*] (@buf $($buf)* $next) $($rest)*)
    };

    // -- object muncher: `"key": <value tokens>` entries --
    (@object [$($done:expr),*]) => {
        $crate::Value::Map(::std::vec![$($done),*])
    };
    (@object [$($done:expr),*] $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@objval [$($done),*] $key (@buf) $($rest)*)
    };
    (@objval [$($done:expr),*] $key:literal (@buf $($buf:tt)+) , $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($done,)* (::std::string::String::from($key),
                         $crate::json_internal!($($buf)+))] $($rest)*)
    };
    (@objval [$($done:expr),*] $key:literal (@buf $($buf:tt)+)) => {
        $crate::Value::Map(::std::vec![$($done,)*
            (::std::string::String::from($key), $crate::json_internal!($($buf)+))])
    };
    (@objval [$($done:expr),*] $key:literal (@buf $($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@objval [$($done),*] $key (@buf $($buf)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn big_u64_round_trips() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v, Value::U64(u64::MAX));
        assert_eq!(to_string(&v).unwrap(), "18446744073709551615");
    }

    #[test]
    fn float_text_reparses_as_float() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a":[1,2,{"b":"x"}],"c":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("A😀".to_owned()));
    }

    #[test]
    fn json_macro_builds_documents() {
        let rows = vec![json!({"x": 1})];
        let n = 2u32;
        let v = json!({
            "experiment": "demo",
            "rows": rows,
            "avg": (n as f64) / 2.0,
            "nested": { "list": [1, 2, 3], "flag": true, "none": null },
        });
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("rows").unwrap().as_seq().unwrap().len(), 1);
        assert_eq!(v.get("avg").unwrap(), &Value::F64(1.0));
        let nested = v.get("nested").unwrap();
        assert_eq!(nested.get("list").unwrap().as_seq().unwrap().len(), 3);
        assert_eq!(nested.get("none").unwrap(), &Value::Null);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = json!({"a": [1, 2], "b": {"c": true}});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(from_str::<Value>("{\"a\":").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("\"\\q\"").is_err());
    }

    #[test]
    fn display_matches_compact_to_string() {
        let v = json!({
            "s": "a\"b\\c\nd",
            "ints": [1, -2, 18446744073709551615u64],
            "f": 2.0,
            "g": 0.25,
            "flag": true,
            "none": null
        });
        assert_eq!(format!("{v}"), to_string(&v).unwrap());
    }
}
