//! Offline, API-compatible subset of `proptest` for this repository.
//!
//! Provides the pieces the workspace's property tests use: the
//! [`proptest!`] macro, `any::<T>()`, integer-range and string-regex
//! strategies, tuple strategies, and `collection::vec`. Generation is
//! deterministic (SplitMix64 seeded from the test name) so failures
//! reproduce; there is no shrinking — the failing inputs are printed
//! instead.

use std::fmt;
use std::ops::Range;

/// Number of cases each property runs.
pub const DEFAULT_CASES: u32 = 64;

/// Deterministic test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds a generator from a test name, so each property gets a
    /// distinct but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Biased toward ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// String strategy from a simplified regex: literal characters,
/// `[a-z0-9_]` classes, and `{n}` / `{m,n}` / `?` / `+` / `*` quantifiers.
/// This covers the patterns property tests actually use.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = *lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

/// One regex atom: candidate characters and a repetition range (inclusive).
type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let mut chars = pat.chars().peekable();
    let mut atoms: Vec<Atom> = Vec::new();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for c in chars.by_ref() {
                    match c {
                        ']' => break,
                        '-' => {
                            prev = Some('-');
                        }
                        c => {
                            if prev == Some('-') && !set.is_empty() {
                                let lo = *set.last().unwrap();
                                for r in (lo as u32 + 1)..=(c as u32) {
                                    if let Some(rc) = char::from_u32(r) {
                                        set.push(rc);
                                    }
                                }
                            } else {
                                set.push(c);
                            }
                            prev = Some(c);
                        }
                    }
                }
                set
            }
            '\\' => vec![chars.next().unwrap_or('\\')],
            '.' => (' '..='~').collect(),
            c => vec![c],
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().unwrap_or(0),
                        b.trim().parse().unwrap_or_else(|_| a.trim().parse().unwrap_or(0)),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            _ => (1, 1),
        };
        if !set.is_empty() {
            atoms.push((set, lo, hi));
        }
    }
    atoms
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Picks a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The proptest prelude: everything the `proptest!` macro and common
/// strategies need in scope.
pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
///
/// Each function runs [`DEFAULT_CASES`] deterministic cases; assertion
/// failures print the generated inputs (no shrinking). An optional
/// `#![cases(N)]` header overrides the case count for every property in
/// the block — use it to keep expensive simulations (whole-fleet runs per
/// case) inside a sane test budget.
#[macro_export]
macro_rules! proptest {
    (#![cases($cases:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::__proptest_fns! { ($cases) $($(#[$meta])* fn $name($($arg in $strat),+) $body)+ }
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::__proptest_fns! {
            ($crate::DEFAULT_CASES) $($(#[$meta])* fn $name($($arg in $strat),+) $body)+
        }
    };
}

/// Expansion backend for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cases:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..$cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    let __dbg = format!(
                        concat!("case {}: ", $(concat!(stringify!($arg), " = {:?} ")),+),
                        __case, $(&$arg),+
                    );
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body)
                    );
                    if let Err(e) = __result {
                        eprintln!("proptest failure in {} — {}", stringify!($name), __dbg);
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )+
    };
}

/// `assert!` that reports the property inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports the property inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports the property inputs on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(0..512usize), &mut rng);
            assert!(w < 512);
        }
    }

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = Strategy::generate("[a-z]{1,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 20);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate("[a-z]{0,40}", &mut rng);
            assert!(t.len() <= 40);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn macro_smoke(v in crate::collection::vec(any::<u8>(), 1..8),
                       flag in any::<bool>()) {
            prop_assert!(!v.is_empty());
            prop_assert_eq!(u8::from(flag) < 2, true);
        }
    }

    use std::sync::atomic::{AtomicU32, Ordering};

    static CASES_RAN: AtomicU32 = AtomicU32::new(0);

    proptest! {
        #![cases(7)]
        // No #[test] here: the wrapper below invokes it and checks the count.
        fn cases_header_overrides_the_count(_x in any::<u64>()) {
            CASES_RAN.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn cases_header_is_respected() {
        cases_header_overrides_the_count();
        assert_eq!(CASES_RAN.load(Ordering::Relaxed), 7);
    }
}
