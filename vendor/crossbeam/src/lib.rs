//! Offline subset of `crossbeam` for this repository.
//!
//! Provides `crossbeam::channel` — multi-producer **multi-consumer**
//! channels with optional capacity bounds and blocking backpressure —
//! implemented over `std` mutexes and condvars. Semantics match the parts
//! of crossbeam-channel the workspace relies on: cloneable senders and
//! receivers, `send` blocking when a bounded channel is full, `recv`
//! returning `Err` once the channel is empty and all senders are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Signalled when an item arrives or the last sender leaves.
        recv_cv: Condvar,
        /// Signalled when space frees up or the last receiver leaves.
        send_cv: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; cloneable (work-stealing consumers).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A bounded channel: `send` blocks while `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                let _guard = self.0.queue.lock().unwrap();
                self.0.recv_cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = self.0.queue.lock().unwrap();
                self.0.send_cv.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.queue.lock().unwrap();
            loop {
                if self.0.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match self.0.cap {
                    Some(cap) if queue.len() >= cap => {
                        queue = self.0.send_cv.wait(queue).unwrap();
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.0.recv_cv.notify_one();
            Ok(())
        }

        /// Number of queued messages (racy; diagnostics only).
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap().len()
        }

        /// True when no messages are queued (racy; diagnostics only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives. Fails only when
        /// the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.0.send_cv.notify_one();
                    return Ok(msg);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.recv_cv.wait(queue).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap();
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.0.send_cv.notify_one();
                return Ok(msg);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of queued messages (racy; diagnostics only).
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap().len()
        }

        /// True when no messages are queued (racy; diagnostics only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn mpmc_fan_out_fan_in() {
            let (tx, rx) = unbounded::<u32>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || rx.iter().count())
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 1000);
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = {
                let tx = tx.clone();
                thread::spawn(move || {
                    tx.send(3).unwrap(); // blocks until a recv frees a slot
                    true
                })
            };
            thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert!(t.join().unwrap());
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn recv_errors_after_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_without_receivers() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
