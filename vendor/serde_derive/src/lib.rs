//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! subset.
//!
//! The build environment has no registry access, so `syn`/`quote` are
//! unavailable; this macro parses the item declaration directly from the
//! `proc_macro` token stream. Supported shapes — which cover every derived
//! type in this workspace — are non-generic structs (named, tuple, unit)
//! and non-generic enums with unit, tuple and struct variants. `#[serde]`
//! attributes are not supported (none are used here); generics produce a
//! compile error rather than bad code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives the offline `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the offline `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (offline subset): generic type `{name}` is not supported"
        ));
    }
    let shape = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, shape })
}

type Peekable = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`, including doc comments) and a
/// visibility qualifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(toks: &mut Peekable) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Consumes a type up to a top-level comma. Angle brackets appear as plain
/// punctuation in the token stream, so nesting depth is tracked explicitly;
/// commas inside `()`/`[]` groups are invisible (groups are atomic tokens).
fn skip_type(toks: &mut Peekable) {
    let mut angle_depth = 0i32;
    while let Some(tt) = toks.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(i)) => {
                fields.push(i.to_string());
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field, got {other:?}")),
                }
                skip_type(&mut toks);
                toks.next(); // the comma (or None at end)
            }
            other => return Err(format!("expected field name, got {other:?}")),
        }
    }
}

/// Counts tuple-struct / tuple-variant fields: top-level commas + 1.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut n = 0;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return n;
        }
        skip_type(&mut toks);
        n += 1;
        toks.next(); // the comma
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                toks.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while let Some(tt) = toks.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            toks.next();
        }
        toks.next(); // the comma
        variants.push((name, shape));
    }
}

// ---- code generation ----

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(__m)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(","))
        }
        Shape::Unit => "::serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(","))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), {payload})]),",
                            binds.join(",")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "__m.push((::std::string::String::from({f:?}), \
                                     ::serde::Serialize::serialize_value({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => {{ \
                             let mut __m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new(); {pushes} \
                             ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Map(__m))]) }},",
                            fields.join(",")
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn serialize_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__m, {f:?}, {name:?})?"))
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::unexpected({name:?}, \"object\", __v))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(",")
            )
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::unexpected({name:?}, \"array\", __v))?; \
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(::std::format!(\
                 \"{name}: expected {n} elements, got {{}}\", __s.len()))); }} \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(",")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize_value(__val)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize_value(&__s[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => {{ let __s = __val.as_seq().ok_or_else(|| \
                             ::serde::unexpected({name:?}, \"array\", __val))?; \
                             if __s.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"{name}::{v}: wrong arity\")); }} \
                             ::std::result::Result::Ok({name}::{v}({})) }},",
                            inits.join(",")
                        ))
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(__m, {f:?}, {name:?})?"))
                            .collect();
                        Some(format!(
                            "{v:?} => {{ let __m = __val.as_map().ok_or_else(|| \
                             ::serde::unexpected({name:?}, \"object\", __val))?; \
                             ::std::result::Result::Ok({name}::{v} {{ {} }}) }},",
                            inits.join(",")
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"{name}: unknown variant {{__other}}\"))), }}, \
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__tag, __val) = &__entries[0]; \
                 match __tag.as_str() {{ {data_arms} \
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"{name}: unknown variant {{__other}}\"))), }} }}, \
                 __other => ::std::result::Result::Err(\
                 ::serde::unexpected({name:?}, \"variant\", __other)), }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn deserialize_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
