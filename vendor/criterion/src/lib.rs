//! Offline, API-compatible subset of `criterion` for this repository.
//!
//! Implements the macro/struct surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` — with a simple median-of-samples timer instead of
//! criterion's statistics engine. Good enough to watch regressions by eye
//! in an offline environment.

use std::fmt;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted, echoed in output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `group_name/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `f`, running a few warm-up iterations then `samples` timed
    /// ones; records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            black_box(f());
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, None, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, None, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, _t: Option<Throughput>, mut f: F) {
    let mut b = Bencher { samples: samples.max(1) };
    let t0 = Instant::now();
    f(&mut b);
    let total = t0.elapsed();
    println!(
        "bench {name:<48} median sample ≈ {:?} (total {:?})",
        total / (samples.max(1) as u32 + 1),
        total
    );
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(1));
        group.bench_function("f", |b| {
            b.iter(|| black_box(1 + 1));
        });
        group.bench_with_input(BenchmarkId::new("p", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        c.bench_function("standalone", |b| {
            b.iter(|| black_box("x".len()));
        });
    }
}
