//! Offline subset of `parking_lot` for this repository: `Mutex`, `RwLock`
//! and `Condvar` with parking_lot's poison-free API, implemented over the
//! std primitives (a panicking lock holder aborts the wait chain anyway in
//! this workspace's usage).

use std::fmt;
use std::sync::{self, Condvar as StdCondvar};

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar(StdCondvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Blocks on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety dance around std's guard-by-value API: temporarily move
        // the std guard out and back. `take_mut`-style replace is not
        // possible without unsafe, so wait via the raw std pieces.
        replace_with(guard, |g| {
            MutexGuard(self.0.wait(g.0).unwrap_or_else(sync::PoisonError::into_inner))
        });
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

fn replace_with<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // std::mem::replace needs a placeholder value, which a guard doesn't
    // have; use the pointer dance instead. The closure cannot panic
    // meaningfully here: a poisoned wait is unwrapped into the guard.
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            true
        });
        thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        assert!(t.join().unwrap());
    }
}
