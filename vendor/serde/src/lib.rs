//! Offline, API-compatible subset of `serde` for this repository.
//!
//! The build environment has no crates.io access, so the real `serde`
//! cannot be fetched. This crate implements the subset the workspace
//! actually uses: the `Serialize`/`Deserialize` traits (via a simplified
//! self-describing [`Value`] data model rather than serde's visitor
//! machinery), derive macros for non-generic structs and enums, and
//! implementations for the std types that appear in derived fields.
//!
//! The wire behaviour mirrors serde's JSON conventions where it matters:
//! structs become maps, newtype structs are transparent, enums are
//! externally tagged (`"Variant"` / `{"Variant": ...}`), `Option::None`
//! is null. Maps and sets serialize in sorted order so equal values
//! always produce byte-identical encodings (the repo hashes encodings).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
///
/// This plays the role of both serde's serializer output and its
/// deserializer input; `serde_json` renders it to/from JSON text.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside the i64 range (or any u64 source).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered `(key, value)` pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Map lookup by key (linear; maps here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

// Matches serde_json's Display: compact JSON text. The float rule (append
// `.0` when the shortest form has no `.`/exponent) must stay in sync with
// serde_json's writer so `format!("{v}")` equals `to_string(&v)`.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::F64(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    if s.contains(['.', 'e', 'E']) {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Value::Seq(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Map(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Value::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type out of `v`.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by the derive expansion ----

/// Looks up a struct field in a serialized map and deserializes it.
#[doc(hidden)]
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str, ty: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize_value(v).map_err(|e| Error(format!("{ty}.{name}: {e}"))),
        None => Err(Error(format!("{ty}: missing field `{name}`"))),
    }
}

/// Type-mismatch error constructor used by the derive expansion.
#[doc(hidden)]
pub fn unexpected(ty: &str, want: &str, got: &Value) -> Error {
    Error(format!("{ty}: expected {want}, got {}", got.kind()))
}

// ---- primitive impls ----

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(unexpected("bool", "bool", v)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(unexpected(stringify!($t), "integer", v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )+};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("negative integer for unsigned type"))?,
                    _ => return Err(unexpected(stringify!($t), "integer", v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )+};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let f = *self as f64;
                // JSON has no non-finite numbers; mirror serde_json's null.
                if f.is_finite() { Value::F64(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(unexpected(stringify!($t), "number", v)),
                }
            }
        }
    )+};
}
impl_float!(f32, f64);

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(unexpected("char", "single-character string", v)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(unexpected("String", "string", v)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// `&'static str` fields appear in derived structs (device/link profile
// names). Deserializing one has to intern the owned string; these are a
// handful of short, fixed names, so leaking is fine.
impl Deserialize for &'static str {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(unexpected("&str", "string", v)),
        }
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(unexpected("()", "null", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

// ---- sequences ----

fn seq_of<'a>(v: &'a Value, ty: &str) -> Result<&'a [Value], Error> {
    v.as_seq().ok_or_else(|| unexpected(ty, "array", v))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        seq_of(v, "Vec")?.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        seq_of(v, "VecDeque")?.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = seq_of(v, "array")?;
        if items.len() != N {
            return Err(Error(format!("array: expected {N} elements, got {}", items.len())));
        }
        let vec: Vec<T> = items.iter().map(T::deserialize_value).collect::<Result<_, _>>()?;
        vec.try_into().map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let items = seq_of(v, "tuple")?;
                let expect = [$(stringify!($n)),+].len();
                if items.len() != expect {
                    return Err(Error(format!(
                        "tuple: expected {expect} elements, got {}", items.len()
                    )));
                }
                Ok(($($t::deserialize_value(&items[$n])?,)+))
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---- maps and sets (sorted encodings for determinism) ----

fn sorted_pairs<K: Serialize, V: Serialize>(it: impl Iterator<Item = (K, V)>) -> Value {
    let mut pairs: Vec<Value> =
        it.map(|(k, v)| Value::Seq(vec![k.serialize_value(), v.serialize_value()])).collect();
    pairs.sort_by(cmp_value);
    Value::Seq(pairs)
}

fn sorted_items<T: Serialize>(it: impl Iterator<Item = T>) -> Value {
    let mut items: Vec<Value> = it.map(|v| v.serialize_value()).collect();
    items.sort_by(cmp_value);
    Value::Seq(items)
}

/// Total order over values, used only to sort map/set encodings.
fn cmp_value(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => 2,
            Value::Str(_) => 3,
            Value::Seq(_) => 4,
            Value::Map(_) => 5,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::I64(x), Value::I64(y)) => x.cmp(y),
        (Value::U64(x), Value::U64(y)) => x.cmp(y),
        (Value::I64(x), Value::U64(y)) => {
            if *x < 0 {
                Ordering::Less
            } else {
                (*x as u64).cmp(y)
            }
        }
        (Value::U64(x), Value::I64(y)) => {
            if *y < 0 {
                Ordering::Greater
            } else {
                x.cmp(&(*y as u64))
            }
        }
        (Value::F64(x), Value::F64(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::F64(x), Value::I64(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Value::I64(x), Value::F64(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::F64(x), Value::U64(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Value::U64(x), Value::F64(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => {
            for (i, j) in x.iter().zip(y.iter()) {
                let c = cmp_value(i, j);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((ka, va), (kb, vb)) in x.iter().zip(y.iter()) {
                let c = ka.cmp(kb).then_with(|| cmp_value(va, vb));
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        sorted_pairs(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        seq_of(v, "map")?.iter().map(<(K, V)>::deserialize_value).collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        sorted_pairs(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        seq_of(v, "map")?.iter().map(<(K, V)>::deserialize_value).collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        sorted_items(self.iter())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        seq_of(v, "set")?.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        sorted_items(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        seq_of(v, "set")?.iter().map(T::deserialize_value).collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize_value(&some.serialize_value()).unwrap(), some);
        assert_eq!(Option::<u32>::deserialize_value(&none.serialize_value()).unwrap(), none);
    }

    #[test]
    fn map_encoding_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_owned(), 2u8);
        m.insert("a".to_owned(), 1u8);
        let v = m.serialize_value();
        let items = v.as_seq().unwrap();
        assert_eq!(items[0].as_seq().unwrap()[0], Value::Str("a".into()));
        let back: HashMap<String, u8> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn array_round_trip() {
        let a: [u8; 4] = [1, 2, 3, 4];
        let back: [u8; 4] = Deserialize::deserialize_value(&a.serialize_value()).unwrap();
        assert_eq!(back, a);
    }
}
