//! The implicit-IV leakage attack of the paper's Figure 7.
//!
//! Setting: TLS 1.0 CBC chains records — record *N+1*'s IV is record *N*'s
//! last ciphertext block. If TinMan allowed such a session to be offloaded,
//! the protocol would need the trusted node to send its last ciphertext
//! block back to the client as the next IV. But the client *owns the
//! session keys* (it established the session), so from that ciphertext
//! block it can decrypt the node's record:
//!
//! ```text
//! P12 = decrypt(C12, key) XOR C11
//! ```
//!
//! where `C11` is the last block the client itself sent and `C12` is the
//! block the node produced (received as "the next IV"). `P12` contains the
//! cor — the exact data TinMan exists to keep off the device.
//!
//! [`recover_block`] implements the recovery; the tests demonstrate it
//! succeeding against TLS 1.0 chaining and being *structurally impossible*
//! with explicit IVs (there is no ciphertext to send back — the next IV is
//! an independent random value).

use crate::cipher::{cbc_encrypt, Xtea, BLOCK};

/// The Figure 7 computation: recovers plaintext block `i` of a CBC stream
/// given the key, ciphertext block `i` and ciphertext block `i-1` (or the
/// IV for the first block).
///
/// This is not an attack on CBC itself — the "attacker" legitimately holds
/// the session key. It shows why *state synchronization* of implicit-IV
/// sessions inherently reveals remote plaintext to the key holder.
pub fn recover_block(key: &Xtea, c_prev: &[u8; BLOCK], c_i: &[u8; BLOCK]) -> [u8; BLOCK] {
    let mut block = *c_i;
    key.decrypt_block(&mut block);
    for (b, p) in block.iter_mut().zip(c_prev.iter()) {
        *b ^= p;
    }
    block
}

/// Demonstration harness: simulates the offload-under-TLS-1.0 scenario and
/// returns the plaintext the client recovers. Used by the security-analysis
/// bench and the tests.
///
/// * `key` — the session key (held by the client, used by the node).
/// * `client_last_ct_block` — C11: the last ciphertext block the client
///   sent before offloading.
/// * `node_record_plaintext` — what the node encrypts (contains the cor).
///
/// Returns `(what the client recovers of block 1, the node's ciphertext)`.
pub fn demo_implicit_iv_leak(
    key: &Xtea,
    client_last_ct_block: [u8; BLOCK],
    node_record_plaintext: &[u8],
) -> (Vec<u8>, Vec<u8>) {
    // The node continues the chain: IV = client's last ciphertext block.
    let node_ct = cbc_encrypt(key, &client_last_ct_block, node_record_plaintext);

    // The client receives ciphertext blocks as "IV synchronization" and,
    // holding the key, decrypts every block of the node's record.
    let mut recovered = Vec::new();
    let mut prev = client_last_ct_block;
    for chunk in node_ct.chunks(BLOCK) {
        let mut c = [0u8; BLOCK];
        c.copy_from_slice(chunk);
        recovered.extend_from_slice(&recover_block(key, &prev, &c));
        prev = c;
    }
    // Strip CBC padding for readability.
    if let Some(&pad) = recovered.last() {
        let pad = pad as usize;
        if (1..=BLOCK).contains(&pad) && pad <= recovered.len() {
            recovered.truncate(recovered.len() - pad);
        }
    }
    (recovered, node_ct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_recovers_the_cor_under_implicit_iv() {
        let key = Xtea::new(b"the-session-key!");
        let c11 = [0xAAu8; BLOCK]; // last block the client sent
        let cor = b"passwd=hunter2-the-cor!!";
        let (recovered, _ct) = demo_implicit_iv_leak(&key, c11, cor);
        assert_eq!(recovered, cor, "Figure 7: the client fully recovers the node's plaintext");
    }

    #[test]
    fn recovery_requires_the_true_previous_block() {
        let key = Xtea::new(b"the-session-key!");
        let c11 = [0xAAu8; BLOCK];
        let cor = b"16-byte-secret!!";
        let ct = cbc_encrypt(&key, &c11, cor);
        let mut c1 = [0u8; BLOCK];
        c1.copy_from_slice(&ct[..BLOCK]);
        // With the right chaining block the first 8 plaintext bytes appear.
        assert_eq!(&recover_block(&key, &c11, &c1), b"16-byte-");
        // With a wrong one they do not.
        assert_ne!(&recover_block(&key, &[0u8; BLOCK], &c1), b"16-byte-");
    }

    #[test]
    fn explicit_iv_gives_the_client_nothing_to_decrypt_with() {
        // Under TLS 1.1+ the node's record carries its own random IV and
        // the client never needs any of the node's ciphertext to continue:
        // its next record uses a fresh local IV. The "leak channel" (IV
        // synchronization) does not exist. We show the *absence of the
        // dependency*: two explicit-IV records seal independently of each
        // other's ciphertext.
        let key = Xtea::new(b"the-session-key!");
        let iv_a = [1u8; BLOCK];
        let iv_b = [2u8; BLOCK];
        let a = cbc_encrypt(&key, &iv_a, b"node record with cor....");
        let b = cbc_encrypt(&key, &iv_b, b"client's next record....");
        // Nothing in b depends on a (unlike chaining, where b's IV = last
        // block of a).
        let b2 = cbc_encrypt(&key, &iv_b, b"client's next record....");
        assert_eq!(b, b2, "client record independent of node ciphertext");
        assert_ne!(a, b);
    }
}
