//! TLS sessions: key derivation, record sealing/opening, and the
//! session-state export/injection that powers TinMan's SSL offloading.

use serde::{Deserialize, Serialize};
use sha2::{Digest, Sha256};
use tinman_sim::SplitMix64;

use crate::cipher::{cbc_decrypt, cbc_encrypt, Rc4, Xtea, BLOCK};
use crate::error::TlsError;
use crate::mac::{mac_eq, record_mac, MAC_LEN};
use crate::record::{ContentType, Record};

/// Protocol versions the toy stack speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TlsVersion {
    /// TLS 1.0 — CBC uses the *implicit IV* chaining that Figure 7 attacks.
    Tls10,
    /// TLS 1.1 — explicit per-record IV.
    Tls11,
    /// TLS 1.2 — explicit per-record IV (what the paper's test sites speak).
    Tls12,
}

impl TlsVersion {
    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            TlsVersion::Tls10 => 0x31,
            TlsVersion::Tls11 => 0x32,
            TlsVersion::Tls12 => 0x33,
        }
    }

    /// Parses a wire byte.
    pub fn from_byte(b: u8) -> Result<TlsVersion, TlsError> {
        match b {
            0x31 => Ok(TlsVersion::Tls10),
            0x32 => Ok(TlsVersion::Tls11),
            0x33 => Ok(TlsVersion::Tls12),
            other => Err(TlsError::BadHandshake(format!("unknown version byte {other:#x}"))),
        }
    }

    /// True if CBC records carry an explicit per-record IV at this version.
    pub fn explicit_iv(self) -> bool {
        !matches!(self, TlsVersion::Tls10)
    }
}

/// Cipher suites.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CipherSuite {
    /// RC4 stream cipher + HMAC-SHA256/16.
    Rc4HmacSha256,
    /// XTEA-CBC + HMAC-SHA256/16 (IV regime per [`TlsVersion`]).
    XteaCbcHmacSha256,
}

/// Which side of the connection a session is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TlsRole {
    /// The connecting client (the mobile device).
    Client,
    /// The accepting server (the web site).
    Server,
}

/// The complete transferable state of one directionally-keyed session —
/// what the client exports to the trusted node during SSL session injection
/// (§3.2 / Figure 8 step 1).
///
/// With an explicit-IV version this is all the node ever needs, and nothing
/// flows back except the new sequence number. With TLS 1.0 the chaining IVs
/// would also have to be exchanged — the leak TinMan's version floor
/// forbids.
#[derive(Clone, Serialize, Deserialize)]
pub struct SessionState {
    /// Negotiated version.
    pub version: TlsVersion,
    /// Negotiated suite.
    pub suite: CipherSuite,
    /// This endpoint's role.
    pub role: TlsRole,
    /// Key for records this endpoint sends.
    pub send_key: [u8; 16],
    /// Key for records this endpoint receives.
    pub recv_key: [u8; 16],
    /// MAC key for sent records.
    pub send_mac_key: [u8; 16],
    /// MAC key for received records.
    pub recv_mac_key: [u8; 16],
    /// Sequence number of the next sent record.
    pub send_seq: u64,
    /// Sequence number of the next expected record.
    pub recv_seq: u64,
    /// RC4 keystream offset already consumed on the send side.
    pub send_stream_offset: u64,
    /// RC4 keystream offset already consumed on the receive side.
    pub recv_stream_offset: u64,
    /// CBC chaining IV for the send direction (implicit-IV mode only).
    pub send_chain_iv: [u8; BLOCK],
    /// CBC chaining IV for the receive direction (implicit-IV mode only).
    pub recv_chain_iv: [u8; BLOCK],
}

impl std::fmt::Debug for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Key material is never printed.
        write!(
            f,
            "SessionState {{ version: {:?}, suite: {:?}, role: {:?}, send_seq: {}, recv_seq: {} }}",
            self.version, self.suite, self.role, self.send_seq, self.recv_seq
        )
    }
}

/// A live record-layer session.
#[derive(Clone, Debug)]
pub struct TlsSession {
    state: SessionState,
    /// Deterministic nonce source for explicit IVs.
    rng: SplitMix64,
    /// Unparsed wire bytes awaiting a complete record.
    rx_buf: Vec<u8>,
}

fn derive_key(master: &[u8; 32], label: &str) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(master);
    h.update(label.as_bytes());
    let d = h.finalize();
    let mut out = [0u8; 16];
    out.copy_from_slice(&d[..16]);
    out
}

impl TlsSession {
    /// Builds the two directional key sets from a master secret and wires a
    /// session for `role`. Client-send uses the "c" keys, server-send the
    /// "s" keys.
    pub fn from_master(
        master: [u8; 32],
        version: TlsVersion,
        suite: CipherSuite,
        role: TlsRole,
        nonce_seed: u64,
    ) -> TlsSession {
        let c_key = derive_key(&master, "client-write");
        let s_key = derive_key(&master, "server-write");
        let c_mac = derive_key(&master, "client-mac");
        let s_mac = derive_key(&master, "server-mac");
        let c_iv = derive_key(&master, "client-iv");
        let s_iv = derive_key(&master, "server-iv");
        let mut civ = [0u8; BLOCK];
        civ.copy_from_slice(&c_iv[..BLOCK]);
        let mut siv = [0u8; BLOCK];
        siv.copy_from_slice(&s_iv[..BLOCK]);
        let (send_key, recv_key, send_mac_key, recv_mac_key, send_chain_iv, recv_chain_iv) =
            match role {
                TlsRole::Client => (c_key, s_key, c_mac, s_mac, civ, siv),
                TlsRole::Server => (s_key, c_key, s_mac, c_mac, siv, civ),
            };
        TlsSession {
            state: SessionState {
                version,
                suite,
                role,
                send_key,
                recv_key,
                send_mac_key,
                recv_mac_key,
                send_seq: 0,
                recv_seq: 0,
                send_stream_offset: 0,
                recv_stream_offset: 0,
                send_chain_iv,
                recv_chain_iv,
            },
            rng: SplitMix64::new(nonce_seed),
            rx_buf: Vec::new(),
        }
    }

    /// Restores a session from exported state — the trusted node's half of
    /// SSL session injection.
    pub fn from_state(state: SessionState, nonce_seed: u64) -> TlsSession {
        TlsSession { state, rng: SplitMix64::new(nonce_seed), rx_buf: Vec::new() }
    }

    /// Exports the transferable state (see [`SessionState`]).
    pub fn export_state(&self) -> SessionState {
        self.state.clone()
    }

    /// Re-imports updated public progress after the trusted node sent
    /// records on this session's behalf: the sequence number and stream
    /// offset advance. With an explicit-IV version nothing else is needed.
    ///
    /// With TLS 1.0 the chaining IV would also have to be imported — that
    /// import is exactly the Figure 7 leak, so it is refused here.
    pub fn import_progress(
        &mut self,
        send_seq: u64,
        send_stream_offset: u64,
    ) -> Result<(), TlsError> {
        if self.state.suite == CipherSuite::XteaCbcHmacSha256 && !self.state.version.explicit_iv() {
            return Err(TlsError::BadSessionState(
                "implicit-IV CBC cannot resume after remote sends without importing \
                 ciphertext (the Figure 7 leak); refuse and re-handshake instead"
                    .into(),
            ));
        }
        if send_seq < self.state.send_seq || send_stream_offset < self.state.send_stream_offset {
            return Err(TlsError::BadSessionState("progress must be monotone".into()));
        }
        self.state.send_seq = send_seq;
        self.state.send_stream_offset = send_stream_offset;
        Ok(())
    }

    /// Negotiated version.
    pub fn version(&self) -> TlsVersion {
        self.state.version
    }

    /// Negotiated suite.
    pub fn suite(&self) -> CipherSuite {
        self.state.suite
    }

    /// Next send sequence number.
    pub fn send_seq(&self) -> u64 {
        self.state.send_seq
    }

    /// RC4 keystream offset consumed by sent records.
    pub fn send_stream_offset(&self) -> u64 {
        self.state.send_stream_offset
    }

    /// Seals `plaintext` into one record of `content_type`, returning the
    /// wire bytes.
    pub fn seal(&mut self, content_type: ContentType, plaintext: &[u8]) -> Vec<u8> {
        let version = self.state.version;
        let mac = record_mac(
            &self.state.send_mac_key,
            self.state.send_seq,
            content_type.to_byte(),
            version.to_byte(),
            plaintext,
        );
        let mut authed = Vec::with_capacity(plaintext.len() + MAC_LEN);
        authed.extend_from_slice(plaintext);
        authed.extend_from_slice(&mac);

        let body = match self.state.suite {
            CipherSuite::Rc4HmacSha256 => {
                let mut rc4 = Rc4::new(&self.state.send_key);
                rc4.skip(self.state.send_stream_offset);
                let mut data = authed;
                rc4.apply(&mut data);
                self.state.send_stream_offset += data.len() as u64;
                data
            }
            CipherSuite::XteaCbcHmacSha256 => {
                let key = Xtea::new(&self.state.send_key);
                if version.explicit_iv() {
                    let mut iv = [0u8; BLOCK];
                    self.rng.fill_bytes(&mut iv);
                    let ct = cbc_encrypt(&key, &iv, &authed);
                    let mut body = iv.to_vec();
                    body.extend_from_slice(&ct);
                    body
                } else {
                    let ct = cbc_encrypt(&key, &self.state.send_chain_iv, &authed);
                    // Implicit IV: chain to the last ciphertext block.
                    self.state.send_chain_iv.copy_from_slice(&ct[ct.len() - BLOCK..]);
                    ct
                }
            }
        };
        self.state.send_seq += 1;
        Record { content_type, version: version.to_byte(), body }.to_bytes()
    }

    /// Feeds received wire bytes into the session and opens every complete
    /// record, returning `(content_type, plaintext)` pairs.
    pub fn open(&mut self, wire: &[u8]) -> Result<Vec<(ContentType, Vec<u8>)>, TlsError> {
        self.rx_buf.extend_from_slice(wire);
        let (records, used) = Record::parse_all(&self.rx_buf)?;
        self.rx_buf.drain(..used);
        let mut out = Vec::with_capacity(records.len());
        for rec in records {
            out.push(self.open_record(rec)?);
        }
        Ok(out)
    }

    fn open_record(&mut self, rec: Record) -> Result<(ContentType, Vec<u8>), TlsError> {
        let authed = match self.state.suite {
            CipherSuite::Rc4HmacSha256 => {
                let mut rc4 = Rc4::new(&self.state.recv_key);
                rc4.skip(self.state.recv_stream_offset);
                let mut data = rec.body.clone();
                rc4.apply(&mut data);
                self.state.recv_stream_offset += data.len() as u64;
                data
            }
            CipherSuite::XteaCbcHmacSha256 => {
                let key = Xtea::new(&self.state.recv_key);
                if self.state.version.explicit_iv() {
                    if rec.body.len() < BLOCK {
                        return Err(TlsError::BadRecord("missing explicit IV".into()));
                    }
                    let mut iv = [0u8; BLOCK];
                    iv.copy_from_slice(&rec.body[..BLOCK]);
                    cbc_decrypt(&key, &iv, &rec.body[BLOCK..])?
                } else {
                    let iv = self.state.recv_chain_iv;
                    if rec.body.len() < BLOCK {
                        return Err(TlsError::BadRecord("short CBC record".into()));
                    }
                    self.state.recv_chain_iv.copy_from_slice(&rec.body[rec.body.len() - BLOCK..]);
                    cbc_decrypt(&key, &iv, &rec.body)?
                }
            }
        };
        if authed.len() < MAC_LEN {
            return Err(TlsError::BadRecord("record shorter than its MAC".into()));
        }
        let (plaintext, mac) = authed.split_at(authed.len() - MAC_LEN);
        let expect = record_mac(
            &self.state.recv_mac_key,
            self.state.recv_seq,
            rec.content_type.to_byte(),
            rec.version,
            plaintext,
        );
        if !mac_eq(mac, &expect) {
            return Err(TlsError::BadMac);
        }
        self.state.recv_seq += 1;
        Ok((rec.content_type, plaintext.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(version: TlsVersion, suite: CipherSuite) -> (TlsSession, TlsSession) {
        let master = [42u8; 32];
        let client = TlsSession::from_master(master, version, suite, TlsRole::Client, 1);
        let server = TlsSession::from_master(master, version, suite, TlsRole::Server, 2);
        (client, server)
    }

    fn all_configs() -> Vec<(TlsVersion, CipherSuite)> {
        vec![
            (TlsVersion::Tls10, CipherSuite::Rc4HmacSha256),
            (TlsVersion::Tls10, CipherSuite::XteaCbcHmacSha256),
            (TlsVersion::Tls11, CipherSuite::XteaCbcHmacSha256),
            (TlsVersion::Tls12, CipherSuite::Rc4HmacSha256),
            (TlsVersion::Tls12, CipherSuite::XteaCbcHmacSha256),
        ]
    }

    #[test]
    fn seal_open_round_trip_all_configs() {
        for (v, s) in all_configs() {
            let (mut c, mut srv) = pair(v, s);
            for msg in [&b"first message"[..], b"", b"third, longer message body 012345"] {
                let wire = c.seal(ContentType::ApplicationData, msg);
                let opened = srv.open(&wire).unwrap();
                assert_eq!(opened.len(), 1, "{v:?}/{s:?}");
                assert_eq!(opened[0].1, msg, "{v:?}/{s:?}");
            }
        }
    }

    #[test]
    fn bidirectional_traffic_is_independent() {
        let (mut c, mut s) = pair(TlsVersion::Tls12, CipherSuite::XteaCbcHmacSha256);
        let w1 = c.seal(ContentType::ApplicationData, b"request");
        let w2 = s.seal(ContentType::ApplicationData, b"response");
        assert_eq!(s.open(&w1).unwrap()[0].1, b"request");
        assert_eq!(c.open(&w2).unwrap()[0].1, b"response");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        for (v, s) in all_configs() {
            let (mut c, _) = pair(v, s);
            let wire = c.seal(ContentType::ApplicationData, b"hunter2-password");
            let hay = String::from_utf8_lossy(&wire).into_owned();
            assert!(!hay.contains("hunter2"), "{v:?}/{s:?} leaked plaintext");
        }
    }

    #[test]
    fn tampering_is_detected() {
        let (mut c, mut s) = pair(TlsVersion::Tls12, CipherSuite::XteaCbcHmacSha256);
        let mut wire = c.seal(ContentType::ApplicationData, b"authentic");
        let n = wire.len();
        wire[n - 1] ^= 1;
        assert!(s.open(&wire).is_err());
    }

    #[test]
    fn reordered_records_fail_the_mac() {
        // Sequence numbers are in the MAC: swapping records must fail.
        let (mut c, mut s) = pair(TlsVersion::Tls12, CipherSuite::Rc4HmacSha256);
        let w1 = c.seal(ContentType::ApplicationData, b"one");
        let w2 = c.seal(ContentType::ApplicationData, b"two");
        // Deliver w2 first. (For RC4 the stream offset also desyncs, which
        // is the same failure class.)
        assert!(s.open(&w2).is_err());
        let _ = w1;
    }

    #[test]
    fn partial_wire_delivery_buffers() {
        let (mut c, mut s) = pair(TlsVersion::Tls12, CipherSuite::XteaCbcHmacSha256);
        let wire = c.seal(ContentType::ApplicationData, b"split across segments");
        let (a, b) = wire.split_at(7);
        assert!(s.open(a).unwrap().is_empty());
        let opened = s.open(b).unwrap();
        assert_eq!(opened[0].1, b"split across segments");
    }

    #[test]
    fn session_injection_explicit_iv() {
        // The TinMan flow: client exports state, the node seals the
        // cor-bearing record, the client imports progress and continues.
        let (mut client, mut server) = pair(TlsVersion::Tls12, CipherSuite::XteaCbcHmacSha256);
        let w0 = client.seal(ContentType::ApplicationData, b"pre-cor traffic");
        server.open(&w0).unwrap();

        // Node takes over.
        let mut node = TlsSession::from_state(client.export_state(), 99);
        let w1 = node.seal(ContentType::ApplicationData, b"THE-REAL-COR-VALUE");
        assert_eq!(server.open(&w1).unwrap()[0].1, b"THE-REAL-COR-VALUE");

        // Client resumes with nothing but the public progress counters.
        client.import_progress(node.send_seq(), node.send_stream_offset()).unwrap();
        let w2 = client.seal(ContentType::ApplicationData, b"post-cor traffic");
        assert_eq!(server.open(&w2).unwrap()[0].1, b"post-cor traffic");
    }

    #[test]
    fn session_injection_rc4() {
        let (mut client, mut server) = pair(TlsVersion::Tls12, CipherSuite::Rc4HmacSha256);
        let w0 = client.seal(ContentType::ApplicationData, b"hello");
        server.open(&w0).unwrap();
        let mut node = TlsSession::from_state(client.export_state(), 7);
        let w1 = node.seal(ContentType::ApplicationData, b"cor-by-node");
        assert_eq!(server.open(&w1).unwrap()[0].1, b"cor-by-node");
        client.import_progress(node.send_seq(), node.send_stream_offset()).unwrap();
        let w2 = client.seal(ContentType::ApplicationData, b"and back");
        assert_eq!(server.open(&w2).unwrap()[0].1, b"and back");
    }

    #[test]
    fn implicit_iv_resume_is_refused() {
        // TLS 1.0 CBC: after the node sends, the client would need the
        // node's last ciphertext block — the Figure 7 leak. The session
        // refuses to resume.
        let (mut client, mut server) = pair(TlsVersion::Tls10, CipherSuite::XteaCbcHmacSha256);
        let w0 = client.seal(ContentType::ApplicationData, b"pre");
        server.open(&w0).unwrap();
        let mut node = TlsSession::from_state(client.export_state(), 3);
        let w1 = node.seal(ContentType::ApplicationData, b"cor");
        assert_eq!(server.open(&w1).unwrap()[0].1, b"cor");
        let err = client.import_progress(node.send_seq(), node.send_stream_offset()).unwrap_err();
        assert!(matches!(err, TlsError::BadSessionState(_)));
    }

    #[test]
    fn equal_length_plaintexts_seal_to_equal_length_records() {
        // Payload replacement requires the node's record to occupy exactly
        // the bytes of the client's placeholder record.
        for (v, s) in all_configs() {
            let (mut c1, _) = pair(v, s);
            let (mut c2, _) = pair(v, s);
            let a = c1.seal(ContentType::TinManMarked, b"placeholder-16bb");
            let b = c2.seal(ContentType::ApplicationData, b"the-real-cor-16b");
            assert_eq!(a.len(), b.len(), "{v:?}/{s:?}");
        }
    }

    #[test]
    fn progress_must_be_monotone() {
        let (mut c, _) = pair(TlsVersion::Tls12, CipherSuite::Rc4HmacSha256);
        c.seal(ContentType::ApplicationData, b"x");
        assert!(c.import_progress(0, 0).is_err());
    }

    #[test]
    fn debug_never_prints_keys() {
        let (c, _) = pair(TlsVersion::Tls12, CipherSuite::Rc4HmacSha256);
        let s = format!("{:?}", c.export_state());
        assert!(s.contains("send_seq"));
        assert!(!s.contains("send_key"));
    }
}
