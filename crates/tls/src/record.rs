//! TLS record framing.
//!
//! Wire layout (toy, fixed 4-byte header):
//!
//! ```text
//! [type: 1][version: 1][length: 2 BE][body: length bytes]
//! ```
//!
//! `type` is the field TinMan's modified SSL library exploits: real TLS uses
//! only four content types out of an 8-bit space, so the client marks
//! cor-bearing records with the reserved value [`TINMAN_MARK`], and the
//! `iptables` analogue ([`tinman_net`-side mark filter]) matches the first
//! payload byte of the outgoing packet (§3.6).

use serde::{Deserialize, Serialize};

use crate::error::TlsError;

/// Standard TLS content types (the four real ones) plus TinMan's mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentType {
    /// Cipher-spec change (unused by the toy handshake but defined).
    ChangeCipherSpec,
    /// Alerts.
    Alert,
    /// Handshake messages.
    Handshake,
    /// Application data.
    ApplicationData,
    /// TinMan's reserved marker: "this record's plaintext contains a cor
    /// placeholder; capture and redirect me" (§3.6).
    TinManMarked,
}

/// The wire byte for TinMan-marked records.
pub const TINMAN_MARK: u8 = 0x7f;

impl ContentType {
    /// The wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
            ContentType::TinManMarked => TINMAN_MARK,
        }
    }

    /// Parses a wire byte.
    pub fn from_byte(b: u8) -> Result<ContentType, TlsError> {
        match b {
            20 => Ok(ContentType::ChangeCipherSpec),
            21 => Ok(ContentType::Alert),
            22 => Ok(ContentType::Handshake),
            23 => Ok(ContentType::ApplicationData),
            TINMAN_MARK => Ok(ContentType::TinManMarked),
            other => Err(TlsError::BadRecord(format!("unknown content type {other}"))),
        }
    }
}

/// A framed record (body may be ciphertext or handshake plaintext).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Content type byte meaning.
    pub content_type: ContentType,
    /// Version byte (see [`crate::session::TlsVersion`]).
    pub version: u8,
    /// The record body.
    pub body: Vec<u8>,
}

impl Record {
    /// Serializes header + body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.body.len());
        out.push(self.content_type.to_byte());
        out.push(self.version);
        out.extend_from_slice(&(self.body.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses one record from the front of `buf`; returns the record and
    /// the bytes consumed, or `Ok(None)` if the buffer holds an incomplete
    /// record.
    pub fn parse(buf: &[u8]) -> Result<Option<(Record, usize)>, TlsError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let content_type = ContentType::from_byte(buf[0])?;
        let version = buf[1];
        let len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if buf.len() < 4 + len {
            return Ok(None);
        }
        let body = buf[4..4 + len].to_vec();
        Ok(Some((Record { content_type, version, body }, 4 + len)))
    }

    /// Parses every complete record in `buf`; returns the records and the
    /// total bytes consumed.
    pub fn parse_all(buf: &[u8]) -> Result<(Vec<Record>, usize), TlsError> {
        let mut records = Vec::new();
        let mut used = 0;
        while let Some((rec, n)) = Record::parse(&buf[used..])? {
            records.push(rec);
            used += n;
        }
        Ok((records, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let r = Record {
            content_type: ContentType::ApplicationData,
            version: 0x03,
            body: b"ciphertext".to_vec(),
        };
        let wire = r.to_bytes();
        assert_eq!(wire[0], 23);
        let (back, used) = Record::parse(&wire).unwrap().unwrap();
        assert_eq!(back, r);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn partial_buffers_return_none() {
        let r = Record { content_type: ContentType::Handshake, version: 1, body: vec![0; 100] };
        let wire = r.to_bytes();
        assert!(Record::parse(&wire[..3]).unwrap().is_none());
        assert!(Record::parse(&wire[..50]).unwrap().is_none());
        assert!(Record::parse(&wire).unwrap().is_some());
    }

    #[test]
    fn parse_all_consumes_multiple_and_leaves_tail() {
        let a = Record { content_type: ContentType::Handshake, version: 1, body: vec![1] };
        let b = Record { content_type: ContentType::ApplicationData, version: 1, body: vec![2, 3] };
        let mut wire = a.to_bytes();
        wire.extend(b.to_bytes());
        wire.extend([23, 1]); // truncated third record
        let (records, used) = Record::parse_all(&wire).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(used, wire.len() - 2);
    }

    #[test]
    fn unknown_type_rejected() {
        let wire = [99u8, 1, 0, 0];
        assert!(Record::parse(&wire).is_err());
    }

    #[test]
    fn mark_byte_is_first_on_the_wire() {
        // The egress filter matches payload[0]; the mark must land there.
        let r = Record {
            content_type: ContentType::TinManMarked,
            version: 2,
            body: b"placeholder-record".to_vec(),
        };
        assert_eq!(r.to_bytes()[0], TINMAN_MARK);
    }
}
