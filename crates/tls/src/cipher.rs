//! Ciphers: RC4 (stream) and XTEA (64-bit block) with a CBC mode.
//!
//! Both algorithms are public-domain textbook constructions, implemented
//! here so the record layer can exercise TinMan's two session-injection
//! regimes (stream vs CBC, implicit vs explicit IV). Neither is suitable
//! for real-world protection — RC4 is broken and XTEA-CBC without
//! authentication would be malleable — which is fine: the record layer adds
//! an HMAC and the whole stack is a simulation substrate.

pub mod cbc;
pub mod rc4;
pub mod xtea;

pub use cbc::{cbc_decrypt, cbc_encrypt, BLOCK};
pub use rc4::Rc4;
pub use xtea::Xtea;
