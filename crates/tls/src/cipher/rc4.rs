//! The RC4 stream cipher (textbook KSA + PRGA).
//!
//! RC4 is the stream-cipher case of the paper's §3.2 analysis: each record's
//! keystream position depends only on the byte count already encrypted, so
//! injecting the trusted node into a session needs nothing but the key and
//! the stream offset — no ciphertext ever flows back to the client.

/// RC4 keystream generator state.
#[derive(Clone)]
pub struct Rc4 {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl std::fmt::Debug for Rc4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the internal state (it is key material).
        write!(f, "Rc4 {{ i: {}, j: {} }}", self.i, self.j)
    }
}

impl Rc4 {
    /// Initializes the cipher with `key` (1..=256 bytes).
    pub fn new(key: &[u8]) -> Self {
        assert!(!key.is_empty() && key.len() <= 256, "RC4 key must be 1..=256 bytes");
        let mut s = [0u8; 256];
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as u8;
        }
        let mut j: u8 = 0;
        for i in 0..256 {
            j = j.wrapping_add(s[i]).wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Rc4 { s, i: 0, j: 0 }
    }

    /// Next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.s[self.i as usize]);
        self.s.swap(self.i as usize, self.j as usize);
        let idx = self.s[self.i as usize].wrapping_add(self.s[self.j as usize]);
        self.s[idx as usize]
    }

    /// Encrypts/decrypts `data` in place (XOR with keystream; the operation
    /// is its own inverse).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data {
            *b ^= self.next_byte();
        }
    }

    /// Discards `n` keystream bytes — used to fast-forward an injected
    /// session to the client's current stream offset.
    pub fn skip(&mut self, n: u64) {
        for _ in 0..n {
            self.next_byte();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // RFC 6229 test vector: key 0x0102030405, first keystream bytes.
        let mut c = Rc4::new(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        let expected = [0xb2u8, 0x39, 0x63, 0x05, 0xf0, 0x3d, 0xc0, 0x27];
        for &e in &expected {
            assert_eq!(c.next_byte(), e);
        }
    }

    #[test]
    fn round_trip() {
        let msg = b"attack at dawn".to_vec();
        let mut enc = Rc4::new(b"secret key");
        let mut data = msg.clone();
        enc.apply(&mut data);
        assert_ne!(data, msg);
        let mut dec = Rc4::new(b"secret key");
        dec.apply(&mut data);
        assert_eq!(data, msg);
    }

    #[test]
    fn skip_equals_discarding() {
        let mut a = Rc4::new(b"k");
        let mut b = Rc4::new(b"k");
        a.skip(100);
        for _ in 0..100 {
            b.next_byte();
        }
        assert_eq!(a.next_byte(), b.next_byte());
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let mut enc = Rc4::new(b"right");
        let mut data = b"plaintext".to_vec();
        enc.apply(&mut data);
        let mut dec = Rc4::new(b"wrong");
        dec.apply(&mut data);
        assert_ne!(data, b"plaintext");
    }

    #[test]
    #[should_panic(expected = "RC4 key")]
    fn empty_key_rejected() {
        Rc4::new(&[]);
    }

    #[test]
    fn debug_does_not_leak_state() {
        let c = Rc4::new(b"supersecret");
        let s = format!("{c:?}");
        assert!(!s.contains("supersecret"));
        assert!(s.len() < 64, "state table must not be printed");
    }
}
