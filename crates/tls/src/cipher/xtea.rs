//! The XTEA block cipher (Needham & Wheeler, 1997).
//!
//! A 64-bit-block, 128-bit-key Feistel cipher with a famously small
//! implementation. It is the CBC block primitive here because the
//! implicit-IV leakage of Figure 7 is a property of the *mode*, not the
//! block cipher, and XTEA keeps the reproduction dependency-free.

/// Number of Feistel rounds (the standard 32).
const ROUNDS: u32 = 32;
/// The key-schedule constant.
const DELTA: u32 = 0x9E37_79B9;

/// An XTEA key (four 32-bit words).
#[derive(Clone, Copy)]
pub struct Xtea {
    k: [u32; 4],
}

impl std::fmt::Debug for Xtea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Xtea {{ .. }}") // never print key material
    }
}

impl Xtea {
    /// Builds a cipher from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut k = [0u32; 4];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_be_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        Xtea { k }
    }

    /// Encrypts one 8-byte block.
    pub fn encrypt_block(&self, block: &mut [u8; 8]) {
        let mut v0 = u32::from_be_bytes(block[0..4].try_into().expect("4 bytes"));
        let mut v1 = u32::from_be_bytes(block[4..8].try_into().expect("4 bytes"));
        let mut sum: u32 = 0;
        for _ in 0..ROUNDS {
            v0 = v0.wrapping_add(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.k[(sum & 3) as usize])),
            );
            sum = sum.wrapping_add(DELTA);
            v1 = v1.wrapping_add(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.k[((sum >> 11) & 3) as usize])),
            );
        }
        block[0..4].copy_from_slice(&v0.to_be_bytes());
        block[4..8].copy_from_slice(&v1.to_be_bytes());
    }

    /// Decrypts one 8-byte block.
    pub fn decrypt_block(&self, block: &mut [u8; 8]) {
        let mut v0 = u32::from_be_bytes(block[0..4].try_into().expect("4 bytes"));
        let mut v1 = u32::from_be_bytes(block[4..8].try_into().expect("4 bytes"));
        let mut sum: u32 = DELTA.wrapping_mul(ROUNDS);
        for _ in 0..ROUNDS {
            v1 = v1.wrapping_sub(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.k[((sum >> 11) & 3) as usize])),
            );
            sum = sum.wrapping_sub(DELTA);
            v0 = v0.wrapping_sub(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.k[(sum & 3) as usize])),
            );
        }
        block[0..4].copy_from_slice(&v0.to_be_bytes());
        block[4..8].copy_from_slice(&v1.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = Xtea::new(b"0123456789abcdef");
        let mut block = *b"8bytes!!";
        let original = block;
        key.encrypt_block(&mut block);
        assert_ne!(block, original);
        key.decrypt_block(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn known_answer_vector() {
        // Widely published XTEA vector: zero key, zero plaintext.
        let key = Xtea::new(&[0u8; 16]);
        let mut block = [0u8; 8];
        key.encrypt_block(&mut block);
        assert_eq!(block, [0xDE, 0xE9, 0xD4, 0xD8, 0xF7, 0x13, 0x1E, 0xD9]);
    }

    #[test]
    fn different_keys_differ() {
        let a = Xtea::new(b"aaaaaaaaaaaaaaaa");
        let b = Xtea::new(b"bbbbbbbbbbbbbbbb");
        let mut x = *b"sameblok";
        let mut y = *b"sameblok";
        a.encrypt_block(&mut x);
        b.encrypt_block(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn wrong_key_garbles() {
        let enc = Xtea::new(b"correct-key-1234");
        let dec = Xtea::new(b"wrong-key-567890");
        let mut block = *b"secret!!";
        enc.encrypt_block(&mut block);
        dec.decrypt_block(&mut block);
        assert_ne!(&block, b"secret!!");
    }

    #[test]
    fn debug_does_not_leak_key() {
        let c = Xtea::new(b"super-secret-key");
        assert_eq!(format!("{c:?}"), "Xtea { .. }");
    }
}
