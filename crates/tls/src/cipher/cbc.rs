//! CBC mode over XTEA with PKCS#7-style padding.
//!
//! The IV handling is deliberately *parameterized by the caller* rather than
//! randomized internally: the record layer passes either the previous
//! record's last ciphertext block (implicit IV, TLS 1.0) or a fresh random
//! IV carried in the record (explicit IV, TLS 1.1+). That choice is exactly
//! what the paper's Figure 7 attack and TinMan's version floor are about.

use crate::cipher::xtea::Xtea;
use crate::error::TlsError;

/// CBC block size in bytes (XTEA's 64-bit block).
pub const BLOCK: usize = 8;

/// Encrypts `plaintext` under `key` in CBC mode starting from `iv`.
///
/// The plaintext is padded PKCS#7-style to a whole number of blocks (1..=8
/// bytes of padding, each byte holding the pad length). Returns the
/// ciphertext; its last `BLOCK` bytes are the chaining state the *next*
/// implicit-IV record would use.
pub fn cbc_encrypt(key: &Xtea, iv: &[u8; BLOCK], plaintext: &[u8]) -> Vec<u8> {
    let pad = BLOCK - (plaintext.len() % BLOCK);
    let mut data = Vec::with_capacity(plaintext.len() + pad);
    data.extend_from_slice(plaintext);
    data.extend(std::iter::repeat_n(pad as u8, pad));

    let mut prev = *iv;
    let mut out = Vec::with_capacity(data.len());
    for chunk in data.chunks(BLOCK) {
        let mut block = [0u8; BLOCK];
        block.copy_from_slice(chunk);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        key.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    out
}

/// Decrypts CBC `ciphertext` under `key` starting from `iv` and strips the
/// padding.
pub fn cbc_decrypt(key: &Xtea, iv: &[u8; BLOCK], ciphertext: &[u8]) -> Result<Vec<u8>, TlsError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK) {
        return Err(TlsError::BadRecord(format!(
            "CBC ciphertext length {} is not a positive multiple of {BLOCK}",
            ciphertext.len()
        )));
    }
    let mut prev = *iv;
    let mut out = Vec::with_capacity(ciphertext.len());
    for chunk in ciphertext.chunks(BLOCK) {
        let mut block = [0u8; BLOCK];
        block.copy_from_slice(chunk);
        let saved = block;
        key.decrypt_block(&mut block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        out.extend_from_slice(&block);
        prev = saved;
    }
    let pad = *out.last().expect("non-empty plaintext") as usize;
    if pad == 0 || pad > BLOCK || pad > out.len() {
        return Err(TlsError::BadRecord(format!("bad CBC padding value {pad}")));
    }
    if !out[out.len() - pad..].iter().all(|&b| b as usize == pad) {
        return Err(TlsError::BadRecord("inconsistent CBC padding".into()));
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

/// The last ciphertext block — the implicit IV for the next record in
/// TLS 1.0's chaining scheme.
pub fn last_block(ciphertext: &[u8]) -> [u8; BLOCK] {
    let mut iv = [0u8; BLOCK];
    iv.copy_from_slice(&ciphertext[ciphertext.len() - BLOCK..]);
    iv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Xtea {
        Xtea::new(b"0123456789abcdef")
    }

    #[test]
    fn round_trip_various_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 100] {
            let pt: Vec<u8> = (0..len as u8).collect();
            let iv = [7u8; BLOCK];
            let ct = cbc_encrypt(&key(), &iv, &pt);
            assert_eq!(ct.len() % BLOCK, 0);
            assert!(ct.len() > pt.len(), "padding always adds at least a byte");
            let back = cbc_decrypt(&key(), &iv, &ct).unwrap();
            assert_eq!(back, pt, "len {len}");
        }
    }

    #[test]
    fn equal_plaintext_lengths_give_equal_ciphertext_lengths() {
        // TinMan's payload replacement depends on this: the placeholder and
        // the cor have equal sizes, so the sealed records match in length.
        let iv = [0u8; BLOCK];
        let a = cbc_encrypt(&key(), &iv, b"placeholderXYZ");
        let b = cbc_encrypt(&key(), &iv, b"realsecret-999");
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn wrong_iv_garbles_only_first_block() {
        let iv = [1u8; BLOCK];
        let pt = vec![0x42u8; 24];
        let ct = cbc_encrypt(&key(), &iv, &pt);
        let wrong_iv = [2u8; BLOCK];
        let back = cbc_decrypt(&key(), &wrong_iv, &ct).unwrap();
        assert_ne!(&back[..BLOCK], &pt[..BLOCK]);
        assert_eq!(&back[BLOCK..], &pt[BLOCK..], "CBC localizes IV damage to block 1");
    }

    #[test]
    fn chaining_via_last_block_continues_a_stream() {
        // Encrypting two messages with chained IVs equals encrypting the
        // concatenation (modulo padding) — the implicit-IV regime.
        let iv0 = [9u8; BLOCK];
        let m1 = vec![1u8; 16];
        let c1 = cbc_encrypt(&key(), &iv0, &m1);
        let iv1 = last_block(&c1);
        let m2 = vec![2u8; 16];
        let c2 = cbc_encrypt(&key(), &iv1, &m2);
        // Both decrypt correctly with their respective IVs.
        assert_eq!(cbc_decrypt(&key(), &iv0, &c1).unwrap(), m1);
        assert_eq!(cbc_decrypt(&key(), &iv1, &c2).unwrap(), m2);
    }

    #[test]
    fn malformed_ciphertext_rejected() {
        let iv = [0u8; BLOCK];
        assert!(cbc_decrypt(&key(), &iv, &[]).is_err());
        assert!(cbc_decrypt(&key(), &iv, &[1, 2, 3]).is_err());
    }

    #[test]
    fn corrupted_padding_rejected() {
        let iv = [0u8; BLOCK];
        let mut ct = cbc_encrypt(&key(), &iv, b"hello");
        let n = ct.len();
        ct[n - 1] ^= 0xff; // garble the final block -> padding check fails
        assert!(cbc_decrypt(&key(), &iv, &ct).is_err());
    }
}
