//! TLS error type.

use std::fmt;

/// An error raised by the toy TLS stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TlsError {
    /// The negotiated (or offered) version violates the configured floor —
    /// TinMan's client refuses anything older than TLS 1.1 (§3.2).
    VersionBelowFloor {
        /// The offered/negotiated version byte.
        got: u8,
        /// The configured minimum.
        floor: u8,
    },
    /// The peer offered no mutually supported cipher suite.
    NoCommonSuite,
    /// A record failed MAC verification.
    BadMac,
    /// A record was malformed (truncated, bad padding, bad length).
    BadRecord(String),
    /// A handshake message was malformed.
    BadHandshake(String),
    /// An operation was attempted in the wrong session state.
    WrongState(String),
    /// Session-state injection failed (mismatched suite or version).
    BadSessionState(String),
}

impl fmt::Display for TlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsError::VersionBelowFloor { got, floor } => {
                write!(f, "TLS version 0x{got:02x} below configured floor 0x{floor:02x}")
            }
            TlsError::NoCommonSuite => write!(f, "no common cipher suite"),
            TlsError::BadMac => write!(f, "record MAC verification failed"),
            TlsError::BadRecord(m) => write!(f, "malformed record: {m}"),
            TlsError::BadHandshake(m) => write!(f, "malformed handshake: {m}"),
            TlsError::WrongState(m) => write!(f, "wrong session state: {m}"),
            TlsError::BadSessionState(m) => write!(f, "bad session state: {m}"),
        }
    }
}

impl std::error::Error for TlsError {}
