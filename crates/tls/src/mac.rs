//! Record authentication: HMAC-SHA256, truncated to 16 bytes.
//!
//! The MAC covers the record sequence number, content type, version and
//! payload — enough that the server notices if the trusted node's reframed
//! record were to lie about its position in the stream or its type.

use sha2::{Digest, Sha256};

/// MAC output length carried in each record.
pub const MAC_LEN: usize = 16;

/// HMAC-SHA256 (RFC 2104 construction over SHA-256).
fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = Sha256::digest(key);
        k[..32].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(ipad);
    inner.update(message);
    let inner = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(opad);
    outer.update(inner);
    outer.finalize()
}

/// Computes the truncated record MAC.
pub fn record_mac(
    key: &[u8],
    seq: u64,
    content_type: u8,
    version: u8,
    payload: &[u8],
) -> [u8; MAC_LEN] {
    let mut msg = Vec::with_capacity(10 + payload.len());
    msg.extend_from_slice(&seq.to_be_bytes());
    msg.push(content_type);
    msg.push(version);
    msg.extend_from_slice(payload);
    let full = hmac_sha256(key, &msg);
    let mut out = [0u8; MAC_LEN];
    out.copy_from_slice(&full[..MAC_LEN]);
    out
}

/// Constant-time-ish comparison (good enough for a simulation; documented
/// as such).
pub fn mac_eq(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmac_known_answer() {
        // RFC 4231 test case 2: key "Jefe", data "what do ya want for
        // nothing?".
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        let expected = [
            0x5bu8, 0xdc, 0xc1, 0x46, 0xbf, 0x60, 0x75, 0x4e, 0x6a, 0x04, 0x24, 0x26, 0x08, 0x95,
            0x75, 0xc7, 0x5a, 0x00, 0x3f, 0x08, 0x9d, 0x27, 0x39, 0x83, 0x9d, 0xec, 0x58, 0xb9,
            0x64, 0xec, 0x38, 0x43,
        ];
        assert_eq!(mac, expected);
    }

    #[test]
    fn mac_binds_every_field() {
        let base = record_mac(b"key", 1, 0x17, 0x03, b"payload");
        assert_ne!(base, record_mac(b"key2", 1, 0x17, 0x03, b"payload"), "key");
        assert_ne!(base, record_mac(b"key", 2, 0x17, 0x03, b"payload"), "seq");
        assert_ne!(base, record_mac(b"key", 1, 0x16, 0x03, b"payload"), "type");
        assert_ne!(base, record_mac(b"key", 1, 0x17, 0x02, b"payload"), "version");
        assert_ne!(base, record_mac(b"key", 1, 0x17, 0x03, b"payloae"), "payload");
    }

    #[test]
    fn mac_eq_semantics() {
        assert!(mac_eq(b"abc", b"abc"));
        assert!(!mac_eq(b"abc", b"abd"));
        assert!(!mac_eq(b"abc", b"ab"));
        assert!(mac_eq(b"", b""));
    }

    #[test]
    fn long_keys_are_hashed_down() {
        let long_key = vec![7u8; 200];
        let m1 = hmac_sha256(&long_key, b"msg");
        let m2 = hmac_sha256(&Sha256::digest(&long_key), b"msg");
        assert_eq!(m1, m2);
    }
}
