//! The toy handshake: version negotiation and key establishment.
//!
//! Real TLS negotiates the version in ClientHello/ServerHello: the client
//! advertises its maximum, the server picks the highest both support
//! (§3.2). TinMan's client-side patch is a *floor*: the modified Android
//! SSL library refuses to complete a handshake below TLS 1.1, because the
//! implicit-IV CBC of TLS 1.0 cannot be offloaded without the Figure 7
//! leak.
//!
//! Key establishment is deliberately toy-grade: both sides derive the
//! master secret from their randoms and a pre-shared secret
//! (`SHA256(client_random || server_random || psk)`). There is no PKI — see
//! the crate docs and DESIGN.md.

use serde::{Deserialize, Serialize};
use sha2::{Digest, Sha256};

use crate::error::TlsError;
use crate::session::{CipherSuite, TlsRole, TlsSession, TlsVersion};

/// Client/endpoint handshake policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlsConfig {
    /// Highest version this endpoint speaks.
    pub max_version: TlsVersion,
    /// Lowest version this endpoint accepts. TinMan sets the client's
    /// floor to TLS 1.1 ([`TlsConfig::tinman_client`]).
    pub min_version: TlsVersion,
    /// Suites in preference order.
    pub suites: Vec<CipherSuite>,
    /// The pre-shared secret standing in for certificate-based key
    /// exchange.
    pub psk: [u8; 32],
}

impl TlsConfig {
    /// A plain endpoint speaking everything from TLS 1.0 to 1.2 (a stock
    /// Android client or a typical 2015 web server).
    pub fn permissive(psk: [u8; 32]) -> Self {
        TlsConfig {
            max_version: TlsVersion::Tls12,
            min_version: TlsVersion::Tls10,
            suites: vec![CipherSuite::XteaCbcHmacSha256, CipherSuite::Rc4HmacSha256],
            psk,
        }
    }

    /// The TinMan client configuration: floor at TLS 1.1 (§3.2's patched
    /// Android SSL library).
    pub fn tinman_client(psk: [u8; 32]) -> Self {
        TlsConfig { min_version: TlsVersion::Tls11, ..Self::permissive(psk) }
    }

    /// A legacy server stuck at TLS 1.0 — what the TinMan client must
    /// refuse to talk to.
    pub fn legacy_tls10(psk: [u8; 32]) -> Self {
        TlsConfig {
            max_version: TlsVersion::Tls10,
            min_version: TlsVersion::Tls10,
            suites: vec![CipherSuite::XteaCbcHmacSha256],
            psk,
        }
    }
}

/// The ClientHello message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientHello {
    /// Highest version the client supports.
    pub max_version: u8,
    /// Offered suites in preference order (wire bytes).
    pub suites: Vec<u8>,
    /// Client random.
    pub random: [u8; 32],
}

/// The ServerHello message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerHello {
    /// Chosen version.
    pub version: u8,
    /// Chosen suite (wire byte).
    pub suite: u8,
    /// Server random.
    pub random: [u8; 32],
}

fn suite_byte(s: CipherSuite) -> u8 {
    match s {
        CipherSuite::Rc4HmacSha256 => 1,
        CipherSuite::XteaCbcHmacSha256 => 2,
    }
}

fn suite_from_byte(b: u8) -> Result<CipherSuite, TlsError> {
    match b {
        1 => Ok(CipherSuite::Rc4HmacSha256),
        2 => Ok(CipherSuite::XteaCbcHmacSha256),
        other => Err(TlsError::BadHandshake(format!("unknown suite {other}"))),
    }
}

fn master_secret(psk: &[u8; 32], cr: &[u8; 32], sr: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(cr);
    h.update(sr);
    h.update(psk);
    h.finalize()
}

/// Handshake driver — free functions matching the two round-trip halves.
pub struct Handshake;

impl Handshake {
    /// Builds the ClientHello for `config` with the given random.
    pub fn client_hello(config: &TlsConfig, random: [u8; 32]) -> ClientHello {
        ClientHello {
            max_version: config.max_version.to_byte(),
            suites: config.suites.iter().map(|&s| suite_byte(s)).collect(),
            random,
        }
    }

    /// Server side: picks the version and suite, returns the ServerHello
    /// and the server's ready session.
    pub fn accept(
        config: &TlsConfig,
        hello: &ClientHello,
        server_random: [u8; 32],
        nonce_seed: u64,
    ) -> Result<(ServerHello, TlsSession), TlsError> {
        let client_max = TlsVersion::from_byte(hello.max_version)?;
        // Pick the most recent version both support.
        let version = if client_max < config.max_version { client_max } else { config.max_version };
        if version < config.min_version {
            return Err(TlsError::VersionBelowFloor {
                got: version.to_byte(),
                floor: config.min_version.to_byte(),
            });
        }
        let suite = config
            .suites
            .iter()
            .copied()
            .find(|s| hello.suites.contains(&suite_byte(*s)))
            .ok_or(TlsError::NoCommonSuite)?;
        let master = master_secret(&config.psk, &hello.random, &server_random);
        let session = TlsSession::from_master(master, version, suite, TlsRole::Server, nonce_seed);
        Ok((
            ServerHello {
                version: version.to_byte(),
                suite: suite_byte(suite),
                random: server_random,
            },
            session,
        ))
    }

    /// Client side: validates the ServerHello against the config (including
    /// TinMan's version floor) and derives the client session.
    pub fn finish(
        config: &TlsConfig,
        hello: &ClientHello,
        server_hello: &ServerHello,
        nonce_seed: u64,
    ) -> Result<TlsSession, TlsError> {
        let version = TlsVersion::from_byte(server_hello.version)?;
        if version < config.min_version {
            // The TinMan check: a server (or a downgrade attacker) offering
            // TLS 1.0 is refused before any data flows.
            return Err(TlsError::VersionBelowFloor {
                got: server_hello.version,
                floor: config.min_version.to_byte(),
            });
        }
        if version > config.max_version {
            return Err(TlsError::BadHandshake("server chose a version above our max".into()));
        }
        let suite = suite_from_byte(server_hello.suite)?;
        if !config.suites.contains(&suite) {
            return Err(TlsError::NoCommonSuite);
        }
        let master = master_secret(&config.psk, &hello.random, &server_hello.random);
        Ok(TlsSession::from_master(master, version, suite, TlsRole::Client, nonce_seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ContentType;

    const PSK: [u8; 32] = [9u8; 32];

    fn run_handshake(
        client_cfg: &TlsConfig,
        server_cfg: &TlsConfig,
    ) -> Result<(TlsSession, TlsSession), TlsError> {
        let hello = Handshake::client_hello(client_cfg, [1u8; 32]);
        let (sh, server) = Handshake::accept(server_cfg, &hello, [2u8; 32], 11)?;
        let client = Handshake::finish(client_cfg, &hello, &sh, 22)?;
        Ok((client, server))
    }

    #[test]
    fn modern_endpoints_negotiate_tls12() {
        let cfg = TlsConfig::permissive(PSK);
        let (client, server) = run_handshake(&cfg, &cfg).unwrap();
        assert_eq!(client.version(), TlsVersion::Tls12);
        assert_eq!(server.version(), TlsVersion::Tls12);
    }

    #[test]
    fn sessions_from_handshake_interoperate() {
        let cfg = TlsConfig::permissive(PSK);
        let (mut client, mut server) = run_handshake(&cfg, &cfg).unwrap();
        let wire = client.seal(ContentType::ApplicationData, b"GET / HTTP/1.1");
        assert_eq!(server.open(&wire).unwrap()[0].1, b"GET / HTTP/1.1");
        let wire = server.seal(ContentType::ApplicationData, b"200 OK");
        assert_eq!(client.open(&wire).unwrap()[0].1, b"200 OK");
    }

    #[test]
    fn tinman_client_refuses_legacy_tls10_server() {
        let client_cfg = TlsConfig::tinman_client(PSK);
        let server_cfg = TlsConfig::legacy_tls10(PSK);
        let err = run_handshake(&client_cfg, &server_cfg).unwrap_err();
        assert!(matches!(err, TlsError::VersionBelowFloor { .. }));
    }

    #[test]
    fn permissive_client_accepts_legacy_tls10_server() {
        // Without TinMan's floor the same handshake succeeds — the attack
        // surface the floor removes.
        let client_cfg = TlsConfig::permissive(PSK);
        let server_cfg = TlsConfig::legacy_tls10(PSK);
        let (client, _) = run_handshake(&client_cfg, &server_cfg).unwrap();
        assert_eq!(client.version(), TlsVersion::Tls10);
        assert!(!client.version().explicit_iv());
    }

    #[test]
    fn downgrade_in_server_hello_is_caught() {
        // A MITM rewriting the ServerHello version to TLS 1.0 is refused by
        // the TinMan client even when the real server is modern.
        let client_cfg = TlsConfig::tinman_client(PSK);
        let hello = Handshake::client_hello(&client_cfg, [1u8; 32]);
        let (mut sh, _server) =
            Handshake::accept(&TlsConfig::permissive(PSK), &hello, [2u8; 32], 1).unwrap();
        sh.version = TlsVersion::Tls10.to_byte();
        let err = Handshake::finish(&client_cfg, &hello, &sh, 2).unwrap_err();
        assert!(matches!(err, TlsError::VersionBelowFloor { .. }));
    }

    #[test]
    fn suite_preference_is_respected() {
        let mut client_cfg = TlsConfig::permissive(PSK);
        client_cfg.suites = vec![CipherSuite::Rc4HmacSha256];
        let server_cfg = TlsConfig::permissive(PSK);
        let (client, server) = run_handshake(&client_cfg, &server_cfg).unwrap();
        assert_eq!(client.suite(), CipherSuite::Rc4HmacSha256);
        assert_eq!(server.suite(), CipherSuite::Rc4HmacSha256);
    }

    #[test]
    fn disjoint_suites_fail() {
        let mut client_cfg = TlsConfig::permissive(PSK);
        client_cfg.suites = vec![CipherSuite::Rc4HmacSha256];
        let mut server_cfg = TlsConfig::permissive(PSK);
        server_cfg.suites = vec![CipherSuite::XteaCbcHmacSha256];
        assert!(matches!(run_handshake(&client_cfg, &server_cfg), Err(TlsError::NoCommonSuite)));
    }

    #[test]
    fn mismatched_psk_yields_non_interoperating_sessions() {
        let client_cfg = TlsConfig::permissive(PSK);
        let server_cfg = TlsConfig::permissive([7u8; 32]);
        let (mut client, mut server) = run_handshake(&client_cfg, &server_cfg).unwrap();
        let wire = client.seal(ContentType::ApplicationData, b"hello");
        assert!(server.open(&wire).is_err(), "different secrets must not interoperate");
    }
}
