#![warn(missing_docs)]
//! A toy TLS stack for the TinMan reproduction.
//!
//! TinMan's SSL session injection (§3.2) works at the record layer: the
//! trusted node must be able to seal one or more records *inside a session
//! it did not establish*, using state exported by the client. Whether that
//! export leaks anything depends on the cipher construction:
//!
//! * stream ciphers (RC4): only keys and sequence state are needed;
//! * CBC with **implicit IV** (TLS 1.0): the next record's IV is the last
//!   ciphertext block of the previous record, so continuing the session
//!   requires exchanging ciphertext blocks — and the paper's Figure 7 shows
//!   the client can then decrypt the node's record and recover the cor;
//! * CBC with **explicit IV** (TLS 1.1+): every record carries a fresh IV,
//!   records are independent, nothing flows back.
//!
//! TinMan therefore patches the client's TLS library to refuse anything
//! older than TLS 1.1. This crate implements all three configurations so the
//! attack is demonstrable ([`attack`]) and the defense testable
//! ([`handshake`] version floor).
//!
//! **This is not a secure TLS.** The handshake derives keys from a
//! pre-shared secret (no PKI), the ciphers are RC4 and XTEA-CBC, and the
//! whole stack exists to exercise TinMan's mechanisms, not to protect data.
//! See DESIGN.md's substitution table.

pub mod attack;
pub mod cipher;
pub mod error;
pub mod handshake;
pub mod mac;
pub mod record;
pub mod session;

pub use error::TlsError;
pub use handshake::{ClientHello, Handshake, ServerHello, TlsConfig};
pub use record::{ContentType, Record, TINMAN_MARK};
pub use session::{CipherSuite, SessionState, TlsRole, TlsSession, TlsVersion};
