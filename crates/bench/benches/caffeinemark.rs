//! Criterion bench over the Caffeinemark kernels × taint engines —
//! the wall-clock companion to `fig13_caffeinemark` (which reports
//! simulated cycles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tinman_apps::caffeinemark::{run_kernel, run_kernel_prebuilt, CaffeinemarkKernel};
use tinman_taint::TaintEngine;
use tinman_vm::CompiledImage;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("caffeinemark");
    group.sample_size(10);
    for kernel in CaffeinemarkKernel::ALL {
        for (engine_name, make) in [
            ("none", TaintEngine::none as fn() -> TaintEngine),
            ("full", TaintEngine::full as fn() -> TaintEngine),
            ("asym", TaintEngine::asymmetric as fn() -> TaintEngine),
        ] {
            group.bench_with_input(
                BenchmarkId::new(kernel.name(), engine_name),
                &kernel,
                |b, &k| {
                    b.iter(|| {
                        let mut engine = make();
                        run_kernel(k, &mut engine, 1)
                    })
                },
            );
        }
    }
    group.finish();
}

/// Interpreter vs block tier on each kernel (taint=none), with images
/// prebuilt and compiled outside the measured region — the wall-clock
/// source for `BENCH_caffeinemark.json`'s speedup claim.
fn bench_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("caffeinemark_tier");
    group.sample_size(10);
    for kernel in CaffeinemarkKernel::ALL {
        let image = kernel.build(1);
        let compiled = CompiledImage::compile(&image);
        group.bench_with_input(BenchmarkId::new(kernel.name(), "interp"), &kernel, |b, &k| {
            b.iter(|| {
                let mut engine = TaintEngine::none();
                run_kernel_prebuilt(k, &image, None, &mut engine)
            })
        });
        group.bench_with_input(BenchmarkId::new(kernel.name(), "blocks"), &kernel, |b, &k| {
            b.iter(|| {
                let mut engine = TaintEngine::none();
                run_kernel_prebuilt(k, &image, Some(&compiled), &mut engine)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_tiers);
criterion_main!(benches);
