//! Criterion bench over the Caffeinemark kernels × taint engines —
//! the wall-clock companion to `fig13_caffeinemark` (which reports
//! simulated cycles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tinman_apps::caffeinemark::{run_kernel, CaffeinemarkKernel};
use tinman_taint::TaintEngine;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("caffeinemark");
    group.sample_size(10);
    for kernel in CaffeinemarkKernel::ALL {
        for (engine_name, make) in [
            ("none", TaintEngine::none as fn() -> TaintEngine),
            ("full", TaintEngine::full as fn() -> TaintEngine),
            ("asym", TaintEngine::asymmetric as fn() -> TaintEngine),
        ] {
            group.bench_with_input(
                BenchmarkId::new(kernel.name(), engine_name),
                &kernel,
                |b, &k| {
                    b.iter(|| {
                        let mut engine = make();
                        run_kernel(k, &mut engine, 1)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
