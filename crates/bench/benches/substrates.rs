//! Criterion benches over the individual substrates: interpreter
//! throughput, DSM delta construction/application, TLS record
//! seal/open, and policy-engine checks. These quantify the harness
//! itself (wall-clock), complementing the simulated-time figures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tinman_apps::caffeinemark::CaffeinemarkKernel;
use tinman_cor::{AccessRequest, CorId, PolicyEngine, PolicyRule};
use tinman_dsm::{HeapDelta, PassthroughMaterializer};
use tinman_sim::SimTime;
use tinman_taint::TaintEngine;
use tinman_tls::{CipherSuite, ContentType, TlsRole, TlsSession, TlsVersion};
use tinman_vm::{interp, ExecConfig, Heap, Machine, Value};

fn bench_interpreter(c: &mut Criterion) {
    let image = CaffeinemarkKernel::Loop.build(1);
    // Count instructions once for throughput units.
    let instrs = {
        let mut m = Machine::new();
        let mut h = interp::NullHost;
        let mut e = TaintEngine::none();
        interp::run(&mut m, &image, &mut h, &mut e, ExecConfig::client()).unwrap();
        m.stats.instrs
    };
    let mut group = c.benchmark_group("interpreter");
    group.throughput(Throughput::Elements(instrs));
    group.bench_function("loop_kernel_instrs", |b| {
        b.iter(|| {
            let mut m = Machine::new();
            let mut h = interp::NullHost;
            let mut e = TaintEngine::none();
            interp::run(&mut m, &image, &mut h, &mut e, ExecConfig::client()).unwrap()
        })
    });
    group.finish();
}

fn bench_dsm(c: &mut Criterion) {
    let mut heap = Heap::new();
    for i in 0..500 {
        heap.alloc_str(format!("framework object number {i} with a payload"));
    }
    let obj = heap.alloc_obj(0, 8);
    heap.field_set(obj, 3, Value::Int(5)).unwrap();

    let mut group = c.benchmark_group("dsm");
    group.bench_function("build_full_delta_500_objects", |b| {
        b.iter(|| HeapDelta::build_full(&heap, &mut PassthroughMaterializer).unwrap())
    });
    let delta = HeapDelta::build_full(&heap, &mut PassthroughMaterializer).unwrap();
    group.bench_function("apply_full_delta_500_objects", |b| {
        b.iter(|| {
            let mut dst = Heap::new();
            delta.apply(&mut dst, &mut PassthroughMaterializer).unwrap();
            dst.len()
        })
    });
    group.finish();
}

fn bench_tls(c: &mut Criterion) {
    let master = [7u8; 32];
    let payload = vec![0x42u8; 1024];
    let mut group = c.benchmark_group("tls");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for (name, suite) in [
        ("rc4_seal_open_1k", CipherSuite::Rc4HmacSha256),
        ("cbc_seal_open_1k", CipherSuite::XteaCbcHmacSha256),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cl =
                    TlsSession::from_master(master, TlsVersion::Tls12, suite, TlsRole::Client, 1);
                let mut sv =
                    TlsSession::from_master(master, TlsVersion::Tls12, suite, TlsRole::Server, 2);
                let wire = cl.seal(ContentType::ApplicationData, &payload);
                sv.open(&wire).unwrap().len()
            })
        });
    }
    group.finish();
}

fn bench_policy(c: &mut Criterion) {
    let mut engine = PolicyEngine::new();
    engine.set_rule(
        CorId::new(0).unwrap(),
        PolicyRule {
            bound_app_hash: Some([1u8; 32]),
            domain_whitelist: vec!["site.com".into()],
            time_window_hours: Some((8, 22)),
            max_uses_per_day: Some(1_000_000),
            ..Default::default()
        },
    );
    let req = AccessRequest {
        cor: CorId::new(0).unwrap(),
        app_hash: [1u8; 32],
        dest_domain: Some("site.com".into()),
        device: "phone-1".into(),
        now: SimTime::ZERO + tinman_sim::SimDuration::from_secs(10 * 3600),
    };
    c.bench_function("policy_full_rule_check", |b| b.iter(|| engine.check(&req, &[]).is_allowed()));
}

criterion_group!(benches, bench_interpreter, bench_dsm, bench_tls, bench_policy);
criterion_main!(benches);
