//! Criterion bench over the end-to-end login pipeline — measures the
//! harness's wall-clock cost of a full TinMan login (offload + payload
//! replacement) per app.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tinman_apps::logins::LoginAppSpec;
use tinman_bench::{run_stock_login, run_warm_login};
use tinman_sim::LinkProfile;

fn bench_logins(c: &mut Criterion) {
    let mut group = c.benchmark_group("login");
    group.sample_size(10);
    for spec in LoginAppSpec::table3() {
        group.bench_with_input(BenchmarkId::new("tinman", spec.name), &spec, |b, s| {
            b.iter(|| run_warm_login(s, LinkProfile::wifi()).1.latency)
        });
        group.bench_with_input(BenchmarkId::new("stock", spec.name), &spec, |b, s| {
            b.iter(|| run_stock_login(s, LinkProfile::wifi()).1.latency)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_logins);
criterion_main!(benches);
