#![warn(missing_docs)]
//! Shared harness code for the per-figure benchmark binaries.
//!
//! Every table and figure of the paper's §6 evaluation has a binary in
//! `src/bin/` that rebuilds the experiment and prints the same rows/series
//! the paper reports, plus a JSON blob for EXPERIMENTS.md generation. The
//! pieces they share — world construction, the login-run loop, formatting —
//! live here so each binary stays a readable script.

use std::collections::HashMap;

use tinman_apps::logins::{build_login_app, LoginAppSpec};
use tinman_apps::servers::{install_auth_server, AuthServerSpec};
use tinman_cor::CorStore;
use tinman_core::runtime::{Mode, RunReport, TinmanConfig, TinmanRuntime};
use tinman_sim::{LinkProfile, SimDuration};

/// The password used by every harness world. Its value is irrelevant to
/// the measurements; having one canonical constant makes residue checks
/// uniform.
pub const HARNESS_PASSWORD: &str = "hunter2-sUp3r-s3cret";

/// The scripted inputs every login app expects.
pub fn harness_inputs() -> HashMap<String, String> {
    HashMap::from([
        ("username".to_owned(), "alice".to_owned()),
        ("amount".to_owned(), "99.95".to_owned()),
    ])
}

/// Builds a ready world for one login spec: cor registered, auth server
/// installed, mark filter armed.
pub fn login_world(spec: &LoginAppSpec, link: LinkProfile) -> TinmanRuntime {
    let mut store = CorStore::new(99);
    store.register(HARNESS_PASSWORD, spec.cor_description, &[spec.domain]).expect("label space");
    let mut rt = TinmanRuntime::new(store, link, TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: HARNESS_PASSWORD.to_owned(),
            hash_login: spec.hash_login,
            think: SimDuration::from_millis(server_think_ms(spec.name)),
            page_bytes: page_bytes(spec.name),
        },
    );
    rt
}

/// Per-site server processing time *per request*. Two-round apps (eBay,
/// Ask.fm) pay it twice. Calibrated together with [`page_bytes`] so the
/// stock login latencies land near the paper's Figure 14/15 baselines.
pub fn server_think_ms(app: &str) -> u64 {
    match app {
        "paypal" => 2550,
        "ebay" => 1100,
        "github" => 1900,
        "askfm" => 1210,
        _ => 500,
    }
}

/// Bytes of page/resource content the site returns with the first login
/// response — what makes the 3G baseline visibly slower than Wi-Fi, as in
/// the paper. 2013-era login landing flows moved on the order of a
/// megabyte of page assets.
pub fn page_bytes(app: &str) -> usize {
    match app {
        "paypal" => 1_400_000,
        "ebay" => 1_200_000,
        "github" => 1_000_000,
        "askfm" => 1_100_000,
        _ => 100_000,
    }
}

/// Runs one warm TinMan login and returns the report (the first, cold run
/// is executed and discarded, matching the paper's warm-up methodology).
pub fn run_warm_login(spec: &LoginAppSpec, link: LinkProfile) -> (TinmanRuntime, RunReport) {
    let app = build_login_app(spec);
    let mut rt = login_world(spec, link);
    let inputs = harness_inputs();
    let cold = rt.run_app(&app, Mode::TinMan, &inputs).expect("cold login");
    assert_eq!(cold.result, tinman_vm::Value::Int(1), "{} cold login failed", spec.name);
    let warm = rt.run_app(&app, Mode::TinMan, &inputs).expect("warm login");
    assert_eq!(warm.result, tinman_vm::Value::Int(1), "{} warm login failed", spec.name);
    (rt, warm)
}

/// Runs one stock-Android login (the user types the secret) and returns
/// the report.
pub fn run_stock_login(spec: &LoginAppSpec, link: LinkProfile) -> (TinmanRuntime, RunReport) {
    let app = build_login_app(spec);
    let mut rt = login_world(spec, link);
    let secrets = HashMap::from([(spec.cor_description.to_owned(), HARNESS_PASSWORD.to_owned())]);
    let report = rt.run_app(&app, Mode::Stock(secrets), &harness_inputs()).expect("stock login");
    assert_eq!(report.result, tinman_vm::Value::Int(1), "{} stock login failed", spec.name);
    (rt, report)
}

/// Formats a duration as seconds with two decimals, the paper's unit.
pub fn secs(d: SimDuration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Prints a standard experiment header.
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("================================================================");
}

/// Emits the machine-readable result blob consumed by EXPERIMENTS.md
/// tooling.
pub fn emit_json(experiment: &str, value: serde_json::Value) {
    let blob = serde_json::json!({ "experiment": experiment, "data": value });
    println!("\nJSON: {blob}");
}

/// The shared body of the Figure 14/15 binaries: per-app stock vs TinMan
/// login latency with the TinMan delta split into DSM and SSL/TCP
/// components, on the given link.
pub fn login_figure(link: LinkProfile, experiment: &str, title: &str) {
    banner(
        &format!("{title} — login-time breakdown, after warm-up"),
        "TinMan (EuroSys'15) §6.2, Figures 14/15",
    );
    println!(
        "{:<8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9}",
        "app", "stock", "tinman", "dsm", "ssl/tcp", "exec", "net+srv"
    );

    let mut rows = Vec::new();
    let mut sum_stock = SimDuration::ZERO;
    let mut sum_tinman = SimDuration::ZERO;
    let mut sum_dsm = SimDuration::ZERO;
    let mut sum_ssl = SimDuration::ZERO;
    let specs = LoginAppSpec::table3();
    for spec in &specs {
        let (_rt, stock) = run_stock_login(spec, link.clone());
        let (_rt, tinman) = run_warm_login(spec, link.clone());
        let dsm = tinman.breakdown.get("dsm");
        let ssl = tinman.breakdown.get("ssl_tcp");
        let exec = tinman.breakdown.get("exec.client") + tinman.breakdown.get("exec.node");
        let net = tinman.breakdown.get("net.server");
        println!(
            "{:<8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9}",
            spec.name,
            secs(stock.latency),
            secs(tinman.latency),
            secs(dsm),
            secs(ssl),
            secs(exec),
            secs(net),
        );
        sum_stock += stock.latency;
        sum_tinman += tinman.latency;
        sum_dsm += dsm;
        sum_ssl += ssl;
        rows.push(serde_json::json!({
            "app": spec.name,
            "stock_s": stock.latency.as_secs_f64(),
            "tinman_s": tinman.latency.as_secs_f64(),
            "dsm_s": dsm.as_secs_f64(),
            "ssl_tcp_s": ssl.as_secs_f64(),
            "exec_s": exec.as_secs_f64(),
            "net_server_s": net.as_secs_f64(),
        }));
    }
    let n = specs.len() as u64;
    println!("--------------------------------------------------------------");
    println!(
        "{:<8} {:>9} {:>9} {:>8} {:>8}",
        "average",
        secs(sum_stock / n),
        secs(sum_tinman / n),
        secs(sum_dsm / n),
        secs(sum_ssl / n),
    );
    if link.name == "wifi" {
        println!("\npaper (Wi-Fi): stock avg 4.0s, TinMan avg 5.95s, DSM 0.8s, SSL/TCP 1.2s");
    } else {
        println!("\npaper (3G): stock avg 5.4s, TinMan avg 8.2s, DSM 1.2s, other 1.6s");
    }
    emit_json(
        experiment,
        serde_json::json!({
            "link": link.name,
            "rows": rows,
            "avg_stock_s": (sum_stock / n).as_secs_f64(),
            "avg_tinman_s": (sum_tinman / n).as_secs_f64(),
            "avg_dsm_s": (sum_dsm / n).as_secs_f64(),
            "avg_ssl_tcp_s": (sum_ssl / n).as_secs_f64(),
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_login_runs_for_every_table3_app() {
        for spec in LoginAppSpec::table3() {
            let (_rt, report) = run_warm_login(&spec, LinkProfile::wifi());
            assert!(report.offloads >= 1, "{}", spec.name);
        }
    }

    #[test]
    fn stock_login_has_no_offload_machinery() {
        let (_rt, report) = run_stock_login(&LoginAppSpec::github(), LinkProfile::wifi());
        assert_eq!(report.offloads, 0);
        assert_eq!(report.dsm.sync_count, 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(SimDuration::from_millis(2500)), "2.50s");
    }
}
