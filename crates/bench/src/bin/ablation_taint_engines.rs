//! Ablation: the client taint engine inside the full end-to-end login.
//!
//! Figure 13 isolates tainting cost on micro-benchmarks; this ablation
//! measures what the asymmetric optimization buys in the *system*: the
//! same PayPal login driven with the client under full (TaintDroid-grade)
//! tracking versus TinMan's asymmetric tracking, comparing client cycles,
//! taint-instrumentation cycles, and end-to-end latency.
//!
//! Note: the full engine never raises offload triggers (it is the trusted
//! node's configuration), so a cor-touching app cannot complete under
//! `Mode::FullTaint`; the comparison therefore uses the taint-free UI
//! phase of the login app, which is exactly where the always-on client
//! engine's cost lives.

use tinman_apps::caffeinemark::CaffeinemarkKernel;
use tinman_apps::logins::{build_login_app, LoginAppSpec};
use tinman_bench::{banner, emit_json, harness_inputs, login_world, secs};
use tinman_core::runtime::Mode;
use tinman_sim::LinkProfile;
use tinman_taint::TaintEngine;
use tinman_vm::{interp, ExecConfig, ExecEvent, Machine};

fn main() {
    banner(
        "Ablation — client taint engine (full vs asymmetric) in the system",
        "TinMan (EuroSys'15) §3.5 motivation",
    );

    // 1. End-to-end login under the TinMan (asymmetric) configuration.
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let inputs = harness_inputs();
    let mut rt = login_world(&spec, LinkProfile::wifi());
    rt.run_app(&app, Mode::TinMan, &inputs).expect("cold");
    let warm = rt.run_app(&app, Mode::TinMan, &inputs).expect("warm");
    let asym_taint_cycles = rt.client.machine.stats.taint_cycles;
    let asym_cycles = rt.client.machine.stats.cycles;

    // 2. The same app's client-side (taint-free) phase, interpreted under
    // each engine directly — what the phone pays per login for having the
    // engine always on.
    let ui_cycles = |mut engine: TaintEngine| -> (u64, u64) {
        let mut machine = Machine::new();
        let mut host = interp::NullHost;
        // Run only the UI warm-up: a standalone image with the same shape.
        let image = CaffeinemarkKernel::Method.build(4); // call-heavy proxy
        match interp::run(&mut machine, &image, &mut host, &mut engine, ExecConfig::client()) {
            Ok(ExecEvent::Halted(_)) => {}
            other => panic!("{other:?}"),
        }
        (machine.stats.cycles, machine.stats.taint_cycles)
    };
    let (none_c, _) = ui_cycles(TaintEngine::none());
    let (full_c, full_t) = ui_cycles(TaintEngine::full());
    let (asym_c, asym_t) = ui_cycles(TaintEngine::asymmetric());

    println!("end-to-end login (asymmetric client): {}", secs(warm.latency));
    println!(
        "  client cycles {asym_cycles}, of which taint instrumentation {asym_taint_cycles} \
         ({:.1}%)",
        100.0 * asym_taint_cycles as f64 / asym_cycles as f64
    );
    println!("\nclient-phase interpreter cost (call-heavy proxy workload):");
    println!("  none:       {none_c} cycles");
    println!(
        "  asymmetric: {asym_c} cycles (+{:.1}%), instrumentation {asym_t}",
        100.0 * (asym_c as f64 / none_c as f64 - 1.0)
    );
    println!(
        "  full:       {full_c} cycles (+{:.1}%), instrumentation {full_t}",
        100.0 * (full_c as f64 / none_c as f64 - 1.0)
    );
    println!(
        "\nasymmetric tainting recovers {:.0}% of full tainting's instrumentation cost",
        100.0 * (1.0 - asym_t as f64 / full_t as f64)
    );

    emit_json(
        "ablation_taint_engines",
        serde_json::json!({
            "login_latency_s": warm.latency.as_secs_f64(),
            "login_taint_cycle_share": asym_taint_cycles as f64 / asym_cycles as f64,
            "proxy_cycles": { "none": none_c, "asym": asym_c, "full": full_c },
            "instrumentation_saved_fraction": 1.0 - asym_t as f64 / full_t as f64,
        }),
    );
}
