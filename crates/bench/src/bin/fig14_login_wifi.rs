//! Figure 14: login-time breakdown per app on Wi-Fi, after warm-up.
//!
//! The paper reports stock-Android versus TinMan login latency for the four
//! Table 3 apps on Wi-Fi, with TinMan's extra time split into DSM-based
//! offloading (~0.8 s average) and SSL/TCP offloading (~1.2 s average);
//! stock averages 4.0 s, TinMan 5.95 s.

fn main() {
    tinman_bench::login_figure(
        tinman_sim::LinkProfile::wifi(),
        "fig14_login_wifi",
        "Figure 14 (Wi-Fi)",
    );
}
