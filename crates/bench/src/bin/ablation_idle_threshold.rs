//! Ablation: the migrate-back idle threshold (§3.1 case 1).
//!
//! TinMan migrates execution back to the device after a "predefined
//! threshold of duration" without cor access. The tension: an app whose
//! offloaded phase alternates cor touches with taint-free stretches will
//! *ping-pong* if the threshold is shorter than the stretches (each
//! stretch migrates home, the next cor touch offloads again), but lingers
//! on the node — delaying any device-side I/O — if it is much longer.
//!
//! The login apps never hit this (their offloaded phase stays
//! taint-active), so this sweep uses a purpose-built app: `ROUNDS`
//! iterations of [one cor touch + a taint-free busy stretch of
//! `STRETCH_INSTRS` instructions].

use std::collections::HashMap;

use tinman_bench::{banner, emit_json, secs};
use tinman_cor::CorStore;
use tinman_core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman_sim::LinkProfile;
use tinman_vm::{AppImage, Insn, ProgramBuilder};

const ROUNDS: i64 = 6;
/// Instructions per taint-free stretch (~14 per loop iteration).
const STRETCH_ITERS: i64 = 600;

/// cor touch, then taint-free busywork, repeated.
fn build_alternating_app() -> AppImage {
    let mut p = ProgramBuilder::new("alternator");
    let n_select = p.native("ui.select_cor");
    let s_desc = p.string("Vault secret");

    let busy = p.define("busy", 0, 4, |b, _| {
        b.const_i(STRETCH_ITERS).store(2);
        b.const_i(1).store(3);
        b.for_loop(1, 2, |b| {
            b.load(3).const_i(7).op(Insn::Mul).const_i(251).op(Insn::Rem).store(3);
        });
        b.load(3).op(Insn::Ret);
    });

    let main = p.define("main", 0, 5, |b, _| {
        // locals: 0=pw, 1=i, 2=limit, 3=acc
        b.op(Insn::ConstS(s_desc)).op(Insn::CallNative(n_select, 1)).store(0);
        b.const_i(ROUNDS).store(2);
        b.const_i(0).store(3);
        b.for_loop(1, 2, |b| {
            // Touch the cor: charAt on the tainted string (offload
            // trigger on the client) — and discard the tainted value so
            // migrate-back is not barred by a tainted stack slot.
            b.load(0).load(1).op(Insn::StrCharAt).op(Insn::Pop);
            // Taint-free stretch.
            b.op(Insn::Call(busy)).op(Insn::Pop);
        });
        b.load(3).op(Insn::Halt);
    });
    p.build(main)
}

fn main() {
    banner(
        "Ablation — migrate-back taint-idle threshold sweep",
        "TinMan (EuroSys'15) §3.1, design choice",
    );
    println!(
        "{:>12} {:>8} {:>10} {:>12} {:>14}",
        "threshold", "syncs", "offloads", "latency", "behaviour"
    );

    let app = build_alternating_app();
    let inputs: HashMap<String, String> = HashMap::new();
    let mut rows = Vec::new();
    // A stretch is ~14 instructions per iteration x 600 iterations ≈ 8.4k
    // instructions; thresholds straddle it.
    for threshold in [500u64, 2_000, 5_000, 10_000, 30_000, 100_000] {
        let mut store = CorStore::new(3);
        store.register("vault-secret-value", "Vault secret", &[]).unwrap();
        let config = TinmanConfig { taint_idle_limit: threshold, ..TinmanConfig::default() };
        let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), config);
        rt.run_app(&app, Mode::TinMan, &inputs).expect("cold");
        let warm = rt.run_app(&app, Mode::TinMan, &inputs).expect("warm");
        let behaviour = if warm.offloads as i64 >= ROUNDS {
            "ping-pong"
        } else if warm.offloads == 1 {
            "stays remote"
        } else {
            "mixed"
        };
        println!(
            "{:>12} {:>8} {:>10} {:>12} {:>14}",
            threshold,
            warm.dsm.sync_count,
            warm.offloads,
            secs(warm.latency),
            behaviour
        );
        rows.push(serde_json::json!({
            "threshold": threshold,
            "syncs": warm.dsm.sync_count,
            "offloads": warm.offloads,
            "latency_s": warm.latency.as_secs_f64(),
        }));
    }
    println!("\nbelow the stretch length every taint-free stretch migrates home and the");
    println!("next cor touch re-offloads (2 syncs per round); above it the phase stays");
    println!("on the node and completes with the minimum sync count.");
    emit_json("ablation_idle_threshold", serde_json::json!({ "rows": rows }));
}
