//! Figure 16: battery level under a 30-minute PayPal login stress test.
//!
//! The paper runs PayPal login back-to-back for 30 minutes on stock Android
//! and on TinMan, sampling the battery every 10 seconds: Android ends at
//! ~93%, TinMan at ~91% — the offloading traffic and tainting cost ~2
//! battery points over half an hour of continuous logins.

use tinman_apps::logins::{build_login_app, LoginAppSpec};
use tinman_bench::{banner, emit_json, harness_inputs, login_world, HARNESS_PASSWORD};
use tinman_core::runtime::Mode;
use tinman_sim::{LinkProfile, SimDuration};

const STRESS: SimDuration = SimDuration::from_secs(30 * 60);
const SAMPLE_EVERY: SimDuration = SimDuration::from_secs(10);

/// Runs login-stress for 30 simulated minutes; returns (time, percent)
/// samples at 10-second granularity.
fn stress(mode_stock: bool) -> Vec<(f64, f64)> {
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let mut rt = login_world(&spec, LinkProfile::wifi());
    let inputs = harness_inputs();

    // Warm the node cache outside the measured window (the paper measures
    // after warm-up).
    if !mode_stock {
        rt.run_app(&app, Mode::TinMan, &inputs).expect("warmup login");
    }
    let start = rt.clock().now();
    let mut samples = vec![(0.0, rt.client.battery.percent())];
    let mut next_sample = SAMPLE_EVERY;

    while rt.clock().now().since(start) < STRESS {
        let mode = if mode_stock {
            Mode::Stock(std::collections::HashMap::from([(
                spec.cor_description.to_owned(),
                HARNESS_PASSWORD.to_owned(),
            )]))
        } else {
            Mode::TinMan
        };
        let report = rt.run_app(&app, mode, &inputs).expect("stress login");
        assert_eq!(report.result, tinman_vm::Value::Int(1));
        // Record every 10 s crossing within the login we just ran.
        let elapsed = rt.clock().now().since(start);
        while next_sample <= elapsed {
            samples.push((next_sample.as_secs_f64(), rt.client.battery.percent()));
            next_sample += SAMPLE_EVERY;
        }
    }
    samples
}

fn main() {
    banner(
        "Figure 16 — battery level, 30-minute PayPal login stress",
        "TinMan (EuroSys'15) §6.4, Figure 16",
    );
    let android = stress(true);
    let tinman = stress(false);

    println!("{:>8} {:>12} {:>12}", "t (min)", "android (%)", "tinman (%)");
    for minutes in (0..=30).step_by(5) {
        let t = minutes as f64 * 60.0;
        let a = android.iter().rev().find(|(s, _)| *s <= t).map(|(_, p)| *p).unwrap_or(100.0);
        let b = tinman.iter().rev().find(|(s, _)| *s <= t).map(|(_, p)| *p).unwrap_or(100.0);
        println!("{minutes:>8} {a:>11.1}% {b:>11.1}%");
    }
    let android_end = android.last().map(|(_, p)| *p).unwrap_or(100.0);
    let tinman_end = tinman.last().map(|(_, p)| *p).unwrap_or(100.0);
    println!("\nfinal: android {android_end:.1}%, tinman {tinman_end:.1}%");
    println!("paper: android 93%, tinman 91% after 30 minutes");

    emit_json(
        "fig16_battery_login",
        serde_json::json!({
            "android_final_pct": android_end,
            "tinman_final_pct": tinman_end,
            "paper_android_pct": 93.0,
            "paper_tinman_pct": 91.0,
            "samples_android": android.iter().step_by(6).collect::<Vec<_>>(),
            "samples_tinman": tinman.iter().step_by(6).collect::<Vec<_>>(),
        }),
    );
}
