//! Figure 17: battery level across three 10-minute workload phases
//! (game, web browsing, video playback), with no cor access.
//!
//! The point of the experiment is the cost of the *always-on client
//! tainting*: even when no cor is touched, the asymmetric engine
//! instruments heap moves on everything the user runs. The paper's curves
//! for Android and TinMan nearly coincide — the tainting overhead is a
//! small CPU-energy delta on top of display/radio-dominated workloads.
//!
//! Method: each workload's representative kernel runs on the real
//! interpreter under `none` and `asymmetric` engines to *measure* its
//! instrumentation overhead ratio; the phase's energy is then modelled as
//! display + radio + CPU(duty x overhead) over the 10-minute wall clock.

use tinman_apps::workloads::Workload;
use tinman_bench::{banner, emit_json};
use tinman_sim::{Battery, DeviceProfile, LinkProfile, MicroJoules, SimDuration};
use tinman_taint::EngineKind;

const PHASE: SimDuration = SimDuration::from_secs(10 * 60);

/// Simulates the three phases; returns `(minute, percent)` samples.
fn run(kind: EngineKind) -> Vec<(u64, f64)> {
    let profile = DeviceProfile::galaxy_nexus();
    let link = LinkProfile::wifi();
    let mut battery = Battery::galaxy_nexus();
    let mut samples = vec![(0, battery.percent())];
    let mut minute = 0u64;

    for workload in Workload::ALL {
        let overhead = workload.taint_overhead(kind);
        let (tx_rate, rx_rate) = workload.radio_bytes_per_sec();
        for _ in 0..10 {
            let d = SimDuration::from_secs(60);
            // CPU: duty-cycled execution, inflated by the measured taint
            // instrumentation ratio.
            let instrs = (profile.instrs_per_sec as f64 * 60.0 * workload.cpu_duty()) as u64;
            let cpu = MicroJoules::from_nanojoules(
                (instrs as f64 * profile.nj_per_instr as f64 * overhead) as u64,
            );
            // Display + idle baseline for the minute.
            let display = MicroJoules::from_power(profile.display_power_mw, d);
            let idle = MicroJoules::from_power(profile.idle_power_mw, d);
            // Radio for the workload's traffic.
            let radio = link.tx_energy(tx_rate * 60) + link.rx_energy(rx_rate * 60);
            battery.drain(cpu + display + idle + radio);
            minute += 1;
            samples.push((minute, battery.percent()));
        }
    }
    let _ = PHASE;
    samples
}

fn main() {
    banner(
        "Figure 17 — battery level, game/web/video phases (taint cost only)",
        "TinMan (EuroSys'15) §6.4, Figure 17",
    );
    let android = run(EngineKind::None);
    let tinman = run(EngineKind::Asymmetric);

    println!("{:>8} {:>12} {:>12}   phase", "t (min)", "android (%)", "tinman (%)");
    for m in (0..=30).step_by(5) {
        let a = android.iter().find(|(t, _)| *t == m).map(|(_, p)| *p).unwrap();
        let b = tinman.iter().find(|(t, _)| *t == m).map(|(_, p)| *p).unwrap();
        let phase = match m {
            0..=9 => "game",
            10..=19 => "web",
            _ => "video",
        };
        println!("{m:>8} {a:>11.1}% {b:>11.1}%   {phase}");
    }
    let delta = android.last().unwrap().1 - tinman.last().unwrap().1;
    println!("\nfinal gap: {delta:.2} battery points over 30 minutes");
    println!("paper: the two curves nearly coincide (small tainting overhead)");

    // Per-workload measured overheads, for the record.
    let mut rows = Vec::new();
    for w in Workload::ALL {
        let asym = w.taint_overhead(EngineKind::Asymmetric);
        let full = w.taint_overhead(EngineKind::Full);
        println!(
            "{:<6} measured instrumentation: asym {:+.1}%, full {:+.1}%",
            w.name(),
            100.0 * (asym - 1.0),
            100.0 * (full - 1.0)
        );
        rows.push(serde_json::json!({
            "workload": w.name(),
            "asym_overhead": asym - 1.0,
            "full_overhead": full - 1.0,
        }));
    }
    emit_json(
        "fig17_battery_workloads",
        serde_json::json!({
            "android_final_pct": android.last().unwrap().1,
            "tinman_final_pct": tinman.last().unwrap().1,
            "final_gap_points": delta,
            "workload_overheads": rows,
        }),
    );
}
