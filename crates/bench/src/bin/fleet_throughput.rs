//! Fleet throughput: drives N concurrent device sessions against the
//! trusted-node pool and reports aggregate throughput, latency
//! percentiles, and per-node utilization.
//!
//! Usage: `fleet_throughput [--sessions N] [--workers N] [--nodes N]
//! [--seed N] [--down NODE ...] [--trace PATH] [--chaos [PLAN]]
//! [--hostile [PLAN]] [--vault-crash] [--chaos-seed N] [--tenants N]
//! [--deny DOMAIN ...] [--unattested NODE ...] [--topology] [--handoff]
//! [--regions N] [--drain] [--json-out [PATH]]`
//!
//! The simulated aggregate is bit-identical for any `--workers` value;
//! only the wall-clock fields change. Run with `--workers 1` and
//! `--workers 8` and diff the `simulated` blobs to check.
//!
//! `--trace PATH` writes a Chrome trace_event JSON of the whole run
//! (one track per device session) — open it at `chrome://tracing` or
//! <https://ui.perfetto.dev>. Tracing never changes the simulated
//! aggregate.
//!
//! `--chaos [PLAN]` runs the fleet under a canned `tinman-chaos` fault
//! plan (`crash-primary`, `recovery`, `partition`, `wire-noise`,
//! `vault-crash`) with circuit-breaker placement and checkpoint/replay
//! recovery; with no PLAN it starts from the empty plan (chaos
//! machinery on, no injected faults). `--vault-crash` appends the
//! canned vault crash/replica-lag events — WAL crashes mid-commit, torn
//! tails, compaction crashes, lagging replicas — to whatever plan is
//! active. `--chaos-seed N` reseeds the plan's fault dice; two runs
//! with the same seeds emit byte-identical simulated aggregates.
//!
//! `--hostile [PLAN]` appends hostile-guest events (default: the canned
//! `hostile-guest` plan — every session runs a budget-exhausting guest)
//! to whatever plan is active: sessions run under the per-session
//! guard, runaway guests are killed with their node heaps scrubbed, and
//! overloaded placements are shed. The summary grows a `guard` line
//! with kills, sheds, and the exhaustion breakdown.
//!
//! `--tenants N` round-robins sessions over N tenants: vault audits run
//! sealed under per-tenant key hierarchies (ciphertext at rest, zero
//! cross-tenant residue), nodes must pass the taint-engine attestation
//! gate, and the per-tenant declassification policy (`--deny DOMAIN`
//! adds a denied domain; `--unattested NODE` marks a node as failing
//! attestation) is enforced fail-closed. The summary grows a `tenant`
//! line and the simulated aggregate stays byte-identical across
//! `--workers` values.
//!
//! `--topology` runs every session's world as a routed internet —
//! subnets, routers, a NAT gateway in front of the phone, a DNS
//! resolver — so the `RouterCrash`/`NatTableFlush`/`DnsOutage`/
//! `HandoffStorm` chaos families (e.g. `--chaos nat-traversal`) have
//! teeth. `--handoff` additionally schedules a standing Wi-Fi ↔ 3G
//! handoff storm in every session (the first switch lands mid-offload).
//! Both add a `net` summary line with the availability columns
//! (handoffs, NAT rewrites/rebinds, DNS faults, route drops); the
//! simulated aggregate stays byte-identical across `--workers` values.
//!
//! `--regions N` partitions the pool into N trusted-node regions behind
//! the deterministic placement front: sessions home to a region by
//! placement key, membership chaos families (`--chaos region-failover`,
//! `--chaos rolling-upgrade`) drain and kill whole regions, and
//! in-flight sessions live-migrate to a peer region or fail closed as
//! `no_region`. `--drain` puts node 0 into a standing drain so every
//! run exercises the checkpoint/migrate/scrub path. Both add a `region`
//! summary line (migrations, evacuations, region failovers, migration
//! residue, no-region kills); the simulated aggregate stays
//! byte-identical across `--workers` values.
//!
//! `--json-out [PATH]` additionally writes a schema'd benchmark record
//! (throughput, latency percentiles, bytes synced, tenancy counters) to
//! PATH — default `BENCH_fleet_throughput.json` — for baseline diffing.

use tinman_bench::{banner, emit_json};
use tinman_chaos::ChaosPlan;
use tinman_fleet::{run_fleet_chaos, run_fleet_obs, FleetConfig, FleetObs};
use tinman_obs::{chrome_trace_json, TraceHandle};

struct Args {
    sessions: usize,
    workers: usize,
    nodes: usize,
    seed: Option<u64>,
    down: Vec<usize>,
    trace: Option<String>,
    chaos: Option<String>,
    hostile: Option<String>,
    vault_crash: bool,
    chaos_seed: Option<u64>,
    tenants: usize,
    deny: Vec<String>,
    unattested: Vec<usize>,
    topology: bool,
    handoff: bool,
    regions: u32,
    drain: bool,
    json_out: Option<String>,
}

/// Pops the flag's required value out of `argv`.
fn take(argv: &[String], i: &mut usize, name: &str) -> String {
    let v = argv.get(*i).unwrap_or_else(|| panic!("{name} needs a value")).clone();
    *i += 1;
    v
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 200,
        workers: 4,
        nodes: 4,
        seed: None,
        down: Vec::new(),
        trace: None,
        chaos: None,
        hostile: None,
        vault_crash: false,
        chaos_seed: None,
        tenants: 0,
        deny: Vec::new(),
        unattested: Vec::new(),
        topology: false,
        handoff: false,
        regions: 1,
        drain: false,
        json_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        i += 1;
        match flag.as_str() {
            "--sessions" => args.sessions = take(&argv, &mut i, &flag).parse().expect("--sessions"),
            "--workers" => args.workers = take(&argv, &mut i, &flag).parse().expect("--workers"),
            "--nodes" => args.nodes = take(&argv, &mut i, &flag).parse().expect("--nodes"),
            "--seed" => args.seed = Some(take(&argv, &mut i, &flag).parse().expect("--seed")),
            "--down" => args.down.push(take(&argv, &mut i, &flag).parse().expect("--down")),
            "--trace" => args.trace = Some(take(&argv, &mut i, &flag)),
            "--chaos" => {
                // The plan name is optional: a following flag (or end of
                // argv) means "empty plan" — chaos machinery on, faults
                // supplied by other flags like --vault-crash.
                let named = argv.get(i).filter(|v| !v.starts_with("--")).cloned();
                if named.is_some() {
                    i += 1;
                }
                args.chaos = Some(named.unwrap_or_default());
            }
            "--hostile" => {
                // Same optional-value shape as --chaos: with no PLAN the
                // canned hostile-guest plan is appended.
                let named = argv.get(i).filter(|v| !v.starts_with("--")).cloned();
                if named.is_some() {
                    i += 1;
                }
                args.hostile = Some(named.unwrap_or_default());
            }
            "--vault-crash" => args.vault_crash = true,
            "--chaos-seed" => {
                args.chaos_seed = Some(take(&argv, &mut i, &flag).parse().expect("--chaos-seed"));
            }
            "--tenants" => args.tenants = take(&argv, &mut i, &flag).parse().expect("--tenants"),
            "--deny" => args.deny.push(take(&argv, &mut i, &flag)),
            "--unattested" => {
                args.unattested.push(take(&argv, &mut i, &flag).parse().expect("--unattested"));
            }
            "--topology" => args.topology = true,
            "--handoff" => {
                args.handoff = true;
                // A handoff storm is only meaningful on a routed world.
                args.topology = true;
            }
            "--regions" => args.regions = take(&argv, &mut i, &flag).parse().expect("--regions"),
            "--drain" => args.drain = true,
            "--json-out" => {
                // Optional value, same shape as --chaos: with no PATH the
                // record lands in BENCH_fleet_throughput.json.
                let named = argv.get(i).filter(|v| !v.starts_with("--")).cloned();
                if named.is_some() {
                    i += 1;
                }
                args.json_out =
                    Some(named.unwrap_or_else(|| "BENCH_fleet_throughput.json".to_owned()));
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Ring capacity for `--trace`: roughly 60 events per login session,
/// with headroom; the sink drops oldest past this and reports the count.
const TRACE_CAPACITY: usize = 1 << 20;

fn main() {
    let parsed = parse_args();
    banner(
        &format!(
            "Fleet throughput — {} sessions, {} workers, {} nodes",
            parsed.sessions, parsed.workers, parsed.nodes
        ),
        "tinman-fleet (deployment-scale extension of the paper's evaluation)",
    );

    let mut cfg = FleetConfig::new(parsed.sessions, parsed.workers);
    cfg.nodes = parsed.nodes;
    if let Some(seed) = parsed.seed {
        cfg.seed = seed;
    }
    cfg.faults.down_nodes = parsed.down.clone();
    cfg.tenants = parsed.tenants;
    cfg.tenant_deny = parsed.deny.clone();
    cfg.unattested_nodes = parsed.unattested.clone();
    cfg.topology = parsed.topology;
    cfg.handoff = parsed.handoff;
    cfg.regions = parsed.regions;
    cfg.drain = parsed.drain;

    let mut obs = FleetObs::default();
    let sink = parsed.trace.as_ref().map(|_| {
        let (handle, sink) = TraceHandle::ring(TRACE_CAPACITY);
        obs.trace = handle;
        sink
    });

    // Tenancy rides the chaos scheduler (its gates live there), so
    // --tenants forces the chaos path even with no injected faults.
    // Routed worlds (and their handoff storms) are likewise built by the
    // chaos executor, so --topology/--handoff force the chaos path too.
    // Regions and drains live in the membership schedule, which only the
    // chaos executor builds — --regions/--drain force the chaos path.
    let wants_chaos = parsed.chaos.is_some()
        || parsed.vault_crash
        || parsed.hostile.is_some()
        || parsed.tenants > 0
        || parsed.topology
        || parsed.regions > 1
        || parsed.drain;
    let plan = wants_chaos.then(|| {
        let mut plan = match parsed.chaos.as_deref() {
            None | Some("") => ChaosPlan::empty(),
            Some(name) => ChaosPlan::canned(name).unwrap_or_else(|| {
                eprintln!(
                    "unknown chaos plan {name:?}; known plans: {}",
                    ChaosPlan::canned_names().join(", ")
                );
                std::process::exit(2);
            }),
        };
        if parsed.vault_crash {
            let vault = ChaosPlan::canned("vault-crash").expect("canned vault-crash plan");
            plan.events.extend(vault.events);
        }
        if let Some(name) = parsed.hostile.as_deref() {
            let name = if name.is_empty() { "hostile-guest" } else { name };
            let hostile = ChaosPlan::canned(name).unwrap_or_else(|| {
                eprintln!(
                    "unknown hostile plan {name:?}; known plans: {}",
                    ChaosPlan::canned_names().join(", ")
                );
                std::process::exit(2);
            });
            plan.events.extend(hostile.events);
        }
        if let Some(seed) = parsed.chaos_seed {
            plan.seed = seed;
        }
        plan
    });

    let report = match &plan {
        Some(plan) => run_fleet_chaos(&cfg, plan, &obs),
        None => run_fleet_obs(&cfg, &obs),
    }
    .unwrap_or_else(|e| {
        eprintln!("fleet refused to start: {e}");
        std::process::exit(2);
    });

    if let (Some(path), Some(sink)) = (parsed.trace.as_deref(), sink) {
        let records = sink.snapshot();
        std::fs::write(path, chrome_trace_json(&records)).expect("write --trace file");
        let dropped = sink.dropped();
        println!(
            "trace: {} events -> {path}{}",
            records.len(),
            if dropped > 0 { format!(" ({dropped} oldest dropped)") } else { String::new() }
        );
    }

    println!(
        "\nsessions {} | ok {} | failed {} | failovers {}",
        report.sessions, report.ok, report.failed, report.failovers
    );
    if plan.is_some() {
        println!(
            "chaos    replays {} | success-after-retry {} | fail-closed {} | \
             deliveries {} (+{} deduped) | residue violations {}",
            report.replays,
            report.success_after_retry,
            report.fail_closed,
            report.deliveries,
            report.duplicate_deliveries,
            report.residue_violations,
        );
        println!(
            "vault    recoveries {} | torn repairs {} | lost cors {} | stale serves {} | \
             catch-up lsns {} | wal plaintexts {} | device leaks {}",
            report.vault_recoveries,
            report.torn_tail_repairs,
            report.lost_cors,
            report.stale_serves,
            report.vault_catchup_lsns,
            report.wal_plaintexts,
            report.wal_device_leaks,
        );
        let [fuel, heap, depth, dsm, deadline] = report.budget_exhaustions;
        println!(
            "guard    kills {} | shed {} | exhausted fuel/heap/depth/dsm/deadline \
             {}/{}/{}/{}/{}",
            report.guest_kills, report.shed_sessions, fuel, heap, depth, dsm, deadline,
        );
    }
    if parsed.topology {
        println!(
            "net      handoffs {} | nat rewrites {} | nat rebinds {} | dns faults {} | \
             route drops {}",
            report.handoffs,
            report.nat_rewrites,
            report.nat_rebinds,
            report.dns_faults,
            report.route_drops,
        );
    }
    if report.region_mode {
        println!(
            "region   regions {} | migrations {} | evacuations {} | region failovers {} | \
             migration residue {} | no-region kills {}",
            parsed.regions,
            report.migrations,
            report.evacuations,
            report.region_failovers,
            report.migration_residue,
            report.no_region_kills,
        );
    }
    if parsed.tenants > 0 {
        println!(
            "tenant   tenants {} | policy denials {} | cross-tenant residue {} | \
             unattested refusals {} | key rotations {} | wal plaintexts {}",
            parsed.tenants,
            report.policy_denials,
            report.cross_tenant_residue,
            report.unattested_refusals,
            report.tenant_key_rotations,
            report.wal_plaintexts,
        );
    }
    println!(
        "latency  p50 {:>8.2}s  p95 {:>8.2}s  p99 {:>8.2}s  mean {:>8.2}s",
        report.latency.p50.as_secs_f64(),
        report.latency.p95.as_secs_f64(),
        report.latency.p99.as_secs_f64(),
        report.latency.mean.as_secs_f64(),
    );
    println!(
        "offloads {} | node methods {} | dsm syncs {} | tx {} B | rx {} B",
        report.offloads, report.node_methods, report.dsm_syncs, report.tx_bytes, report.rx_bytes
    );
    for n in &report.per_node {
        print!(
            "  {:<20} {:>5} sessions  busy {:>9.2}s  util {:>5.1}%  [{}]",
            n.name,
            n.sessions,
            n.busy.as_secs_f64(),
            n.utilization * 100.0,
            n.health
        );
        if plan.is_some() {
            print!(
                "  breaker closed/open/half {}/{}/{}",
                n.breaker_closed, n.breaker_open, n.breaker_half_open
            );
        }
        println!();
    }
    println!(
        "throughput: {:.2} sessions/sim-s | {:.2} sessions/wall-s ({} workers, {:.2}s wall)",
        report.sim_throughput, report.wall_throughput, report.workers, report.wall_secs
    );

    if let Some(path) = parsed.json_out.as_deref() {
        let record = bench_record(&parsed, &plan, &report);
        let blob = serde_json::to_string_pretty(&record).expect("serialize bench record");
        std::fs::write(path, blob + "\n").expect("write --json-out file");
        println!("bench record -> {path}");
    }

    emit_json("fleet_throughput", report.to_value());
}

/// The schema'd benchmark record `--json-out` writes: a stable,
/// versioned subset for baseline diffing — throughput, latency
/// percentiles, bytes synced, and (when tenancy is on) the tenant
/// isolation counters.
fn bench_record(
    parsed: &Args,
    plan: &Option<ChaosPlan>,
    report: &tinman_fleet::FleetReport,
) -> serde_json::Value {
    serde_json::json!({
        "schema": "tinman.fleet_throughput/v1",
        "config": {
            "sessions": parsed.sessions as u64,
            "workers": parsed.workers as u64,
            "nodes": parsed.nodes as u64,
            "tenants": parsed.tenants as u64,
            "chaos": plan.is_some(),
            "topology": parsed.topology,
            "handoff": parsed.handoff,
            "regions": parsed.regions as u64,
            "drain": parsed.drain,
        },
        "throughput": {
            "sessions_per_sim_sec": report.sim_throughput,
            "sessions_per_wall_sec": report.wall_throughput,
            "ok": report.ok,
            "failed": report.failed,
        },
        "latency_ns": {
            "p50": report.latency.p50.as_nanos(),
            "p95": report.latency.p95.as_nanos(),
            "p99": report.latency.p99.as_nanos(),
            "mean": report.latency.mean.as_nanos(),
        },
        "bytes_synced": {
            "tx": report.tx_bytes,
            "rx": report.rx_bytes,
            "dsm_syncs": report.dsm_syncs,
        },
        "net": {
            "handoffs": report.handoffs,
            "nat_rewrites": report.nat_rewrites,
            "nat_rebinds": report.nat_rebinds,
            "dns_faults": report.dns_faults,
            "route_drops": report.route_drops,
        },
        "region": {
            "migrations": report.migrations,
            "evacuations": report.evacuations,
            "region_failovers": report.region_failovers,
            "migration_residue": report.migration_residue,
            "no_region_kills": report.no_region_kills,
        },
        "tenancy": {
            "policy_denials": report.policy_denials,
            "cross_tenant_residue": report.cross_tenant_residue,
            "unattested_refusals": report.unattested_refusals,
            "tenant_key_rotations": report.tenant_key_rotations,
            "wal_plaintexts": report.wal_plaintexts,
            "wal_device_leaks": report.wal_device_leaks,
        },
    })
}
