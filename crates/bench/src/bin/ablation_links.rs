//! Ablation: link quality vs. offloading overhead.
//!
//! TinMan's added latency is network-bound: the init sync rides the uplink
//! bandwidth and the SSL/TCP coordination rides the RTT. This sweep maps
//! both axes, showing where offloading overhead crosses typical
//! interactive-budget thresholds — the quantitative version of the paper's
//! Wi-Fi/3G comparison.

use tinman_apps::logins::{build_login_app, LoginAppSpec};
use tinman_bench::{banner, emit_json, harness_inputs, run_stock_login, secs};
use tinman_cor::CorStore;
use tinman_core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman_sim::{LinkProfile, SimDuration};

fn run_with_link(link: LinkProfile) -> (f64, f64, f64, f64) {
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let mut store = CorStore::new(99);
    store.register(tinman_bench::HARNESS_PASSWORD, spec.cor_description, &[spec.domain]).unwrap();
    let mut rt = TinmanRuntime::new(store, link.clone(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    tinman_apps::servers::install_auth_server(
        &mut rt.world,
        tls,
        tinman_apps::servers::AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: tinman_bench::HARNESS_PASSWORD.to_owned(),
            hash_login: false,
            think: SimDuration::from_millis(tinman_bench::server_think_ms(spec.name)),
            page_bytes: tinman_bench::page_bytes(spec.name),
        },
    );
    let inputs = harness_inputs();
    rt.run_app(&app, Mode::TinMan, &inputs).expect("cold");
    let warm = rt.run_app(&app, Mode::TinMan, &inputs).expect("warm");
    let (_rt2, stock) = run_stock_login(&spec, link);
    (
        stock.latency.as_secs_f64(),
        warm.latency.as_secs_f64(),
        warm.breakdown.get("dsm").as_secs_f64(),
        warm.breakdown.get("ssl_tcp").as_secs_f64(),
    )
}

fn main() {
    banner(
        "Ablation — offloading overhead across link profiles",
        "TinMan (EuroSys'15) §6.2 generalization",
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "link", "stock", "tinman", "dsm", "ssl/tcp", "overhead"
    );
    let mut rows = Vec::new();

    let links: Vec<(&str, LinkProfile)> = vec![
        (
            "ethernet-tether",
            LinkProfile {
                name: "ethernet-tether",
                rtt: SimDuration::from_millis(2),
                bytes_per_sec: 10_000_000,
                tx_nj_per_byte: 10,
                rx_nj_per_byte: 10,
                active_radio_mw: 50,
            },
        ),
        ("wifi (paper)", LinkProfile::wifi()),
        ("3g (paper)", LinkProfile::three_g()),
        (
            "congested-wifi",
            LinkProfile {
                name: "congested-wifi",
                rtt: SimDuration::from_millis(80),
                bytes_per_sec: 300_000,
                tx_nj_per_byte: 300,
                rx_nj_per_byte: 180,
                active_radio_mw: 400,
            },
        ),
        (
            "edge-2g",
            LinkProfile {
                name: "edge-2g",
                rtt: SimDuration::from_millis(400),
                bytes_per_sec: 30_000,
                tx_nj_per_byte: 2_500,
                rx_nj_per_byte: 1_200,
                active_radio_mw: 900,
            },
        ),
    ];
    for (label, link) in links {
        let (stock, tinman, dsm, ssl) = run_with_link(link);
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>9} {:>9.1}%",
            label,
            secs(SimDuration::from_secs_f64(stock)),
            secs(SimDuration::from_secs_f64(tinman)),
            secs(SimDuration::from_secs_f64(dsm)),
            secs(SimDuration::from_secs_f64(ssl)),
            100.0 * (tinman - stock) / stock,
        );
        rows.push(serde_json::json!({
            "link": label, "stock_s": stock, "tinman_s": tinman,
            "dsm_s": dsm, "ssl_tcp_s": ssl,
        }));
    }
    println!("\nshape: overhead grows with worse links; DSM tracks bandwidth, SSL/TCP tracks RTT.");
    emit_json("ablation_links", serde_json::json!({ "rows": rows }));
}
