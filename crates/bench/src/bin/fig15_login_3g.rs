//! Figure 15: login-time breakdown per app on 3G, after warm-up.
//!
//! Same methodology as Figure 14 over the 3G radio: the paper reports
//! stock averaging 5.4 s, TinMan 8.2 s, with ~1.2 s of DSM offloading and
//! ~1.6 s of other (SSL/TCP) overhead.

fn main() {
    tinman_bench::login_figure(
        tinman_sim::LinkProfile::three_g(),
        "fig15_login_3g",
        "Figure 15 (3G)",
    );
}
