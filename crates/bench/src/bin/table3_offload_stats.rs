//! Table 3: offloaded code, synchronization counts, and network
//! consumption per login.
//!
//! The paper logs every method invocation on the trusted node during the
//! login phase and reports, per app: offloaded method invocations (and
//! their share of all invocations), the number of DSM synchronizations,
//! and the bytes moved by the initial and subsequent (dirty)
//! synchronizations.
//!
//! Paper rows: paypal 10274 (4.7%) / 2 / 768.5 KB / 24.3 KB;
//! ebay 2835 (2.4%) / 4 / 759.8 / 16.6; github 1672 (2.0%) / 3 / 603.0 /
//! 4.9; askfm 1791 (1.7%) / 4 / 716.6 / 18.7.

use tinman_apps::logins::LoginAppSpec;
use tinman_bench::{banner, emit_json, run_warm_login};
use tinman_sim::LinkProfile;

fn main() {
    banner(
        "Table 3 — offload code, sync counts, network consumption per login",
        "TinMan (EuroSys'15) §6.3, Table 3",
    );
    println!(
        "{:<8} {:>10} {:>7} {:>7} {:>12} {:>12}",
        "app", "off.code", "off.%", "syncs", "init (KB)", "dirty (KB)"
    );

    let mut rows = Vec::new();
    for spec in LoginAppSpec::table3() {
        let (_rt, report) = run_warm_login(&spec, LinkProfile::wifi());
        let offloaded = report.node_methods;
        let pct = 100.0 * report.offloaded_fraction();
        let init_kb = report.dsm.init_bytes as f64 / 1024.0;
        let dirty_kb = report.dsm.dirty_bytes as f64 / 1024.0;
        println!(
            "{:<8} {:>10} {:>6.1}% {:>7} {:>12.1} {:>12.1}",
            spec.name, offloaded, pct, report.dsm.sync_count, init_kb, dirty_kb
        );
        rows.push(serde_json::json!({
            "app": spec.name,
            "offloaded_methods": offloaded,
            "total_methods": report.client_methods + report.node_methods,
            "offloaded_pct": pct,
            "syncs": report.dsm.sync_count,
            "init_kb": init_kb,
            "dirty_kb": dirty_kb,
        }));
    }
    println!("\npaper: paypal 10274 (4.7%) 2 syncs 768.5/24.3 KB; ebay 2835 (2.4%) 4 759.8/16.6;");
    println!("       github 1672 (2.0%) 3 603.0/4.9; askfm 1791 (1.7%) 4 716.6/18.7");
    emit_json("table3_offload_stats", serde_json::json!({ "rows": rows }));
}
