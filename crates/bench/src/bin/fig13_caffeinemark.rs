//! Figure 13: Caffeinemark scores under the three taint configurations,
//! plus the execution-tier comparison (interpreter vs block tier).
//!
//! The paper runs CaffeineMark on the phone with (a) stock Android, (b)
//! TaintDroid-style full tainting, (c) TinMan's asymmetric tainting, and
//! reports per-kernel scores. Its headline numbers: asymmetric averages
//! ~9.6% overhead, full ~20.1%, with the String kernel worst (string-op
//! optimizations disabled + high heap-to-stack ratio).
//!
//! The tier section is this reproduction's own claim: the block-compiled
//! tier retires bit-identical simulated counters (asserted here on every
//! kernel) while spending less host wall time per run. `--json-out
//! [PATH]` writes the schema'd `tinman.caffeinemark/v1` record; the
//! committed baseline lives at `BENCH_caffeinemark.json`.

use std::time::Instant;

use tinman_apps::caffeinemark::{run_kernel, run_kernel_prebuilt, CaffeinemarkKernel};
use tinman_bench::{banner, emit_json};
use tinman_taint::TaintEngine;
use tinman_vm::CompiledImage;

const SCALE: u32 = 8;
/// Timed repetitions per (kernel, tier); the median is reported.
const REPS: usize = 7;

/// Median host wall time of one prebuilt-kernel run, in nanoseconds.
fn median_wall_ns(
    kernel: CaffeinemarkKernel,
    image: &tinman_vm::AppImage,
    compiled: Option<&CompiledImage>,
) -> u64 {
    let mut samples: Vec<u64> = (0..REPS)
        .map(|_| {
            let mut engine = TaintEngine::none();
            let t0 = Instant::now();
            let _ = run_kernel_prebuilt(kernel, image, compiled, &mut engine);
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let json_out = {
        let mut args = std::env::args().skip(1);
        match args.next().as_deref() {
            Some("--json-out") => {
                Some(args.next().unwrap_or_else(|| "BENCH_caffeinemark.json".to_owned()))
            }
            _ => None,
        }
    };

    banner(
        "Figure 13 — Caffeinemark under none / full / asymmetric tainting",
        "TinMan (EuroSys'15) §6.1, Figure 13",
    );

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "kernel", "score(none)", "score(full)", "score(asym)", "ovh(full)", "ovh(asym)"
    );

    let mut rows = Vec::new();
    let mut sum_full = 0.0;
    let mut sum_asym = 0.0;
    for kernel in CaffeinemarkKernel::ALL {
        let base = run_kernel(kernel, &mut TaintEngine::none(), SCALE);
        let full = run_kernel(kernel, &mut TaintEngine::full(), SCALE);
        let asym = run_kernel(kernel, &mut TaintEngine::asymmetric(), SCALE);
        let ovh_full = full.cycles as f64 / base.cycles as f64 - 1.0;
        let ovh_asym = asym.cycles as f64 / base.cycles as f64 - 1.0;
        sum_full += ovh_full;
        sum_asym += ovh_asym;
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>12.0} {:>9.1}% {:>9.1}%",
            kernel.name(),
            base.score(),
            full.score(),
            asym.score(),
            100.0 * ovh_full,
            100.0 * ovh_asym
        );
        rows.push(serde_json::json!({
            "kernel": kernel.name(),
            "score_none": base.score(),
            "score_full": full.score(),
            "score_asym": asym.score(),
            "overhead_full": ovh_full,
            "overhead_asym": ovh_asym,
        }));
    }
    let n = CaffeinemarkKernel::ALL.len() as f64;
    let avg_full = 100.0 * sum_full / n;
    let avg_asym = 100.0 * sum_asym / n;
    println!("----------------------------------------------------------------");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>9.1}% {:>9.1}%",
        "average", "", "", "", avg_full, avg_asym
    );
    println!("\npaper: full-taint avg 20.1%, asymmetric avg 9.6%, String worst");

    // ---- execution tiers: interpreter vs block-compiled (host time) ----
    println!();
    println!("Execution tier — interpreter vs block tier (host wall time, taint=none)");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>11} {:>9}",
        "kernel", "interp(ms)", "blocks(ms)", "speedup", "fast-path", "deopts"
    );
    let mut tier_rows = Vec::new();
    let mut log_speedup_sum = 0.0;
    for kernel in CaffeinemarkKernel::ALL {
        let image = kernel.build(SCALE);
        let compiled = CompiledImage::compile(&image);

        // The tier contract, asserted before timing anything: identical
        // retired counters under every engine.
        let (ref_r, _) = run_kernel_prebuilt(kernel, &image, None, &mut TaintEngine::none());
        let (tier_r, telemetry) =
            run_kernel_prebuilt(kernel, &image, Some(&compiled), &mut TaintEngine::none());
        assert_eq!(ref_r.cycles, tier_r.cycles, "{} cycles diverged", kernel.name());
        assert_eq!(ref_r.instrs, tier_r.instrs, "{} instrs diverged", kernel.name());

        let interp_ns = median_wall_ns(kernel, &image, None);
        let blocks_ns = median_wall_ns(kernel, &image, Some(&compiled));
        let speedup = interp_ns as f64 / blocks_ns as f64;
        log_speedup_sum += speedup.ln();
        let fast_frac = telemetry.fast_insns as f64
            / (telemetry.fast_insns + telemetry.stepped_insns).max(1) as f64;
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>8.2}x {:>10.1}% {:>9}",
            kernel.name(),
            interp_ns as f64 / 1e6,
            blocks_ns as f64 / 1e6,
            speedup,
            100.0 * fast_frac,
            telemetry.deopts
        );
        tier_rows.push(serde_json::json!({
            "kernel": kernel.name(),
            "interp_wall_ns": interp_ns,
            "blocks_wall_ns": blocks_ns,
            "speedup": speedup,
            "fast_insn_fraction": fast_frac,
            "block_runs": telemetry.block_runs,
            "deopts": telemetry.deopts,
            "counters_identical": true,
        }));
    }
    let geomean = (log_speedup_sum / n).exp();
    println!("----------------------------------------------------------------");
    println!("{:<10} {:>12} {:>12} {:>8.2}x  (geomean)", "overall", "", "", geomean);

    let record = serde_json::json!({
        "schema": "tinman.caffeinemark/v1",
        "config": { "scale": SCALE, "reps": REPS },
        "taint_overhead": {
            "rows": rows,
            "avg_overhead_full_pct": avg_full,
            "avg_overhead_asym_pct": avg_asym,
            "paper_avg_full_pct": 20.1,
            "paper_avg_asym_pct": 9.6,
        },
        "tier": {
            "rows": tier_rows,
            "geomean_speedup": geomean,
        },
    });
    if let Some(path) = json_out.as_deref() {
        let blob = serde_json::to_string_pretty(&record).expect("serialize record");
        std::fs::write(path, blob + "\n").expect("write --json-out file");
        println!("\nwrote {path}");
    }
    emit_json("fig13_caffeinemark", record);
}
