//! Figure 13: Caffeinemark scores under the three taint configurations.
//!
//! The paper runs CaffeineMark on the phone with (a) stock Android, (b)
//! TaintDroid-style full tainting, (c) TinMan's asymmetric tainting, and
//! reports per-kernel scores. Its headline numbers: asymmetric averages
//! ~9.6% overhead, full ~20.1%, with the String kernel worst (string-op
//! optimizations disabled + high heap-to-stack ratio).

use tinman_apps::caffeinemark::{run_kernel, CaffeinemarkKernel};
use tinman_bench::{banner, emit_json};
use tinman_taint::TaintEngine;

fn main() {
    banner(
        "Figure 13 — Caffeinemark under none / full / asymmetric tainting",
        "TinMan (EuroSys'15) §6.1, Figure 13",
    );
    const SCALE: u32 = 8;

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "kernel", "score(none)", "score(full)", "score(asym)", "ovh(full)", "ovh(asym)"
    );

    let mut rows = Vec::new();
    let mut sum_full = 0.0;
    let mut sum_asym = 0.0;
    for kernel in CaffeinemarkKernel::ALL {
        let base = run_kernel(kernel, &mut TaintEngine::none(), SCALE);
        let full = run_kernel(kernel, &mut TaintEngine::full(), SCALE);
        let asym = run_kernel(kernel, &mut TaintEngine::asymmetric(), SCALE);
        let ovh_full = full.cycles as f64 / base.cycles as f64 - 1.0;
        let ovh_asym = asym.cycles as f64 / base.cycles as f64 - 1.0;
        sum_full += ovh_full;
        sum_asym += ovh_asym;
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>12.0} {:>9.1}% {:>9.1}%",
            kernel.name(),
            base.score(),
            full.score(),
            asym.score(),
            100.0 * ovh_full,
            100.0 * ovh_asym
        );
        rows.push(serde_json::json!({
            "kernel": kernel.name(),
            "score_none": base.score(),
            "score_full": full.score(),
            "score_asym": asym.score(),
            "overhead_full": ovh_full,
            "overhead_asym": ovh_asym,
        }));
    }
    let n = CaffeinemarkKernel::ALL.len() as f64;
    let avg_full = 100.0 * sum_full / n;
    let avg_asym = 100.0 * sum_asym / n;
    println!("----------------------------------------------------------------");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>9.1}% {:>9.1}%",
        "average", "", "", "", avg_full, avg_asym
    );
    println!("\npaper: full-taint avg 20.1%, asymmetric avg 9.6%, String worst");

    emit_json(
        "fig13_caffeinemark",
        serde_json::json!({
            "rows": rows,
            "avg_overhead_full_pct": avg_full,
            "avg_overhead_asym_pct": avg_asym,
            "paper_avg_full_pct": 20.1,
            "paper_avg_asym_pct": 9.6,
        }),
    );
}
