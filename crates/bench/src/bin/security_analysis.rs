//! Security analysis harness (§5 and §3.2 / Figure 7).
//!
//! Reproduces the paper's attacker scenarios as observable experiments:
//!
//! 1. **memory/disk scan** (§5.1): a full device residue scan after a
//!    TinMan login finds nothing, while the identical scan on stock
//!    Android finds the password in heap and on disk;
//! 2. **phishing / exfiltration** (§5.2, §3.4): the app binding and the
//!    domain whitelist stop both, with audit evidence;
//! 3. **implicit-IV leakage** (Figure 7): the plaintext-recovery
//!    computation succeeds against TLS 1.0 chaining, and the TinMan
//!    client's version floor refuses the handshake that would permit it;
//! 4. **revocation** (§3.4): a stolen device loses all cor access.

use std::collections::HashMap;

use tinman_apps::logins::{build_login_app, LoginAppSpec};
use tinman_apps::malicious::{build_exfiltration_app, build_phishing_app};
use tinman_apps::servers::{install_auth_server, AuthServerSpec};
use tinman_bench::{banner, emit_json, harness_inputs, login_world, HARNESS_PASSWORD};
use tinman_cor::{PolicyDecision, PolicyRule};
use tinman_core::error::RuntimeError;
use tinman_core::runtime::Mode;
use tinman_sim::{LinkProfile, SimDuration};
use tinman_tls::attack::demo_implicit_iv_leak;
use tinman_tls::cipher::Xtea;
use tinman_tls::{Handshake, TlsConfig, TlsError};

fn check(name: &str, ok: bool) -> bool {
    println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn main() {
    banner("Security analysis — §5 attacker scenarios", "TinMan (EuroSys'15) §5, §3.2 Fig 7");
    let mut all = true;
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let inputs = harness_inputs();

    // 1. Residue scan: TinMan vs stock.
    println!("\n[1] §5.1 — cor residue scan after login");
    let mut rt = login_world(&spec, LinkProfile::wifi());
    rt.run_app(&app, Mode::TinMan, &inputs).expect("tinman login");
    all &= check("TinMan device scans clean", rt.scan_residue(HARNESS_PASSWORD).is_clean());

    let mut rt = login_world(&spec, LinkProfile::wifi());
    let secrets = HashMap::from([(spec.cor_description.to_owned(), HARNESS_PASSWORD.to_owned())]);
    rt.run_app(&app, Mode::Stock(secrets), &inputs).expect("stock login");
    let stock_hits = rt.scan_residue(HARNESS_PASSWORD).len();
    all &= check(&format!("stock Android leaves residue ({stock_hits} sites)"), stock_hits > 0);

    // 2. Phishing + exfiltration.
    println!("\n[2] §5.2 / §3.4 — phishing app and exfiltration");
    let mut rt = login_world(&spec, LinkProfile::wifi());
    let cor = rt.node.store.ids()[0];
    rt.node
        .policy
        .set_rule(cor, PolicyRule { bound_app_hash: Some(app.hash()), ..Default::default() });
    let phish = build_phishing_app(spec.domain, spec.cor_description);
    let denied = matches!(
        rt.run_app(&phish, Mode::TinMan, &inputs),
        Err(RuntimeError::PolicyDenied(PolicyDecision::DeniedAppMismatch))
    );
    all &= check("phishing app denied by app-hash binding", denied);
    all &= check("denial is on the audit log", !rt.node.audit.abnormal().is_empty());

    let mut rt = login_world(&spec, LinkProfile::wifi());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: "evil.com",
            user: "x",
            password: "x".into(),
            hash_login: false,
            think: SimDuration::ZERO,
            page_bytes: 0,
        },
    );
    let exfil = build_exfiltration_app("evil.com", spec.cor_description);
    let denied = matches!(
        rt.run_app(&exfil, Mode::TinMan, &inputs),
        Err(RuntimeError::PolicyDenied(PolicyDecision::DeniedDomain { .. }))
    );
    all &= check("exfiltration to unlisted domain denied", denied);
    all &=
        check("device still clean after the attempt", rt.scan_residue(HARNESS_PASSWORD).is_clean());

    // 3. Figure 7: implicit-IV leakage and the version floor.
    println!("\n[3] §3.2 Figure 7 — implicit-IV leakage / TLS version floor");
    let key = Xtea::new(b"session-key-16b!");
    let cor = b"passwd=hunter2-the-cor!!";
    let (recovered, _) = demo_implicit_iv_leak(&key, [0xAA; 8], cor);
    all &= check("client recovers the node's plaintext under TLS 1.0 chaining", recovered == cor);
    let client_cfg = TlsConfig::tinman_client([1u8; 32]);
    let hello = Handshake::client_hello(&client_cfg, [2u8; 32]);
    let legacy = TlsConfig::legacy_tls10([1u8; 32]);
    let refused = matches!(
        Handshake::accept(&legacy, &hello, [3u8; 32], 1)
            .and_then(|(sh, _)| { Handshake::finish(&client_cfg, &hello, &sh, 2) }),
        Err(TlsError::VersionBelowFloor { .. })
    );
    all &= check("TinMan client refuses any handshake below TLS 1.1", refused);

    // 4. Revocation.
    println!("\n[4] §3.4 — stolen-device revocation");
    let mut rt = login_world(&spec, LinkProfile::wifi());
    rt.run_app(&app, Mode::TinMan, &inputs).expect("pre-revocation login");
    rt.node.policy.revoke_device("phone-1");
    let revoked = matches!(
        rt.run_app(&app, Mode::TinMan, &inputs),
        Err(RuntimeError::PolicyDenied(PolicyDecision::DeniedRevoked))
    );
    all &= check("revoked device loses all cor access", revoked);

    println!("\noverall: {}", if all { "ALL SCENARIOS PASS" } else { "FAILURES PRESENT" });
    emit_json("security_analysis", serde_json::json!({ "all_pass": all }));
    if !all {
        std::process::exit(1);
    }
}
