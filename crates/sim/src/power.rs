//! Energy accounting and battery model.
//!
//! The paper's Figures 16 and 17 plot remaining battery percentage over time
//! for a Galaxy Nexus (1750 mAh). We model the battery as a reservoir of
//! microjoules drained by four sinks: CPU work, radio TX/RX, display-on
//! time, and idle baseline. [`EnergyMeter`] accumulates per-sink totals so
//! reports can attribute consumption.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// An amount of energy, in microjoules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct MicroJoules(u64);

impl MicroJoules {
    /// Zero energy.
    pub const ZERO: MicroJoules = MicroJoules(0);

    /// Constructs from microjoules.
    pub const fn from_microjoules(uj: u64) -> Self {
        MicroJoules(uj)
    }

    /// Constructs from nanojoules (truncating below 1 uJ is avoided by
    /// rounding to nearest).
    pub const fn from_nanojoules(nj: u64) -> Self {
        MicroJoules((nj + 500) / 1_000)
    }

    /// Constructs from whole joules.
    pub const fn from_joules(j: u64) -> Self {
        MicroJoules(j * 1_000_000)
    }

    /// Energy drawn by a constant `power_mw` milliwatt load over `d`.
    pub fn from_power(power_mw: u64, d: SimDuration) -> Self {
        // mW * ns = picojoules; divide by 1e6 to get microjoules.
        let pj = power_mw as u128 * d.as_nanos() as u128;
        MicroJoules((pj / 1_000_000) as u64)
    }

    /// Value in microjoules.
    pub const fn as_microjoules(self) -> u64 {
        self.0
    }

    /// Value in joules.
    pub fn as_joules(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: MicroJoules) -> MicroJoules {
        MicroJoules(self.0.saturating_sub(rhs.0))
    }
}

impl Add for MicroJoules {
    type Output = MicroJoules;
    fn add(self, rhs: MicroJoules) -> MicroJoules {
        MicroJoules(self.0 + rhs.0)
    }
}

impl AddAssign for MicroJoules {
    fn add_assign(&mut self, rhs: MicroJoules) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for MicroJoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}J", self.as_joules())
    }
}

/// Per-sink energy attribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// Energy spent executing VM instructions on the device.
    pub cpu: MicroJoules,
    /// Radio energy spent transmitting.
    pub radio_tx: MicroJoules,
    /// Radio energy spent receiving.
    pub radio_rx: MicroJoules,
    /// Radio energy spent holding the high-power state.
    pub radio_active: MicroJoules,
    /// Display backlight energy.
    pub display: MicroJoules,
    /// Awake-idle baseline energy.
    pub idle: MicroJoules,
}

impl EnergyMeter {
    /// A meter with all sinks at zero.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Total energy across all sinks.
    pub fn total(&self) -> MicroJoules {
        self.cpu + self.radio_tx + self.radio_rx + self.radio_active + self.display + self.idle
    }

    /// Adds another meter's totals into this one.
    pub fn absorb(&mut self, other: &EnergyMeter) {
        self.cpu += other.cpu;
        self.radio_tx += other.radio_tx;
        self.radio_rx += other.radio_rx;
        self.radio_active += other.radio_active;
        self.display += other.display;
        self.idle += other.idle;
    }
}

/// A battery modelled as an energy reservoir.
///
/// The Galaxy Nexus ships a 1750 mAh battery at a nominal 3.7 V, i.e. about
/// 23.3 kJ of usable energy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: MicroJoules,
    drained: MicroJoules,
}

impl Battery {
    /// A full battery with the given capacity.
    pub fn new(capacity: MicroJoules) -> Self {
        Battery { capacity, drained: MicroJoules::ZERO }
    }

    /// A full battery matching the paper's Galaxy Nexus (1750 mAh @ 3.7 V).
    pub fn galaxy_nexus() -> Self {
        // 1750 mAh * 3.7 V * 3600 s/h = 23310 J.
        Battery::new(MicroJoules::from_joules(23_310))
    }

    /// Total capacity.
    pub fn capacity(&self) -> MicroJoules {
        self.capacity
    }

    /// Energy drained so far (clamped to capacity).
    pub fn drained(&self) -> MicroJoules {
        if self.drained > self.capacity {
            self.capacity
        } else {
            self.drained
        }
    }

    /// Removes `e` from the battery. Draining past empty clamps at zero
    /// remaining (the simulated device would have shut down).
    pub fn drain(&mut self, e: MicroJoules) {
        self.drained += e;
    }

    /// Remaining energy.
    pub fn remaining(&self) -> MicroJoules {
        self.capacity.saturating_sub(self.drained)
    }

    /// Remaining charge as a percentage of capacity, in `0.0..=100.0`.
    pub fn percent(&self) -> f64 {
        if self.capacity.as_microjoules() == 0 {
            return 0.0;
        }
        100.0 * self.remaining().as_microjoules() as f64 / self.capacity.as_microjoules() as f64
    }

    /// Remaining charge as the integer percentage a phone status bar would
    /// show (rounded to nearest).
    pub fn percent_displayed(&self) -> u32 {
        self.percent().round() as u32
    }

    /// True once the battery is fully drained.
    pub fn is_empty(&self) -> bool {
        self.remaining() == MicroJoules::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_power_basic() {
        // 1000 mW for 1 s = 1 J.
        let e = MicroJoules::from_power(1000, SimDuration::from_secs(1));
        assert_eq!(e, MicroJoules::from_joules(1));
    }

    #[test]
    fn from_nanojoules_rounds() {
        assert_eq!(MicroJoules::from_nanojoules(1_499).as_microjoules(), 1);
        assert_eq!(MicroJoules::from_nanojoules(1_500).as_microjoules(), 2);
    }

    #[test]
    fn battery_percent_tracks_drain() {
        let mut b = Battery::new(MicroJoules::from_joules(100));
        assert_eq!(b.percent_displayed(), 100);
        b.drain(MicroJoules::from_joules(25));
        assert_eq!(b.percent_displayed(), 75);
        b.drain(MicroJoules::from_joules(80));
        assert_eq!(b.percent_displayed(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn galaxy_nexus_capacity_matches_paper_hardware() {
        let b = Battery::galaxy_nexus();
        assert_eq!(b.capacity().as_joules(), 23_310.0);
    }

    #[test]
    fn meter_totals_and_absorb() {
        let mut m = EnergyMeter::new();
        m.cpu += MicroJoules::from_joules(1);
        m.radio_tx += MicroJoules::from_joules(2);
        let mut n = EnergyMeter::new();
        n.display += MicroJoules::from_joules(3);
        m.absorb(&n);
        assert_eq!(m.total(), MicroJoules::from_joules(6));
    }

    #[test]
    fn zero_capacity_battery_reports_zero_percent() {
        let b = Battery::new(MicroJoules::ZERO);
        assert_eq!(b.percent(), 0.0);
    }
}
