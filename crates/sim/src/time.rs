//! Virtual time.
//!
//! Every latency the benchmarks report is simulated: the interpreter charges
//! the clock for executed instructions, the network charges it for
//! propagation and serialization delay, and servers charge it for think
//! time. Because nothing reads the host's wall clock, runs are bit-for-bit
//! reproducible.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::rc::Rc;

use serde::{Deserialize, Serialize};

/// A span of simulated time with nanosecond resolution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from a floating-point second count.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Total nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Total whole milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This duration expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

/// Saturating subtraction: `a - b` is [`SimDuration::ZERO`] when `b > a`.
///
/// Durations are unsigned spans of simulated time; a negative span has no
/// meaning here, and the subtractions that can go "negative" in practice
/// (attributing overlapping latency components, backoff bookkeeping on
/// failure paths) all want the floor, not a panic in debug builds or a
/// silent wrap in release builds.
impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// Saturating, like [`Sub`].
impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

/// Saturating multiplication: overflow clamps to the maximum
/// representable duration (~584 simulated years) instead of wrapping
/// silently in release builds — exponential backoff with a large shift
/// must stay monotone, never wrap small.
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant on the simulated timeline (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The far end of the simulated timeline (~584 years in). Used as the
    /// open upper bound of "until further notice" fault windows.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Clones share the same underlying instant, so every component of a
/// simulated world (interpreter, network, servers, battery sampler) observes
/// a single timeline. The simulation is single-threaded by construction, so
/// the clock uses [`Cell`] rather than atomics.
#[derive(Clone, Default)]
pub struct SimClock {
    now: Rc<Cell<u64>>,
}

impl SimClock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.now.get())
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let t = self.now.get() + d.as_nanos();
        self.now.set(t);
        SimTime(t)
    }

    /// Moves the clock forward to `t` if `t` is in the future; otherwise a
    /// no-op. Returns the (possibly unchanged) current instant.
    ///
    /// Used when merging timelines, e.g. when a reply generated at a remote
    /// host arrives back at the caller.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        if t.0 > self.now.get() {
            self.now.set(t.0);
        }
        SimTime(self.now.get())
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimClock({:?})", self.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
    }

    #[test]
    fn duration_float_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn duration_from_secs_f64_saturates_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_sub_saturates_instead_of_panicking() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(b - a, SimDuration::ZERO);
        let mut c = b;
        c -= a;
        assert_eq!(c, SimDuration::ZERO);
    }

    #[test]
    fn duration_mul_saturates_instead_of_wrapping() {
        let big = SimDuration::from_nanos(u64::MAX);
        assert_eq!(big * 2, SimDuration::from_nanos(u64::MAX));
        assert_eq!((SimDuration::from_secs(1) * u64::MAX).as_nanos(), u64::MAX);
        // Non-overflowing products are untouched.
        assert_eq!(SimDuration::from_millis(3) * 4, SimDuration::from_millis(12));
    }

    #[test]
    fn clock_advances_and_is_shared() {
        let c1 = SimClock::new();
        let c2 = c1.clone();
        assert_eq!(c1.now(), SimTime::ZERO);
        c1.advance(SimDuration::from_millis(5));
        assert_eq!(c2.now().as_nanos(), 5_000_000);
        c2.advance(SimDuration::from_millis(1));
        assert_eq!(c1.now().as_nanos(), 6_000_000);
    }

    #[test]
    fn clock_advance_to_is_monotone() {
        let c = SimClock::new();
        c.advance(SimDuration::from_secs(1));
        let earlier = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(c.advance_to(earlier).as_nanos(), 1_000_000_000);
        let later = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(c.advance_to(later), later);
    }

    #[test]
    fn time_since_saturates() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(1);
        assert_eq!(t1.since(t0), SimDuration::from_secs(1));
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(2)), "2ns");
    }
}
