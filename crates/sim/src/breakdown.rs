//! Labelled time accumulation.
//!
//! The paper's Figures 14 and 15 break each app's login latency into stacked
//! components (local execution, DSM offloading, SSL/TCP offloading, network
//! and server time). [`Breakdown`] is the accumulator those reports are
//! generated from: callers charge named categories and the harness prints
//! the stack.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A map from category name to accumulated simulated time.
///
/// Categories are ordinary strings; the ordering of a printed breakdown is
/// the lexicographic order of its labels unless the caller supplies an
/// explicit order via [`Breakdown::ordered`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    entries: BTreeMap<String, SimDuration>,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Adds `d` to `category`, creating it if absent.
    pub fn charge(&mut self, category: &str, d: SimDuration) {
        *self.entries.entry(category.to_owned()).or_default() += d;
    }

    /// Time accumulated for `category` (zero if never charged).
    pub fn get(&self, category: &str) -> SimDuration {
        self.entries.get(category).copied().unwrap_or_default()
    }

    /// Sum across all categories.
    pub fn total(&self) -> SimDuration {
        self.entries.values().fold(SimDuration::ZERO, |a, &d| a + d)
    }

    /// Iterates categories in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SimDuration)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Returns `(label, duration)` pairs in the caller-given order, with any
    /// remaining categories appended lexicographically. Labels absent from
    /// the breakdown are reported as zero.
    pub fn ordered(&self, order: &[&str]) -> Vec<(String, SimDuration)> {
        let mut out: Vec<(String, SimDuration)> =
            order.iter().map(|&l| (l.to_owned(), self.get(l))).collect();
        for (k, &v) in &self.entries {
            if !order.contains(&k.as_str()) {
                out.push((k.clone(), v));
            }
        }
        out
    }

    /// Merges another breakdown into this one.
    pub fn absorb(&mut self, other: &Breakdown) {
        for (k, &v) in &other.entries {
            *self.entries.entry(k.clone()).or_default() += v;
        }
    }

    /// Number of distinct categories charged.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "  {k:<24} {v}")?;
        }
        writeln!(f, "  {:<24} {}", "total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut b = Breakdown::new();
        b.charge("dsm", SimDuration::from_millis(100));
        b.charge("dsm", SimDuration::from_millis(50));
        b.charge("ssl", SimDuration::from_millis(10));
        assert_eq!(b.get("dsm"), SimDuration::from_millis(150));
        assert_eq!(b.get("missing"), SimDuration::ZERO);
        assert_eq!(b.total(), SimDuration::from_millis(160));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn ordered_respects_caller_order_and_appends_rest() {
        let mut b = Breakdown::new();
        b.charge("a", SimDuration::from_millis(1));
        b.charge("b", SimDuration::from_millis(2));
        b.charge("c", SimDuration::from_millis(3));
        let rows = b.ordered(&["c", "a", "zeta"]);
        let labels: Vec<&str> = rows.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["c", "a", "zeta", "b"]);
        assert_eq!(rows[2].1, SimDuration::ZERO);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Breakdown::new();
        a.charge("x", SimDuration::from_millis(1));
        let mut b = Breakdown::new();
        b.charge("x", SimDuration::from_millis(2));
        b.charge("y", SimDuration::from_millis(3));
        a.absorb(&b);
        assert_eq!(a.get("x"), SimDuration::from_millis(3));
        assert_eq!(a.get("y"), SimDuration::from_millis(3));
    }
}
