//! One deterministic retry/backoff policy for every subsystem.
//!
//! Three ad-hoc backoff implementations grew up independently — the
//! fleet failover exponential (shift-clamped, capped), the DSM re-sync
//! doubling loop, and the vault anti-entropy linear catch-up. They are
//! all the same thing: a pure function from an attempt (or unit) count
//! to a simulated delay, optionally jittered by a seeded PRNG and
//! optionally bounded by a deadline-aware budget. This module is that
//! function, written once. Callers that predate it (fleet, DSM, vault)
//! construct zero-jitter policies so their reports stay byte-identical;
//! the live-migration path layers seeded jitter and a budget on top.

use crate::rng::SplitMix64;
use crate::time::SimDuration;

/// The delay curve a [`RetryPolicy`] follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackoffShape {
    /// `delay(i) = base * 2^min(i, clamp)`, optionally capped.
    ///
    /// `clamp` keeps the shift in range (it must be < 64); the optional
    /// `cap` bounds the delay itself. The fleet failover curve is
    /// `clamp = 16, cap = 30s`; the DSM re-sync curve is uncapped
    /// doubling from its configured base.
    Exponential {
        /// First-attempt delay (`i = 0`).
        base: SimDuration,
        /// Largest exponent applied; attempts beyond it plateau.
        clamp: u32,
        /// Hard ceiling on any single delay, if present.
        cap: Option<SimDuration>,
    },
    /// `delay(n) = per_unit * n` — the vault anti-entropy curve, where
    /// `n` counts missing LSNs rather than retry attempts.
    Linear {
        /// Cost of one unit (e.g. one shipped LSN).
        per_unit: SimDuration,
    },
}

/// A deterministic retry policy: shape + optional seeded jitter.
///
/// Jitter is *deterministic*: attempt `i` under seed `s` always yields
/// the same delay, so jittered policies keep the byte-identity contract.
/// Policies without a seed produce the bare shape — exactly what the
/// pre-existing call sites computed by hand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    shape: BackoffShape,
    jitter_seed: Option<u64>,
}

impl RetryPolicy {
    /// An exponential policy with no jitter.
    pub const fn exponential(base: SimDuration, clamp: u32, cap: Option<SimDuration>) -> Self {
        RetryPolicy { shape: BackoffShape::Exponential { base, clamp, cap }, jitter_seed: None }
    }

    /// A linear per-unit policy with no jitter.
    pub const fn linear(per_unit: SimDuration) -> Self {
        RetryPolicy { shape: BackoffShape::Linear { per_unit }, jitter_seed: None }
    }

    /// The same policy with seeded deterministic jitter layered on.
    pub const fn with_jitter(self, seed: u64) -> Self {
        RetryPolicy { shape: self.shape, jitter_seed: Some(seed) }
    }

    /// The shape this policy follows.
    pub const fn shape(&self) -> BackoffShape {
        self.shape
    }

    /// The bare (unjittered) delay for attempt/unit `i`.
    pub fn base_delay(&self, i: u64) -> SimDuration {
        match self.shape {
            BackoffShape::Exponential { base, clamp, cap } => {
                let exp = i.min(clamp.min(63) as u64) as u32;
                let d = base * (1u64 << exp);
                match cap {
                    Some(c) if d > c => c,
                    _ => d,
                }
            }
            BackoffShape::Linear { per_unit } => per_unit * i,
        }
    }

    /// The delay for attempt/unit `i`, jittered when a seed is set.
    ///
    /// Jitter adds up to 25% of the base delay, drawn from a
    /// [`SplitMix64`] stream keyed on `(seed, i)` — the same `(policy,
    /// attempt)` pair always yields the same delay.
    pub fn delay(&self, i: u64) -> SimDuration {
        let d = self.base_delay(i);
        match self.jitter_seed {
            None => d,
            Some(seed) => {
                let span = d.as_nanos() / 4;
                if span == 0 {
                    return d;
                }
                let mut rng =
                    SplitMix64::new(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(13));
                d + SimDuration::from_nanos(rng.next_u64() % (span + 1))
            }
        }
    }
}

/// A deadline-aware retry budget: total simulated time the caller may
/// burn on delays before it must fail closed.
///
/// [`RetryBudget::admit`] is the only mutator: it either charges a delay
/// and returns `true`, or leaves the budget untouched and returns
/// `false` — at which point the caller stops retrying (fail-closed, not
/// fail-open: an exhausted budget never grants a partial delay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryBudget {
    deadline: SimDuration,
    spent: SimDuration,
}

impl RetryBudget {
    /// A fresh budget of `deadline` simulated time.
    pub const fn new(deadline: SimDuration) -> Self {
        RetryBudget { deadline, spent: SimDuration::ZERO }
    }

    /// Time already charged.
    pub const fn spent(&self) -> SimDuration {
        self.spent
    }

    /// Time still available.
    pub fn remaining(&self) -> SimDuration {
        self.deadline.saturating_sub(self.spent)
    }

    /// Charges `delay` if it fits; returns whether it was admitted.
    pub fn admit(&mut self, delay: SimDuration) -> bool {
        match self.spent.checked_add(delay) {
            Some(total) if total <= self.deadline => {
                self.spent = total;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_matches_the_fleet_curve() {
        // The historical fleet curve: (base << min(i,16)).min(30s).
        let base = SimDuration::from_millis(250);
        let cap = SimDuration::from_secs(30);
        let p = RetryPolicy::exponential(base, 16, Some(cap));
        for i in 0..40u64 {
            let legacy = (base * (1u64 << i.min(16) as u32)).min(cap);
            assert_eq!(p.delay(i), legacy, "attempt {i}");
        }
    }

    #[test]
    fn exponential_matches_the_dsm_doubling_loop() {
        // The historical DSM loop: backoff starts at base, doubles each
        // retry — attempt i sees base * 2^i.
        let base = SimDuration::from_millis(500);
        let p = RetryPolicy::exponential(base, 63, None);
        let mut legacy = base;
        for i in 0..8u64 {
            assert_eq!(p.delay(i), legacy, "attempt {i}");
            legacy = legacy * 2;
        }
    }

    #[test]
    fn linear_matches_the_vault_curve() {
        let p = RetryPolicy::linear(SimDuration::from_millis(25));
        assert_eq!(p.delay(0), SimDuration::ZERO);
        assert_eq!(p.delay(4), SimDuration::from_millis(100));
    }

    #[test]
    fn clamp_never_shifts_past_63() {
        let p = RetryPolicy::exponential(SimDuration::from_nanos(1), 200, None);
        // Would be UB as a shift; must plateau (saturating) instead.
        assert_eq!(p.delay(1000), SimDuration::from_nanos(1u64 << 63));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base = RetryPolicy::exponential(SimDuration::from_millis(100), 16, None);
        let j = base.with_jitter(0xfeed);
        for i in 0..6u64 {
            let bare = base.delay(i);
            let a = j.delay(i);
            let b = j.delay(i);
            assert_eq!(a, b, "same (seed, attempt) must repeat exactly");
            assert!(a >= bare && a <= bare + SimDuration::from_nanos(bare.as_nanos() / 4));
        }
        let other = base.with_jitter(0xbeef);
        assert_ne!(
            (0..6).map(|i| j.delay(i)).collect::<Vec<_>>(),
            (0..6).map(|i| other.delay(i)).collect::<Vec<_>>(),
            "different seeds should draw different jitter"
        );
    }

    #[test]
    fn zero_jitter_policies_are_the_bare_shape() {
        let p = RetryPolicy::exponential(SimDuration::from_millis(250), 16, None);
        assert_eq!(p.delay(3), p.base_delay(3));
    }

    #[test]
    fn budget_admits_until_the_deadline_then_fails_closed() {
        let mut b = RetryBudget::new(SimDuration::from_millis(100));
        assert!(b.admit(SimDuration::from_millis(60)));
        assert!(b.admit(SimDuration::from_millis(40)));
        assert_eq!(b.remaining(), SimDuration::ZERO);
        assert!(!b.admit(SimDuration::from_nanos(1)));
        assert_eq!(b.spent(), SimDuration::from_millis(100), "refusal charges nothing");
    }

    #[test]
    fn budget_refuses_overflowing_charges() {
        let mut b = RetryBudget::new(SimDuration::from_nanos(u64::MAX));
        assert!(b.admit(SimDuration::from_nanos(u64::MAX - 1)));
        assert!(!b.admit(SimDuration::from_nanos(2)), "overflow must refuse, not wrap");
    }
}
