#![warn(missing_docs)]
//! Simulation substrate for the TinMan reproduction.
//!
//! The original TinMan prototype ran on a Samsung Galaxy Nexus phone talking
//! to a PC trusted node over Wi-Fi or 3G. This crate replaces that physical
//! testbed with a deterministic discrete simulation:
//!
//! * [`time`] — a virtual clock ([`SimClock`]) plus [`SimTime`] /
//!   [`SimDuration`] value types. All experiment latencies are measured in
//!   simulated time, so a "30-minute" battery stress test completes in
//!   milliseconds of wall time and is perfectly reproducible.
//! * [`profile`] — calibrated device and network-link profiles
//!   ([`DeviceProfile`], [`LinkProfile`]) that convert abstract work
//!   (instructions executed, bytes transferred) into simulated time.
//! * [`power`] — an energy model and a [`Battery`] that drains according to
//!   CPU activity, radio traffic, and display-on time.
//! * [`breakdown`] — a labelled time accumulator used to reproduce the
//!   stacked-bar latency breakdowns of the paper's Figures 14 and 15.
//! * [`rng`] — a tiny deterministic PRNG ([`SplitMix64`]) for reproducible
//!   placeholder generation and workload jitter without pulling a full RNG
//!   stack into every crate.
//! * [`retry`] — the one shared deterministic retry/backoff policy
//!   ([`RetryPolicy`]) every subsystem charges delays through (fleet
//!   failover, DSM re-sync, vault catch-up, live session migration).

pub mod breakdown;
pub mod power;
pub mod profile;
pub mod retry;
pub mod rng;
pub mod time;

pub use breakdown::Breakdown;
pub use power::{Battery, EnergyMeter, MicroJoules};
pub use profile::{DeviceProfile, LinkProfile};
pub use retry::{BackoffShape, RetryBudget, RetryPolicy};
pub use rng::SplitMix64;
pub use time::{SimClock, SimDuration, SimTime};
