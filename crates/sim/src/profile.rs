//! Device and network-link profiles.
//!
//! Profiles convert abstract simulation work into time and energy:
//! a [`DeviceProfile`] maps *VM instructions executed* to CPU time and
//! energy, and a [`LinkProfile`] maps *bytes transferred* to network latency
//! and radio energy.
//!
//! The built-in presets are calibrated against the paper's testbed
//! (Samsung Galaxy Nexus client, Intel i5 trusted node, Wi-Fi and 3G links)
//! so the benchmark harness reproduces the *shape* of the paper's Figures
//! 14-17 without real hardware.

use serde::{Deserialize, Serialize};

use crate::power::MicroJoules;
use crate::time::SimDuration;

/// A compute-device profile: how fast it retires VM instructions and how
/// much energy that costs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name (appears in reports).
    pub name: &'static str,
    /// Interpreted VM instructions retired per second.
    ///
    /// This folds CPU frequency, interpreter dispatch cost, and memory
    /// behaviour into a single effective rate, which is all the experiments
    /// need.
    pub instrs_per_sec: u64,
    /// Energy per retired instruction, in nanojoules. Only meaningful for
    /// battery-powered devices; the trusted node uses 0.
    pub nj_per_instr: u64,
    /// Power drawn while the device is idle but awake (screen off), in
    /// milliwatts.
    pub idle_power_mw: u64,
    /// Additional power drawn while the display is on, in milliwatts.
    pub display_power_mw: u64,
}

impl DeviceProfile {
    /// The paper's client device: Samsung Galaxy Nexus, 1.2 GHz TI
    /// OMAP4460, 1 GB RAM, 1750 mAh battery.
    ///
    /// The effective interpreter rate (~120 M instructions/s) reflects a
    /// Dalvik-class interpreter on that core, not the raw clock.
    pub fn galaxy_nexus() -> Self {
        DeviceProfile {
            name: "galaxy-nexus",
            instrs_per_sec: 120_000_000,
            nj_per_instr: 6,
            idle_power_mw: 25,
            display_power_mw: 600,
        }
    }

    /// The paper's trusted node: PC with a 2.8 GHz Intel i5-2300.
    /// Roughly 6x the phone's effective interpreter throughput.
    pub fn trusted_pc() -> Self {
        DeviceProfile {
            name: "trusted-pc",
            instrs_per_sec: 720_000_000,
            nj_per_instr: 0,
            idle_power_mw: 0,
            display_power_mw: 0,
        }
    }

    /// Simulated time to execute `instrs` VM instructions on this device.
    pub fn exec_time(&self, instrs: u64) -> SimDuration {
        // ns = instrs * 1e9 / rate, computed in u128 to avoid overflow for
        // long workloads.
        let ns = (instrs as u128 * 1_000_000_000u128) / self.instrs_per_sec as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// Energy to execute `instrs` VM instructions on this device.
    pub fn exec_energy(&self, instrs: u64) -> MicroJoules {
        MicroJoules::from_nanojoules(instrs.saturating_mul(self.nj_per_instr))
    }
}

/// A network-link profile between a device and the wider network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Human-readable name (appears in reports).
    pub name: &'static str,
    /// Round-trip time to an arbitrary internet host.
    pub rtt: SimDuration,
    /// Sustained goodput in bytes per second.
    pub bytes_per_sec: u64,
    /// Radio energy to transmit one byte, in nanojoules.
    pub tx_nj_per_byte: u64,
    /// Radio energy to receive one byte, in nanojoules.
    pub rx_nj_per_byte: u64,
    /// Extra power drawn while the radio is in its high-power state, in
    /// milliwatts (3G radios hold a power-hungry state after traffic).
    pub active_radio_mw: u64,
}

impl LinkProfile {
    /// Campus Wi-Fi as used in the paper's evaluation.
    pub fn wifi() -> Self {
        LinkProfile {
            name: "wifi",
            rtt: SimDuration::from_millis(20),
            bytes_per_sec: 1_050_000, // ~8.5 Mbit/s effective goodput
            tx_nj_per_byte: 230,
            rx_nj_per_byte: 140,
            active_radio_mw: 400,
        }
    }

    /// A 3G cellular link as used in the paper's evaluation.
    pub fn three_g() -> Self {
        LinkProfile {
            name: "3g",
            rtt: SimDuration::from_millis(150),
            bytes_per_sec: 640_000, // HSPA-class effective goodput
            tx_nj_per_byte: 1_200,
            rx_nj_per_byte: 600,
            active_radio_mw: 800,
        }
    }

    /// Wired LAN between the trusted node and the internet (and between
    /// servers). Fast enough that it never dominates.
    pub fn ethernet() -> Self {
        LinkProfile {
            name: "ethernet",
            rtt: SimDuration::from_micros(400),
            bytes_per_sec: 100_000_000,
            tx_nj_per_byte: 0,
            rx_nj_per_byte: 0,
            active_radio_mw: 0,
        }
    }

    /// One-way propagation latency of this link (half the RTT).
    pub fn one_way(&self) -> SimDuration {
        self.rtt / 2
    }

    /// Serialization (transmission) delay for a payload of `bytes`.
    pub fn serialize_time(&self, bytes: u64) -> SimDuration {
        let ns = (bytes as u128 * 1_000_000_000u128) / self.bytes_per_sec as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// Total one-way transfer time for `bytes`: propagation plus
    /// serialization.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.one_way() + self.serialize_time(bytes)
    }

    /// Radio energy to transmit `bytes`.
    pub fn tx_energy(&self, bytes: u64) -> MicroJoules {
        MicroJoules::from_nanojoules(bytes.saturating_mul(self.tx_nj_per_byte))
    }

    /// Radio energy to receive `bytes`.
    pub fn rx_energy(&self, bytes: u64) -> MicroJoules {
        MicroJoules::from_nanojoules(bytes.saturating_mul(self.rx_nj_per_byte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_time_scales_linearly() {
        let d = DeviceProfile::galaxy_nexus();
        let t1 = d.exec_time(d.instrs_per_sec);
        assert_eq!(t1, SimDuration::from_secs(1));
        let t2 = d.exec_time(d.instrs_per_sec / 2);
        assert_eq!(t2, SimDuration::from_millis(500));
    }

    #[test]
    fn trusted_pc_is_faster_than_phone() {
        let phone = DeviceProfile::galaxy_nexus();
        let pc = DeviceProfile::trusted_pc();
        assert!(pc.exec_time(1_000_000) < phone.exec_time(1_000_000));
    }

    #[test]
    fn exec_time_no_overflow_on_huge_workload() {
        let d = DeviceProfile::galaxy_nexus();
        // 10^15 instructions would overflow u64 nanoseconds math done naively.
        let t = d.exec_time(1_000_000_000_000_000);
        assert!(t.as_secs_f64() > 8_000_000.0);
    }

    #[test]
    fn transfer_time_includes_propagation_and_serialization() {
        let l = LinkProfile::wifi();
        let t = l.transfer_time(l.bytes_per_sec); // 1 second of payload
        assert_eq!(t, l.one_way() + SimDuration::from_secs(1));
    }

    #[test]
    fn three_g_slower_and_costlier_than_wifi() {
        let w = LinkProfile::wifi();
        let g = LinkProfile::three_g();
        assert!(g.rtt > w.rtt);
        assert!(g.transfer_time(100_000) > w.transfer_time(100_000));
        assert!(g.tx_energy(1000).as_microjoules() > w.tx_energy(1000).as_microjoules());
    }

    #[test]
    fn zero_bytes_transfer_is_pure_propagation() {
        let l = LinkProfile::three_g();
        assert_eq!(l.transfer_time(0), l.one_way());
    }

    #[test]
    fn trusted_node_exec_energy_is_free() {
        assert_eq!(DeviceProfile::trusted_pc().exec_energy(1_000_000).as_microjoules(), 0);
    }
}
