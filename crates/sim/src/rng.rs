//! A tiny deterministic PRNG.
//!
//! Several substrates need cheap reproducible randomness (placeholder bytes,
//! TLS nonces, workload jitter) without threading a full `rand` stack through
//! every crate. [`SplitMix64`] is the standard 64-bit mixer by Steele,
//! Lea & Flood; it is *not* cryptographically secure, which is acceptable
//! because nothing in this simulation provides real security (see DESIGN.md).

use serde::{Deserialize, Serialize};

/// SplitMix64 PRNG state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value in `0..bound` (`bound` must be > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fills `buf` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A pseudorandom printable ASCII string of length `len` drawn from
    /// `[A-Za-z0-9]`. Used to generate cor placeholders of a given length.
    pub fn alphanumeric(&mut self, len: usize) -> String {
        const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        (0..len).map(|_| ALPHABET[self.below(ALPHABET.len() as u64) as usize] as char).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_answer_first_output() {
        // Reference value for seed 0 from the published SplitMix64 algorithm.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(9);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        // Extremely unlikely to remain all zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn alphanumeric_has_requested_length_and_charset() {
        let mut r = SplitMix64::new(3);
        let s = r.alphanumeric(32);
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
    }
}
