#![warn(missing_docs)]
//! Multi-tenant trust subsystem for the TinMan reproduction.
//!
//! The fleet serves many concurrent sessions, but without tenancy the
//! trusted substrate is flat: one readable WAL or one compromised node
//! exposes every user's cors. This crate adds the three mechanisms that
//! un-flatten it:
//!
//! * [`TenantId`] + [`TenantKeyring`] — tenant identities with a
//!   deterministic key hierarchy: a tenant root key (derived from the
//!   fleet master seed, the tenant id, and a rotation epoch) fans out
//!   into per-purpose keys for WAL-at-rest, replica shipping, and
//!   session transport. Sealing under one purpose key is detectably
//!   unopenable under any other purpose, tenant, or epoch.
//! * [`TenantPolicyEngine`] — a declassification policy engine layered
//!   on top of `cor::policy`'s app/domain bindings: per-tenant
//!   allow/deny domain rules and rate windows, producing explicit
//!   [`DeclassVerdict`]s with stable reason strings.
//! * [`AttestationQuote`] — a BliMe-style attestation gate: a node may
//!   only hold tenant plaintext after proving it runs the *full*
//!   four-class taint engine. The challenge replays one tainted move
//!   through every propagation class and hashes the observable
//!   behaviour; only `EngineKind::Full` produces the expected quote.
//!
//! Everything here is a pure function of its inputs (seeds, ids,
//! epochs), so fleet runs that thread tenancy through scheduling stay
//! byte-identical across worker counts.

pub mod attest;
pub mod identity;
pub mod keys;
pub mod policy;

pub use attest::{attest_kind, expected_quote, quote_for, AttestationQuote};
pub use identity::TenantId;
pub use keys::{rotation_cost, KeyPurpose, SealError, TenantKeyring, ROTATION_COST_PER_RECORD};
pub use policy::{DeclassVerdict, DeclassWindow, TenantPolicy, TenantPolicyEngine};
