//! Deterministic per-tenant key hierarchy and authenticated sealing.
//!
//! ```text
//! master seed ─┬─ tenant 0, epoch e ── root key ─┬─ wal key
//!              │                                 ├─ ship key
//!              │                                 └─ transport key
//!              └─ tenant 1, epoch e ── root key ── ...
//! ```
//!
//! Every key is `SHA256(domain-separator ‖ inputs)`, so the whole
//! hierarchy is a pure function of `(master, tenant, epoch)` — two nodes
//! that agree on those three values agree on every derived key, which is
//! what lets the fleet replay key material deterministically on the
//! session-id axis. Rotation is an epoch bump: the old hierarchy is
//! *revoked* (nothing sealed under epoch `e` opens under epoch `e+1`).
//!
//! Sealing is stream-cipher XOR under a SHA-256 keystream plus a
//! truncated SHA-256 MAC, rendered as a printable dotted blob in a
//! digit-free nibble alphabet (`a`–`p`) so ciphertext survives JSON
//! stores and the lossy-UTF-8 substring scanners in
//! `fleet::vault_audit` verbatim — and so purely numeric secrets (PINs,
//! card numbers) can never false-positive a residue scan against it.

use std::fmt;

use sha2::{Digest, Sha256};
use tinman_sim::SimDuration;

use crate::TenantId;

/// Simulated cost of re-encrypting one vault record during a key
/// rotation (keystream regeneration + MAC + fsync amortization).
pub const ROTATION_COST_PER_RECORD: SimDuration = SimDuration::from_millis(40);

/// The simulated cost of rotating a tenant's keys over `records` live
/// vault records (each must be re-sealed under the new epoch).
pub fn rotation_cost(records: u64) -> SimDuration {
    ROTATION_COST_PER_RECORD * records
}

/// What a derived key is for. Purposes are cryptographically separated:
/// a blob sealed for one purpose never opens under another.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeyPurpose {
    /// Encrypts WAL frames and snapshots at rest on the trusted node.
    WalAtRest,
    /// Encrypts the replica-shipping stream between vaults.
    ReplicaShipping,
    /// Encrypts per-session transport between device and node.
    SessionTransport,
}

impl KeyPurpose {
    /// All purposes, in derivation order.
    pub const ALL: [KeyPurpose; 3] =
        [KeyPurpose::WalAtRest, KeyPurpose::ReplicaShipping, KeyPurpose::SessionTransport];

    /// Stable domain-separation tag fed into the key derivation.
    pub fn tag(self) -> &'static str {
        match self {
            KeyPurpose::WalAtRest => "wal",
            KeyPurpose::ReplicaShipping => "ship",
            KeyPurpose::SessionTransport => "transport",
        }
    }
}

/// Why opening a sealed blob failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SealError {
    /// The blob does not parse as a `tmt1.` sealed container.
    BadFormat,
    /// The blob's header names a different tenant than this keyring.
    WrongTenant {
        /// Tenant the blob claims to belong to.
        found: u64,
    },
    /// The blob was sealed under a different (e.g. revoked) epoch.
    WrongEpoch {
        /// Epoch the blob was sealed under.
        found: u32,
    },
    /// The MAC does not verify under this keyring's purpose key.
    BadTag,
    /// Decryption succeeded structurally but yielded invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for SealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealError::BadFormat => write!(f, "not a sealed tenant blob"),
            SealError::WrongTenant { found } => {
                write!(f, "sealed for tenant {found}, not this keyring's tenant")
            }
            SealError::WrongEpoch { found } => {
                write!(f, "sealed under epoch {found}, which this keyring does not hold")
            }
            SealError::BadTag => write!(f, "authentication tag mismatch"),
            SealError::BadUtf8 => write!(f, "decrypted bytes are not UTF-8"),
        }
    }
}

impl std::error::Error for SealError {}

/// Prefix every sealed blob starts with (TinMan tenant seal, format 1).
pub const SEAL_PREFIX: &str = "tmt1";

/// One tenant's derived keys at one epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantKeyring {
    tenant: TenantId,
    epoch: u32,
    root: [u8; 32],
}

/// Digit-free nibble encoding: each nibble maps to `a`–`p`. Sealed blobs
/// therefore contain no ASCII digits outside the fixed `tmt1` prefix,
/// which keeps numeric plaintexts out of ciphertext by construction.
fn enc_bytes(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from(b'a' + (b >> 4)));
        out.push(char::from(b'a' + (b & 0xf)));
    }
    out
}

fn dec_nibble(c: u8) -> Option<u8> {
    if (b'a'..=b'p').contains(&c) {
        Some(c - b'a')
    } else {
        None
    }
}

fn dec_bytes(s: &str) -> Option<Vec<u8>> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return None;
    }
    (0..b.len() / 2)
        .map(|i| Some((dec_nibble(b[2 * i])? << 4) | dec_nibble(b[2 * i + 1])?))
        .collect()
}

fn enc_u64(v: u64) -> String {
    enc_bytes(&v.to_be_bytes())
}

fn dec_u64(s: &str) -> Option<u64> {
    let bytes: [u8; 8] = dec_bytes(s)?.try_into().ok()?;
    Some(u64::from_be_bytes(bytes))
}

/// Decoded fields of a sealed blob: `(tenant, epoch, nonce, ct, tag)`.
type SealedParts = (u64, u32, u64, Vec<u8>, Vec<u8>);

impl TenantKeyring {
    /// Derives the keyring for `(master, tenant, epoch)`. Pure: the same
    /// three inputs always yield the same hierarchy.
    pub fn derive(master: u64, tenant: TenantId, epoch: u32) -> TenantKeyring {
        let mut h = Sha256::new();
        h.update(b"tinman-tenant-root/v1");
        h.update(master.to_le_bytes());
        h.update(tenant.raw().to_le_bytes());
        h.update(epoch.to_le_bytes());
        TenantKeyring { tenant, epoch, root: h.finalize() }
    }

    /// The tenant this keyring belongs to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The rotation epoch this keyring holds keys for.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The per-purpose key, derived from the root with a domain tag.
    pub fn purpose_key(&self, purpose: KeyPurpose) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"tinman-tenant-purpose/v1");
        h.update(self.root);
        h.update(purpose.tag());
        h.finalize()
    }

    fn keystream_xor(key: &[u8; 32], nonce: u64, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(32).enumerate() {
            let mut h = Sha256::new();
            h.update(b"tinman-tenant-ks/v1");
            h.update(key);
            h.update(nonce.to_le_bytes());
            h.update((i as u64).to_le_bytes());
            let block = h.finalize();
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }

    fn mac(key: &[u8; 32], nonce: u64, ct: &[u8]) -> [u8; 16] {
        let mut h = Sha256::new();
        h.update(b"tinman-tenant-mac/v1");
        h.update(key);
        h.update(nonce.to_le_bytes());
        h.update(ct);
        let full = h.finalize();
        let mut tag = [0u8; 16];
        tag.copy_from_slice(&full[..16]);
        tag
    }

    /// Seals `plaintext` under this keyring's `purpose` key. The result
    /// is printable (`tmt1.<tenant>.<epoch>.<nonce>.<ct>.<tag>`, all in
    /// the digit-free `a`–`p` nibble alphabet), so it survives JSON
    /// stores and UTF-8-lossy scans intact and cannot collide with
    /// numeric plaintext in a substring scan.
    pub fn seal(&self, purpose: KeyPurpose, nonce: u64, plaintext: &str) -> String {
        let key = self.purpose_key(purpose);
        let mut ct = plaintext.as_bytes().to_vec();
        Self::keystream_xor(&key, nonce, &mut ct);
        let tag = Self::mac(&key, nonce, &ct);
        format!(
            "{SEAL_PREFIX}.{}.{}.{}.{}.{}",
            enc_u64(self.tenant.raw()),
            enc_u64(u64::from(self.epoch)),
            enc_u64(nonce),
            enc_bytes(&ct),
            enc_bytes(&tag)
        )
    }

    /// True when `blob` is shaped like a sealed container (regardless of
    /// who can open it).
    pub fn is_sealed(blob: &str) -> bool {
        blob.starts_with(SEAL_PREFIX) && blob.split('.').count() == 6
    }

    fn parse(blob: &str) -> Option<SealedParts> {
        let mut parts = blob.split('.');
        if parts.next()? != SEAL_PREFIX {
            return None;
        }
        let tenant = dec_u64(parts.next()?)?;
        let epoch = u32::try_from(dec_u64(parts.next()?)?).ok()?;
        let nonce = dec_u64(parts.next()?)?;
        let ct = dec_bytes(parts.next()?)?;
        let tag = dec_bytes(parts.next()?)?;
        if parts.next().is_some() || tag.len() != 16 {
            return None;
        }
        Some((tenant, epoch, nonce, ct, tag))
    }

    /// Opens a sealed blob. Fails with a precise reason when the blob
    /// belongs to another tenant, was sealed under a revoked epoch, or
    /// fails authentication under this keyring's purpose key.
    pub fn open(&self, purpose: KeyPurpose, blob: &str) -> Result<String, SealError> {
        let (tenant, epoch, nonce, mut ct, tag) = Self::parse(blob).ok_or(SealError::BadFormat)?;
        if tenant != self.tenant.raw() {
            return Err(SealError::WrongTenant { found: tenant });
        }
        if epoch != self.epoch {
            return Err(SealError::WrongEpoch { found: epoch });
        }
        let key = self.purpose_key(purpose);
        if Self::mac(&key, nonce, &ct) != *tag.as_slice() {
            return Err(SealError::BadTag);
        }
        Self::keystream_xor(&key, nonce, &mut ct);
        String::from_utf8(ct).map_err(|_| SealError::BadUtf8)
    }

    /// Cryptographic open-check that *ignores* the blob's claimed
    /// identity: can this keyring's `purpose` key actually authenticate
    /// the ciphertext? Cross-tenant residue audits use this — a foreign
    /// keyring returning `true` here would be a real isolation break,
    /// not a header mismatch.
    pub fn can_authenticate(&self, purpose: KeyPurpose, blob: &str) -> bool {
        let Some((_, _, nonce, ct, tag)) = Self::parse(blob) else {
            return false;
        };
        let key = self.purpose_key(purpose);
        Self::mac(&key, nonce, &ct) == *tag.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(tenant: u64, epoch: u32) -> TenantKeyring {
        TenantKeyring::derive(0xfeed_beef, TenantId::new(tenant), epoch)
    }

    #[test]
    fn derivation_is_deterministic_and_input_sensitive() {
        assert_eq!(ring(0, 0), ring(0, 0));
        assert_ne!(ring(0, 0).root, ring(1, 0).root, "tenant separates");
        assert_ne!(ring(0, 0).root, ring(0, 1).root, "epoch separates");
        assert_ne!(
            TenantKeyring::derive(1, TenantId::new(0), 0).root,
            TenantKeyring::derive(2, TenantId::new(0), 0).root,
            "master seed separates"
        );
    }

    #[test]
    fn purposes_are_separated() {
        let r = ring(0, 0);
        let keys: Vec<_> = KeyPurpose::ALL.iter().map(|p| r.purpose_key(*p)).collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[0], keys[2]);
        let blob = r.seal(KeyPurpose::WalAtRest, 7, "hunter2");
        assert_eq!(
            r.open(KeyPurpose::ReplicaShipping, &blob),
            Err(SealError::BadTag),
            "a wal-sealed blob must not open under the ship key"
        );
    }

    #[test]
    fn seal_round_trips_and_hides_plaintext() {
        let r = ring(3, 1);
        let blob = r.seal(KeyPurpose::WalAtRest, 42, "correct horse battery");
        assert!(TenantKeyring::is_sealed(&blob));
        assert!(!blob.contains("correct horse"), "ciphertext must not leak the plaintext");
        assert_eq!(r.open(KeyPurpose::WalAtRest, &blob).unwrap(), "correct horse battery");
    }

    #[test]
    fn foreign_tenant_and_revoked_epoch_are_refused() {
        let a = ring(0, 0);
        let blob = a.seal(KeyPurpose::WalAtRest, 1, "secret");
        assert_eq!(
            ring(1, 0).open(KeyPurpose::WalAtRest, &blob),
            Err(SealError::WrongTenant { found: 0 })
        );
        assert_eq!(
            ring(0, 1).open(KeyPurpose::WalAtRest, &blob),
            Err(SealError::WrongEpoch { found: 0 }),
            "rotation revokes the old epoch"
        );
        assert!(!ring(1, 0).can_authenticate(KeyPurpose::WalAtRest, &blob));
        assert!(!ring(0, 1).can_authenticate(KeyPurpose::WalAtRest, &blob));
        assert!(a.can_authenticate(KeyPurpose::WalAtRest, &blob));
    }

    #[test]
    fn tampered_ciphertext_fails_the_mac() {
        let r = ring(0, 0);
        let blob = r.seal(KeyPurpose::WalAtRest, 9, "payload");
        let mut parts: Vec<String> = blob.split('.').map(str::to_owned).collect();
        let flipped = if parts[4].starts_with('a') { "b" } else { "a" };
        parts[4].replace_range(0..1, flipped);
        let tampered = parts.join(".");
        assert_eq!(r.open(KeyPurpose::WalAtRest, &tampered), Err(SealError::BadTag));
    }

    #[test]
    fn sealed_blob_is_printable_ascii() {
        let blob = ring(0, 0).seal(KeyPurpose::WalAtRest, 5, "päss wörd \u{1F512}");
        assert!(blob.is_ascii(), "sealed blobs must survive lossy UTF-8 scans verbatim");
    }

    #[test]
    fn sealed_blob_is_digit_free_past_the_prefix() {
        let blob = ring(7, 3).seal(KeyPurpose::WalAtRest, 0x1234_5678, "4111111111111111");
        let body = blob.strip_prefix("tmt1.").expect("prefixed");
        assert!(
            body.chars().all(|c| c == '.' || ('a'..='p').contains(&c)),
            "numeric secrets must never false-positive a scan against ciphertext: {blob}"
        );
    }

    #[test]
    fn rotation_cost_scales_with_records() {
        assert_eq!(rotation_cost(0), SimDuration::ZERO);
        assert_eq!(rotation_cost(3), ROTATION_COST_PER_RECORD * 3);
    }
}
