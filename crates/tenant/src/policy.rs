//! The per-tenant declassification policy engine.
//!
//! `cor::policy` binds individual cors to apps and domains. This layer
//! sits *above* it and answers a different question: may **this
//! tenant's** data flow to **this endpoint** at all, and how often?
//! Both layers must allow a declassification for it to proceed — the
//! tenant layer can only narrow, never widen, what the cor layer
//! grants.
//!
//! Verdicts are explicit and carry a stable machine-readable reason, so
//! the fleet can fail sessions closed, count denials in its report, and
//! trace each decision.

use std::collections::HashMap;

use tinman_cor::PolicyDecision;

use crate::TenantId;

/// A rate window over the fleet's session axis: at most `max`
/// declassifications per `window` consecutive session ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeclassWindow {
    /// Window width in session ids.
    pub window: u64,
    /// Maximum declassifications inside one window.
    pub max: u32,
}

/// One tenant's declassification policy. Defaults allow everything —
/// tenancy isolates by keys even when no policy narrows flows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Destinations this tenant's data may flow to. Empty = any domain
    /// the cor layer already allows.
    pub allow_domains: Vec<String>,
    /// Destinations this tenant's data must never flow to, even when
    /// the cor-level whitelist contains them. Deny wins over allow.
    pub deny_domains: Vec<String>,
    /// Optional rate window limiting declassifications per tenant.
    pub declass_window: Option<DeclassWindow>,
}

/// The tenant layer's verdict on one declassification request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeclassVerdict {
    /// Both layers allow the flow.
    Allow,
    /// The destination is on the tenant's deny list.
    DeniedTenantDeny {
        /// The rejected destination.
        domain: String,
    },
    /// The tenant has an allow list and the destination is not on it.
    DeniedNotAllowed {
        /// The rejected destination.
        domain: String,
    },
    /// The tenant's declassification rate window is exhausted.
    DeniedRateWindow,
    /// The underlying cor-level policy already denied the flow; the
    /// tenant layer never overrides a base denial.
    DeniedByCor {
        /// The cor layer's decision.
        decision: PolicyDecision,
    },
}

impl DeclassVerdict {
    /// True when the declassification proceeds.
    pub fn is_allowed(&self) -> bool {
        *self == DeclassVerdict::Allow
    }

    /// Stable reason string for traces, metrics, and report columns.
    pub fn reason(&self) -> &'static str {
        match self {
            DeclassVerdict::Allow => "allow",
            DeclassVerdict::DeniedTenantDeny { .. } => "tenant_deny",
            DeclassVerdict::DeniedNotAllowed { .. } => "not_allowed",
            DeclassVerdict::DeniedRateWindow => "rate_window",
            DeclassVerdict::DeniedByCor { .. } => "cor_policy",
        }
    }
}

/// Suffix domain match, same idiom as the cor layer: `shop.com` matches
/// itself and `www.shop.com`, never `notshop.com`.
fn domain_matches(domain: &str, rule: &str) -> bool {
    domain == rule || domain.ends_with(&format!(".{rule}"))
}

/// Evaluates per-tenant declassification policy. Rate-window usage is
/// tracked internally, so decisions must be replayed in session-id
/// order for determinism — the same discipline `cor::PolicyEngine`
/// imposes on its daily counters.
#[derive(Clone, Debug, Default)]
pub struct TenantPolicyEngine {
    policies: HashMap<u64, TenantPolicy>,
    /// (tenant, window-index) -> declassifications so far.
    usage: HashMap<(u64, u64), u32>,
}

impl TenantPolicyEngine {
    /// An engine with no per-tenant policies (everything allowed).
    pub fn new() -> Self {
        TenantPolicyEngine::default()
    }

    /// Installs (replacing) the policy for a tenant.
    pub fn set_policy(&mut self, tenant: TenantId, policy: TenantPolicy) {
        self.policies.insert(tenant.raw(), policy);
    }

    /// The policy for a tenant, if one is installed.
    pub fn policy(&self, tenant: TenantId) -> Option<&TenantPolicy> {
        self.policies.get(&tenant.raw())
    }

    /// Evaluates the tenant layer alone: may `tenant`'s data flow to
    /// `domain` in `session`? Mutates rate-window usage on allowed
    /// flows, so call in session-id order.
    pub fn check(&mut self, tenant: TenantId, domain: &str, session: u64) -> DeclassVerdict {
        let Some(policy) = self.policies.get(&tenant.raw()) else {
            return DeclassVerdict::Allow;
        };
        if policy.deny_domains.iter().any(|d| domain_matches(domain, d)) {
            return DeclassVerdict::DeniedTenantDeny { domain: domain.to_owned() };
        }
        if !policy.allow_domains.is_empty()
            && !policy.allow_domains.iter().any(|d| domain_matches(domain, d))
        {
            return DeclassVerdict::DeniedNotAllowed { domain: domain.to_owned() };
        }
        if let Some(w) = policy.declass_window {
            let idx = session.checked_div(w.window).unwrap_or(0);
            let used = self.usage.entry((tenant.raw(), idx)).or_insert(0);
            if *used >= w.max {
                return DeclassVerdict::DeniedRateWindow;
            }
            *used += 1;
        }
        DeclassVerdict::Allow
    }

    /// Layers the tenant verdict on top of a cor-level decision: a base
    /// denial always wins (the tenant layer cannot widen), and only
    /// then does the tenant layer get to narrow.
    pub fn check_with_base(
        &mut self,
        tenant: TenantId,
        domain: &str,
        session: u64,
        base: &PolicyDecision,
    ) -> DeclassVerdict {
        if !base.is_allowed() {
            return DeclassVerdict::DeniedByCor { decision: base.clone() };
        }
        self.check(tenant, domain, session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TenantId {
        TenantId::new(n)
    }

    #[test]
    fn no_policy_means_allow() {
        let mut e = TenantPolicyEngine::new();
        assert!(e.check(t(0), "anywhere.example", 0).is_allowed());
    }

    #[test]
    fn deny_wins_over_allow_and_suffix_matches() {
        let mut e = TenantPolicyEngine::new();
        e.set_policy(
            t(0),
            TenantPolicy {
                allow_domains: vec!["shop.com".into()],
                deny_domains: vec!["shop.com".into()],
                declass_window: None,
            },
        );
        assert_eq!(
            e.check(t(0), "www.shop.com", 0),
            DeclassVerdict::DeniedTenantDeny { domain: "www.shop.com".into() }
        );
        assert!(!e.check(t(0), "notshop.com", 0).is_allowed(), "not on the allow list");
        assert_eq!(e.check(t(0), "notshop.com", 0).reason(), "not_allowed");
    }

    #[test]
    fn allow_list_narrows() {
        let mut e = TenantPolicyEngine::new();
        e.set_policy(
            t(1),
            TenantPolicy { allow_domains: vec!["citibank.com".into()], ..Default::default() },
        );
        assert!(e.check(t(1), "citibank.com", 0).is_allowed());
        assert!(!e.check(t(1), "shop.com", 0).is_allowed());
        assert!(e.check(t(0), "shop.com", 0).is_allowed(), "other tenants unaffected");
    }

    #[test]
    fn rate_window_exhausts_and_resets() {
        let mut e = TenantPolicyEngine::new();
        e.set_policy(
            t(0),
            TenantPolicy {
                declass_window: Some(DeclassWindow { window: 4, max: 2 }),
                ..Default::default()
            },
        );
        assert!(e.check(t(0), "a.com", 0).is_allowed());
        assert!(e.check(t(0), "a.com", 1).is_allowed());
        assert_eq!(e.check(t(0), "a.com", 2), DeclassVerdict::DeniedRateWindow);
        assert!(e.check(t(0), "a.com", 4).is_allowed(), "next window resets the budget");
    }

    #[test]
    fn base_denial_cannot_be_widened() {
        let mut e = TenantPolicyEngine::new();
        let denied = PolicyDecision::DeniedDomain { domain: "evil.com".into() };
        let v = e.check_with_base(t(0), "evil.com", 0, &denied);
        assert_eq!(v.reason(), "cor_policy");
        assert!(!v.is_allowed());
        let allowed = PolicyDecision::Allow;
        assert!(e.check_with_base(t(0), "ok.com", 0, &allowed).is_allowed());
    }
}
