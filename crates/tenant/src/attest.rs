//! Taint-engine attestation gate (BliMe-style).
//!
//! A node may only hold tenant plaintext after proving it runs the
//! *full* four-class taint engine. The proof is behavioural: the
//! challenge drives one tainted move through each of the four
//! propagation classes on a fresh engine and hashes what the engine
//! observably did (destination taint, offload trigger, instrumentation).
//! Only `EngineKind::Full` propagates taint on the stack-source classes,
//! so the asymmetric and disabled engines produce different quotes and
//! fail verification — there is no flag a node can set to fake the
//! quote without actually propagating taint.

use sha2::{Digest, Sha256};
use tinman_taint::{EngineKind, Label, PropClass, TaintEngine, TaintSet};

/// Label the challenge taints its source with. Any label works; this
/// one is fixed so quotes are comparable across nodes.
const CHALLENGE_LABEL: u8 = 5;

/// A node's attestation quote: a digest over the observable behaviour
/// of its taint engine under the four-class challenge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttestationQuote([u8; 32]);

impl AttestationQuote {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

fn engine_of(kind: EngineKind) -> TaintEngine {
    match kind {
        EngineKind::None => TaintEngine::none(),
        EngineKind::Full => TaintEngine::full(),
        EngineKind::Asymmetric => TaintEngine::asymmetric(),
    }
}

/// Runs the attestation challenge against a taint engine of `kind` and
/// returns its quote. Each class gets a *fresh* engine so stats from
/// one class cannot bleed into the next.
pub fn quote_for(kind: EngineKind) -> AttestationQuote {
    let label = Label::new(CHALLENGE_LABEL).expect("challenge label is in range");
    let src: TaintSet = label.as_set();
    let mut h = Sha256::new();
    h.update(b"tinman-tenant-attest/v1");
    for class in PropClass::ALL {
        let mut engine = engine_of(kind);
        let out = engine.on_move(class, src);
        h.update(class.name());
        h.update(out.dst_taint.bits().to_le_bytes());
        h.update([u8::from(out.trigger_offload), u8::from(engine.instruments(class))]);
    }
    AttestationQuote(h.finalize())
}

/// The quote an honest full-engine node produces.
pub fn expected_quote() -> AttestationQuote {
    quote_for(EngineKind::Full)
}

/// Verifies a quote against the full-engine expectation.
pub fn verify(quote: &AttestationQuote) -> bool {
    *quote == expected_quote()
}

/// Convenience: does a node running `kind` pass the attestation gate?
pub fn attest_kind(kind: EngineKind) -> bool {
    verify(&quote_for(kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_the_full_engine_attests() {
        assert!(attest_kind(EngineKind::Full));
        assert!(!attest_kind(EngineKind::Asymmetric), "asymmetric drops stack-source taint");
        assert!(!attest_kind(EngineKind::None));
    }

    #[test]
    fn quotes_are_deterministic_and_distinct() {
        assert_eq!(quote_for(EngineKind::Full), quote_for(EngineKind::Full));
        assert_ne!(quote_for(EngineKind::Full), quote_for(EngineKind::Asymmetric));
        assert_ne!(quote_for(EngineKind::Asymmetric), quote_for(EngineKind::None));
    }
}
