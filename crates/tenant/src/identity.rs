//! Tenant identities.
//!
//! A tenant is the unit of cryptographic and policy isolation: every
//! session, every vault shard, and every shipped replica log belongs to
//! exactly one tenant. The id is a plain `u64` so it can ride through
//! chaos plans and report columns without dragging this crate along.

use std::fmt;

/// Opaque tenant identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u64);

impl TenantId {
    /// Wraps a raw tenant number.
    pub const fn new(raw: u64) -> TenantId {
        TenantId(raw)
    }

    /// The raw tenant number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Deterministic tenant assignment for a session: round-robin over
    /// `tenants` (0 tenants means tenancy is disabled and everything is
    /// tenant 0).
    pub const fn for_session(tenants: u64, session: u64) -> TenantId {
        if tenants == 0 {
            TenantId(0)
        } else {
            TenantId(session % tenants)
        }
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment() {
        assert_eq!(TenantId::for_session(3, 0), TenantId::new(0));
        assert_eq!(TenantId::for_session(3, 4), TenantId::new(1));
        assert_eq!(TenantId::for_session(3, 5), TenantId::new(2));
        assert_eq!(TenantId::for_session(0, 7), TenantId::new(0), "disabled maps to tenant 0");
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(TenantId::new(2).to_string(), "tenant:2");
    }
}
