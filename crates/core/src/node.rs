//! The trusted node.

use std::collections::HashSet;

use tinman_cor::{AuditLog, CorStore, PolicyEngine};
use tinman_net::HostId;
use tinman_sim::DeviceProfile;
use tinman_taint::TaintEngine;
use tinman_vm::Machine;

/// The trusted node: cor store, policy, audit, and the mirrored execution
/// environment offloaded threads run in.
pub struct TrustedNode {
    /// The node's identity in the simulated world.
    pub host: HostId,
    /// All cor plaintexts, placeholders, and derived cors.
    pub store: CorStore,
    /// The §3.4 policy engine (bindings, revocation, malware DB, limits).
    pub policy: PolicyEngine,
    /// The append-only access log.
    pub audit: AuditLog,
    /// The mirrored VM thread (populated by DSM migration).
    pub machine: Machine,
    /// The full (TaintDroid-grade) taint engine.
    pub engine: TaintEngine,
    /// App images already uploaded ("warm" dex cache, §6.2) keyed by image
    /// hash.
    pub warm_apps: HashSet<[u8; 32]>,
    /// Compute profile (the i5 PC).
    pub profile: DeviceProfile,
}

impl TrustedNode {
    /// A fresh node around an existing cor store.
    pub fn new(host: HostId, store: CorStore) -> Self {
        TrustedNode {
            host,
            store,
            policy: PolicyEngine::new(),
            audit: AuditLog::new(),
            machine: Machine::new(),
            engine: TaintEngine::full(),
            warm_apps: HashSet::new(),
            profile: DeviceProfile::trusted_pc(),
        }
    }

    /// True if the app image was already uploaded.
    pub fn is_warm(&self, app_hash: &[u8; 32]) -> bool {
        self.warm_apps.contains(app_hash)
    }

    /// Marks an app image uploaded.
    pub fn mark_warm(&mut self, app_hash: [u8; 32]) {
        self.warm_apps.insert(app_hash);
    }

    /// Resets the mirrored machine for a fresh app run (warm caches and the
    /// store survive).
    pub fn reset_for_run(&mut self) {
        self.machine = Machine::new();
        self.engine = TaintEngine::full();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_cache_tracks_uploads() {
        let mut n = TrustedNode::new(HostId(1), CorStore::new(1));
        let h = [7u8; 32];
        assert!(!n.is_warm(&h));
        n.mark_warm(h);
        assert!(n.is_warm(&h));
        n.reset_for_run();
        assert!(n.is_warm(&h), "warm cache survives runs");
    }
}
