//! TLS-speaking simulated web servers.
//!
//! [`HttpsServerApp`] adapts a plain request handler ([`HttpHandler`]) into
//! a [`tinman_net::ServerApp`]: it terminates the toy TLS (handshake +
//! record layer) per client connection, passes decrypted request bodies to
//! the handler, and seals the responses. The handler never sees TinMan —
//! which is the point: the web site is oblivious to payload replacement
//! (§3.3 step 5).

use std::collections::HashMap;

use tinman_net::{Addr, ServerApp, ServerReply};
use tinman_sim::SimDuration;
use tinman_tls::{ClientHello, ContentType, Handshake, Record, TlsConfig, TlsSession};

/// A plain application-layer request handler.
pub trait HttpHandler {
    /// Handles one decrypted request body; returns the response body and
    /// the server's think time.
    fn handle(&mut self, peer: Addr, request: &str) -> (String, SimDuration);
}

impl<F> HttpHandler for F
where
    F: FnMut(Addr, &str) -> (String, SimDuration),
{
    fn handle(&mut self, peer: Addr, request: &str) -> (String, SimDuration) {
        self(peer, request)
    }
}

enum ConnTls {
    /// Waiting for a ClientHello.
    Pending,
    /// Handshake complete.
    Ready(Box<TlsSession>),
}

/// A TLS server wrapped around an [`HttpHandler`].
pub struct HttpsServerApp<H: HttpHandler> {
    config: TlsConfig,
    handler: H,
    conns: HashMap<Addr, ConnTls>,
    nonce_counter: u64,
    /// Count of application requests served (diagnostics for tests).
    pub requests_served: u64,
}

impl<H: HttpHandler> HttpsServerApp<H> {
    /// Wraps `handler` behind the toy TLS with the given config.
    pub fn new(config: TlsConfig, handler: H) -> Self {
        HttpsServerApp {
            config,
            handler,
            conns: HashMap::new(),
            nonce_counter: 1,
            requests_served: 0,
        }
    }

    fn fresh_random(&mut self) -> [u8; 32] {
        self.nonce_counter += 1;
        let mut r = [0u8; 32];
        r[..8].copy_from_slice(&self.nonce_counter.to_be_bytes());
        r[8] = 0x5a;
        r
    }
}

impl<H: HttpHandler> ServerApp for HttpsServerApp<H> {
    fn on_connect(&mut self, peer: Addr) {
        self.conns.insert(peer, ConnTls::Pending);
    }

    fn on_data(&mut self, peer: Addr, data: &[u8]) -> ServerReply {
        // Draw handshake randomness up front to keep the borrow of the
        // per-connection state exclusive below.
        let random = self.fresh_random();
        let seed = self.nonce_counter;
        let state = self.conns.entry(peer).or_insert(ConnTls::Pending);
        match state {
            ConnTls::Pending => {
                // Expect a plaintext handshake record carrying a
                // ClientHello.
                let Ok(Some((rec, _))) = Record::parse(data) else {
                    return ServerReply::default();
                };
                if rec.content_type != ContentType::Handshake {
                    return ServerReply::default();
                }
                let Ok(hello) = serde_json::from_slice::<ClientHello>(&rec.body) else {
                    return ServerReply::default();
                };
                match Handshake::accept(&self.config, &hello, random, seed) {
                    Ok((server_hello, session)) => {
                        *state = ConnTls::Ready(Box::new(session));
                        let body =
                            serde_json::to_vec(&server_hello).expect("ServerHello serializes");
                        let rec = Record {
                            content_type: ContentType::Handshake,
                            version: server_hello.version,
                            body,
                        };
                        ServerReply {
                            data: rec.to_bytes(),
                            think: SimDuration::from_millis(2),
                            close: false,
                        }
                    }
                    Err(_) => {
                        // Alert + close, like a real server refusing the
                        // handshake.
                        let rec = Record {
                            content_type: ContentType::Alert,
                            version: hello.max_version,
                            body: b"handshake_failure".to_vec(),
                        };
                        ServerReply {
                            data: rec.to_bytes(),
                            think: SimDuration::from_millis(1),
                            close: true,
                        }
                    }
                }
            }
            ConnTls::Ready(session) => {
                let Ok(opened) = session.open(data) else {
                    let rec = Record {
                        content_type: ContentType::Alert,
                        version: 0x33,
                        body: b"bad_record_mac".to_vec(),
                    };
                    return ServerReply {
                        data: rec.to_bytes(),
                        think: SimDuration::ZERO,
                        close: true,
                    };
                };
                let mut out = Vec::new();
                let mut think = SimDuration::ZERO;
                for (ctype, plaintext) in opened {
                    // The server treats TinMan-marked records like
                    // application data if they ever arrive (they should
                    // not: the filter captures them) — but a *real* server
                    // would not know the type, so accept ApplicationData
                    // only.
                    if ctype != ContentType::ApplicationData {
                        continue;
                    }
                    let request = String::from_utf8_lossy(&plaintext).into_owned();
                    let (response, t) = self.handler.handle(peer, &request);
                    self.requests_served += 1;
                    think += t;
                    // The record length field is 16 bits: chunk large
                    // response bodies (pages) across records.
                    for chunk in response.as_bytes().chunks(16 * 1024) {
                        out.extend(session.seal(ContentType::ApplicationData, chunk));
                    }
                }
                ServerReply { data: out, think, close: false }
            }
        }
    }

    fn on_close(&mut self, peer: Addr) {
        self.conns.remove(&peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_net::{HostId, NetWorld};
    use tinman_sim::{LinkProfile, SimClock};
    use tinman_tls::TlsVersion;

    const PSK: [u8; 32] = [3u8; 32];

    fn https_world() -> (NetWorld, HostId, Addr) {
        let mut w = NetWorld::new(SimClock::new());
        let phone = w.add_host("phone", LinkProfile::wifi());
        let site = w.add_host("bank.com", LinkProfile::ethernet());
        let addr = Addr::new(site, 443);
        let app = HttpsServerApp::new(TlsConfig::permissive(PSK), |_peer: Addr, req: &str| {
            (format!("echo:{req}"), SimDuration::from_millis(3))
        });
        w.install_server(addr, Box::new(app));
        (w, phone, addr)
    }

    /// Client-side handshake over the world's TCP.
    fn client_handshake(
        w: &mut NetWorld,
        phone: HostId,
        addr: Addr,
        cfg: &TlsConfig,
    ) -> Result<(tinman_net::ConnId, TlsSession), tinman_tls::TlsError> {
        let conn = w.connect(phone, addr).expect("tcp connect");
        let hello = Handshake::client_hello(cfg, [7u8; 32]);
        let rec = Record {
            content_type: ContentType::Handshake,
            version: hello.max_version,
            body: serde_json::to_vec(&hello).unwrap(),
        };
        w.send(conn, &rec.to_bytes()).expect("send hello");
        let reply = w.recv_available(conn).expect("recv");
        let (rec, _) = Record::parse(&reply).unwrap().expect("complete record");
        if rec.content_type == ContentType::Alert {
            return Err(tinman_tls::TlsError::BadHandshake(
                String::from_utf8_lossy(&rec.body).into_owned(),
            ));
        }
        let server_hello: tinman_tls::ServerHello = serde_json::from_slice(&rec.body).unwrap();
        let session = Handshake::finish(cfg, &hello, &server_hello, 42)?;
        Ok((conn, session))
    }

    #[test]
    fn full_https_round_trip_over_simulated_tcp() {
        let (mut w, phone, addr) = https_world();
        let cfg = TlsConfig::tinman_client(PSK);
        let (conn, mut tls) = client_handshake(&mut w, phone, addr, &cfg).unwrap();
        assert_eq!(tls.version(), TlsVersion::Tls12);

        let wire = tls.seal(ContentType::ApplicationData, b"GET /balance");
        w.send(conn, &wire).unwrap();
        let reply = w.recv_available(conn).unwrap();
        let opened = tls.open(&reply).unwrap();
        assert_eq!(opened[0].1, b"echo:GET /balance");
    }

    #[test]
    fn tinman_client_refuses_legacy_server() {
        let mut w = NetWorld::new(SimClock::new());
        let phone = w.add_host("phone", LinkProfile::wifi());
        let site = w.add_host("legacy.com", LinkProfile::ethernet());
        let addr = Addr::new(site, 443);
        let app = HttpsServerApp::new(TlsConfig::legacy_tls10(PSK), |_: Addr, _: &str| {
            (String::new(), SimDuration::ZERO)
        });
        w.install_server(addr, Box::new(app));
        let cfg = TlsConfig::tinman_client(PSK);
        // The legacy server cannot accept a hello whose negotiated version
        // would exceed its max — it picks 1.0, which the client refuses; in
        // our flow the *server* already refuses because its min (1.0)
        // cannot satisfy... run it and expect a handshake error either way.
        let result = client_handshake(&mut w, phone, addr, &cfg);
        assert!(result.is_err(), "no session may form below the TinMan floor");
    }

    #[test]
    fn permissive_client_talks_to_legacy_server() {
        let mut w = NetWorld::new(SimClock::new());
        let phone = w.add_host("phone", LinkProfile::wifi());
        let site = w.add_host("legacy.com", LinkProfile::ethernet());
        let addr = Addr::new(site, 443);
        let app = HttpsServerApp::new(TlsConfig::legacy_tls10(PSK), |_: Addr, req: &str| {
            (req.to_uppercase(), SimDuration::ZERO)
        });
        w.install_server(addr, Box::new(app));
        let cfg = TlsConfig::permissive(PSK);
        let (conn, mut tls) = client_handshake(&mut w, phone, addr, &cfg).unwrap();
        assert_eq!(tls.version(), TlsVersion::Tls10);
        let wire = tls.seal(ContentType::ApplicationData, b"hi");
        w.send(conn, &wire).unwrap();
        let reply = w.recv_available(conn).unwrap();
        assert_eq!(tls.open(&reply).unwrap()[0].1, b"HI");
    }

    #[test]
    fn garbage_on_the_wire_is_ignored_or_alerted() {
        let (mut w, phone, addr) = https_world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"\x16\x33\x00\x03abc").unwrap(); // bogus hello body
                                                       // Server ignored the malformed hello (no panic, no reply or alert).
        let _ = w.recv_available(conn).unwrap();
    }
}
