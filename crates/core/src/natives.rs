//! Native-function names shared by the runtime hosts and the app images.
//!
//! Every app in the reproduction imports natives by these names; the client
//! and node hosts dispatch on them. The `OFFLOADABLE` table encodes the
//! §3.1 classification: a non-offloadable native invoked on the trusted
//! node forces migration back (I/O and UI must touch the real device), an
//! offloadable one may run on either endpoint.

/// UI: resolve a cor by its description. TinMan mode returns the tainted
/// placeholder (the user picked from the widget's list, Figure 12); stock
/// mode returns the typed plaintext.
pub const UI_SELECT_COR: &str = "ui.select_cor";
/// UI: display a string (client-only).
pub const UI_SHOW: &str = "ui.show";
/// Log a line to the device log (client-only; exercises migrate-back).
pub const SYS_LOG: &str = "sys.log";
/// SHA-256 of a string, hex-encoded. Offloadable computation — hashing a
/// placeholder triggers offload; on the node the result becomes a derived
/// cor (the §4.1 hashed-password flow).
pub const CRYPTO_SHA256: &str = "crypto.sha256";
/// Opens a TCP connection: `(domain, port) -> conn handle`.
pub const NET_CONNECT: &str = "net.connect";
/// Runs the TLS handshake on a connection: `(conn) -> 1`.
pub const NET_TLS_HANDSHAKE: &str = "net.tls_handshake";
/// Sends application data over TLS: `(conn, data) -> 1/0`. The special
/// native: tainted data on the trusted node takes the SSL-session-injection
/// + payload-replacement path.
pub const NET_SEND: &str = "net.send";
/// Receives available application data: `(conn) -> string`.
pub const NET_RECV: &str = "net.recv";
/// Closes a connection.
pub const NET_CLOSE: &str = "net.close";
/// Appends a line to the device's flash storage (client-only) — how stock
/// apps leave disk residue.
pub const DISK_WRITE: &str = "disk.write";
/// Reads a scripted input: `(key) -> string` (client-only).
pub const APP_INPUT: &str = "app.input";

/// All natives the hosts implement.
pub const ALL: &[&str] = &[
    UI_SELECT_COR,
    UI_SHOW,
    SYS_LOG,
    CRYPTO_SHA256,
    NET_CONNECT,
    NET_TLS_HANDSHAKE,
    NET_SEND,
    NET_RECV,
    NET_CLOSE,
    DISK_WRITE,
    APP_INPUT,
];

/// True if the named native may execute on the trusted node.
///
/// `NET_SEND` is nominally I/O, but a *cor-bearing* send is exactly the
/// case TinMan handles on the node via payload replacement; the node host
/// special-cases it. An untainted send on the node migrates back like any
/// other I/O.
pub fn offloadable(name: &str) -> bool {
    matches!(name, CRYPTO_SHA256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_paper() {
        assert!(offloadable(CRYPTO_SHA256), "pure computation offloads");
        for io in [UI_SHOW, SYS_LOG, NET_RECV, NET_CLOSE, DISK_WRITE, APP_INPUT, NET_CONNECT] {
            assert!(!offloadable(io), "{io} is device I/O");
        }
    }

    #[test]
    fn all_lists_every_native_once() {
        let mut names = ALL.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }
}
