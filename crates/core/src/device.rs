//! The client device (the phone).

use std::collections::HashMap;

use tinman_cor::PlaceholderDirectory;
use tinman_net::{ConnId, HostId};
use tinman_sim::{Battery, DeviceProfile, EnergyMeter, LinkProfile};
use tinman_taint::TaintEngine;
use tinman_tls::{TlsConfig, TlsSession};
use tinman_vm::Machine;

/// An app-visible connection handle (the integer the `net.*` natives trade
/// in).
pub type ConnHandle = i64;

/// One open connection's client-side state.
pub struct ConnState {
    /// The world-level TCP connection.
    pub conn: ConnId,
    /// The destination domain the app named (for policy checks and audit).
    pub domain: String,
    /// The TLS session once the handshake completed.
    pub tls: Option<TlsSession>,
}

/// The mobile device: machine + taint engine + network/TLS client state +
/// power accounting + the simulated flash storage.
pub struct ClientDevice {
    /// The device's identity in the simulated world.
    pub host: HostId,
    /// A stable device name (the revocation key).
    pub name: String,
    /// The VM thread (the app being run).
    pub machine: Machine,
    /// The client taint engine (asymmetric under TinMan).
    pub engine: TaintEngine,
    /// cor descriptions + placeholders (TinMan mode).
    pub directory: PlaceholderDirectory,
    /// The device's TLS policy (TinMan: floor at TLS 1.1).
    pub tls_config: TlsConfig,
    /// Open connections by app-visible handle.
    pub conns: HashMap<ConnHandle, ConnState>,
    next_handle: ConnHandle,
    /// Compute profile (Galaxy Nexus).
    pub profile: DeviceProfile,
    /// Radio profile (Wi-Fi or 3G).
    pub link: LinkProfile,
    /// The battery.
    pub battery: Battery,
    /// Energy attribution.
    pub energy: EnergyMeter,
    /// Simulated flash storage: lines apps wrote with `disk.write`. Part of
    /// the residue-scan surface.
    pub disk: Vec<String>,
    /// Device log lines (`sys.log`). Also scanned for residue.
    pub device_log: Vec<String>,
}

impl ClientDevice {
    /// A fresh device.
    pub fn new(
        host: HostId,
        name: &str,
        engine: TaintEngine,
        directory: PlaceholderDirectory,
        tls_config: TlsConfig,
        link: LinkProfile,
    ) -> Self {
        ClientDevice {
            host,
            name: name.to_owned(),
            machine: Machine::new(),
            engine,
            directory,
            tls_config,
            conns: HashMap::new(),
            next_handle: 1,
            profile: DeviceProfile::galaxy_nexus(),
            link,
            battery: Battery::galaxy_nexus(),
            energy: EnergyMeter::new(),
            disk: Vec::new(),
            device_log: Vec::new(),
        }
    }

    /// Registers an open connection, returning the app-visible handle.
    pub fn add_conn(&mut self, conn: ConnId, domain: &str) -> ConnHandle {
        let h = self.next_handle;
        self.next_handle += 1;
        self.conns.insert(h, ConnState { conn, domain: domain.to_owned(), tls: None });
        h
    }

    /// Resets per-app run state (machine, connections) while keeping the
    /// battery, directory and warm caches — a new app launch on the same
    /// phone.
    pub fn reset_for_run(&mut self, engine: TaintEngine) {
        self.machine = Machine::new();
        self.engine = engine;
        self.conns.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> ClientDevice {
        ClientDevice::new(
            HostId(0),
            "phone-1",
            TaintEngine::asymmetric(),
            PlaceholderDirectory::default(),
            TlsConfig::tinman_client([0u8; 32]),
            LinkProfile::wifi(),
        )
    }

    #[test]
    fn conn_handles_are_unique_and_resolvable() {
        let mut d = device();
        let a = d.add_conn(ConnId(10), "a.com");
        let b = d.add_conn(ConnId(11), "b.com");
        assert_ne!(a, b);
        assert_eq!(d.conns[&a].domain, "a.com");
        assert_eq!(d.conns[&b].conn, ConnId(11));
    }

    #[test]
    fn reset_keeps_battery_but_clears_run_state() {
        let mut d = device();
        d.add_conn(ConnId(1), "x.com");
        d.machine.heap.alloc_str("stale");
        d.battery.drain(tinman_sim::MicroJoules::from_joules(10));
        let drained = d.battery.drained();
        d.reset_for_run(TaintEngine::asymmetric());
        assert!(d.conns.is_empty());
        assert_eq!(d.machine.heap.len(), 0);
        assert_eq!(d.battery.drained(), drained);
    }
}
