//! Cor materializers: how DSM tokens become local content on each endpoint.

use tinman_cor::{CorId, CorStore, PlaceholderDirectory};
use tinman_dsm::{CorMaterializer, CorToken, DsmError, ObjShape};
use tinman_taint::TaintSet;
use tinman_vm::{HeapKind, Value};

/// Zero-content payload of a given shape — used for tainted non-string
/// objects, which carry no readable content on either wire direction.
fn neutral(shape: &ObjShape) -> HeapKind {
    match shape {
        ObjShape::Str { len } => HeapKind::Str("\u{0}".repeat(*len)),
        ObjShape::Arr { len } => HeapKind::Arr(vec![Value::Int(0); *len]),
        ObjShape::Obj { class, n_fields } => {
            HeapKind::Obj { class: *class, fields: vec![Value::Null; *n_fields] }
        }
    }
}

/// The client's materializer.
///
/// * tokenize (client → node): the client's tainted content is *already* a
///   placeholder, which is public, so the token may carry it verbatim.
/// * materialize (node → client): string tokens become the carried
///   placeholder; everything else becomes neutral content of the right
///   shape. The directory learns placeholders of newly derived cors.
pub struct ClientMaterializer<'a> {
    /// The client's placeholder directory, updated when derived cors are
    /// first seen.
    pub directory: &'a mut PlaceholderDirectory,
}

impl CorMaterializer for ClientMaterializer<'_> {
    fn tokenize(&mut self, kind: &HeapKind, taint: TaintSet) -> Result<CorToken, DsmError> {
        let placeholder = match kind {
            HeapKind::Str(s) => Some(s.clone()), // a placeholder, by the system invariant
            _ => None,
        };
        Ok(CorToken { labels: taint, shape: ObjShape::of(kind), placeholder })
    }

    fn materialize(&mut self, token: &CorToken) -> Result<(HeapKind, TaintSet), DsmError> {
        match (&token.shape, &token.placeholder) {
            (ObjShape::Str { len }, Some(p)) if p.len() == *len => {
                // Remember the placeholder for derived cors so future UI /
                // tokenization sees a consistent value.
                if let Some(label) = token.labels.iter().next() {
                    let id = CorId::from_label(label);
                    if self.directory.placeholder(id).is_none() {
                        self.directory.insert(id, &format!("(derived #{})", label.id()), p);
                    }
                }
                Ok((HeapKind::Str(p.clone()), token.labels))
            }
            _ => Ok((neutral(&token.shape), token.labels)),
        }
    }
}

/// The trusted node's materializer.
///
/// * tokenize (node → client): a tainted string's content is plaintext; it
///   is resolved (or registered as a derived cor) in the store and replaced
///   by its placeholder in the token. **Plaintext never enters a token.**
/// * materialize (client → node): string tokens resolve labels back to
///   plaintext from the store.
pub struct NodeMaterializer<'a> {
    /// The node's cor store.
    pub store: &'a mut CorStore,
}

impl CorMaterializer for NodeMaterializer<'_> {
    fn tokenize(&mut self, kind: &HeapKind, taint: TaintSet) -> Result<CorToken, DsmError> {
        match kind {
            HeapKind::Str(s) => {
                let id = match self.store.find_by_plaintext(s) {
                    Some(id) => id,
                    None => self
                        .store
                        .register_derived(s, taint)
                        .ok_or(DsmError::UnknownCor { labels: taint })?,
                };
                let placeholder =
                    self.store.placeholder(id).expect("registered cor has a placeholder");
                Ok(CorToken {
                    labels: id.taint(),
                    shape: ObjShape::Str { len: s.len() },
                    placeholder: Some(placeholder.to_owned()),
                })
            }
            other => Ok(CorToken { labels: taint, shape: ObjShape::of(other), placeholder: None }),
        }
    }

    fn materialize(&mut self, token: &CorToken) -> Result<(HeapKind, TaintSet), DsmError> {
        if let ObjShape::Str { len } = token.shape {
            // Single-label string tokens resolve to plaintext.
            let labels: Vec<_> = token.labels.iter().collect();
            if labels.len() == 1 {
                let id = CorId::from_label(labels[0]);
                if let Some(p) = self.store.plaintext(id) {
                    if p.len() != len {
                        return Err(DsmError::ShapeMismatch {
                            obj: tinman_vm::ObjId(0),
                            detail: format!(
                                "cor {id:?} plaintext length {} != token length {len}",
                                p.len()
                            ),
                        });
                    }
                    return Ok((HeapKind::Str(p.to_owned()), token.labels));
                }
            }
            return Err(DsmError::UnknownCor { labels: token.labels });
        }
        Ok((neutral(&token.shape), token.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_cor() -> (CorStore, CorId) {
        let mut s = CorStore::new(5);
        let id = s.register("hunter2", "Bank password", &["bank.com"]).unwrap();
        (s, id)
    }

    #[test]
    fn client_to_node_round_trip_restores_plaintext() {
        let (mut store, id) = store_with_cor();
        let placeholder = store.placeholder(id).unwrap().to_owned();
        let mut dir = store.client_directory();

        // Client tokenizes its placeholder...
        let mut cm = ClientMaterializer { directory: &mut dir };
        let token = cm.tokenize(&HeapKind::Str(placeholder.clone()), id.taint()).unwrap();
        assert_eq!(token.placeholder.as_deref(), Some(placeholder.as_str()));

        // ...and the node materializes the real plaintext.
        let mut nm = NodeMaterializer { store: &mut store };
        let (kind, taint) = nm.materialize(&token).unwrap();
        assert_eq!(kind, HeapKind::Str("hunter2".into()));
        assert_eq!(taint, id.taint());
    }

    #[test]
    fn node_to_client_mints_derived_cor_and_ships_placeholder_only() {
        let (mut store, id) = store_with_cor();
        let mut dir = store.client_directory();

        // The node tokenizes a derived plaintext (e.g. a hash).
        let derived_plain = "sha256:deadbeefcafebabe";
        let mut nm = NodeMaterializer { store: &mut store };
        let token = nm.tokenize(&HeapKind::Str(derived_plain.into()), id.taint()).unwrap();
        assert_ne!(token.labels, id.taint(), "derived cor got a fresh label");
        let ph = token.placeholder.clone().unwrap();
        assert_eq!(ph.len(), derived_plain.len());
        assert_ne!(ph, derived_plain);
        assert!(!serde_json::to_string(&token).unwrap().contains("deadbeef"));

        // The client materializes the placeholder and learns it.
        let mut cm = ClientMaterializer { directory: &mut dir };
        let (kind, taint) = cm.materialize(&token).unwrap();
        assert_eq!(kind, HeapKind::Str(ph.clone()));
        assert_eq!(taint, token.labels);
        let label = token.labels.iter().next().unwrap();
        assert_eq!(dir.placeholder(CorId::from_label(label)), Some(ph.as_str()));
    }

    #[test]
    fn derived_round_trip_back_to_node() {
        // Full cycle: node mints derived cor -> client holds placeholder ->
        // client ships it back -> node recovers the derived plaintext.
        let (mut store, id) = store_with_cor();
        let mut dir = store.client_directory();
        let derived_plain = "hash-value-0123456789abcdef";
        let token1 = NodeMaterializer { store: &mut store }
            .tokenize(&HeapKind::Str(derived_plain.into()), id.taint())
            .unwrap();
        let (client_kind, client_taint) =
            ClientMaterializer { directory: &mut dir }.materialize(&token1).unwrap();
        let token2 = ClientMaterializer { directory: &mut dir }
            .tokenize(&client_kind, client_taint)
            .unwrap();
        let (node_kind, _) = NodeMaterializer { store: &mut store }.materialize(&token2).unwrap();
        assert_eq!(node_kind, HeapKind::Str(derived_plain.into()));
    }

    #[test]
    fn unknown_label_is_an_error_on_the_node() {
        let (mut store, _) = store_with_cor();
        let token = CorToken {
            labels: tinman_taint::Label::new(33).unwrap().as_set(),
            shape: ObjShape::Str { len: 4 },
            placeholder: Some("XXXX".into()),
        };
        let err = NodeMaterializer { store: &mut store }.materialize(&token).unwrap_err();
        assert!(matches!(err, DsmError::UnknownCor { .. }));
    }

    #[test]
    fn tainted_arrays_travel_content_free() {
        let (mut store, id) = store_with_cor();
        let kind = HeapKind::Arr(vec![Value::Int(104), Value::Int(105)]); // "hi"
        let token = NodeMaterializer { store: &mut store }.tokenize(&kind, id.taint()).unwrap();
        assert!(token.placeholder.is_none());
        let mut dir = store.client_directory();
        let (back, _) = ClientMaterializer { directory: &mut dir }.materialize(&token).unwrap();
        assert_eq!(back, HeapKind::Arr(vec![Value::Int(0), Value::Int(0)]), "content scrubbed");
    }
}
