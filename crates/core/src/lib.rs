#![warn(missing_docs)]
//! The TinMan runtime — security-oriented offloading.
//!
//! This crate composes every substrate into the system the paper describes:
//!
//! * a [`device::ClientDevice`] (the phone): a VM machine with the
//!   *asymmetric* taint engine, a placeholder directory, a TLS stack with
//!   the TLS ≥ 1.1 floor, a TCP connection table, a battery, and a
//!   simulated disk;
//! * a [`node::TrustedNode`]: the cor store, the §3.4 policy engine, the
//!   audit log, the malware database, a mirrored VM machine with the *full*
//!   taint engine, and the warm app-image cache;
//! * the [`runtime::TinmanRuntime`] event loop: runs an app on the client
//!   until a taint trigger suspends it, migrates it over the DSM engine,
//!   continues it on the node, performs **SSL session injection** and
//!   **TCP payload replacement** when offloaded code sends a cor, and
//!   migrates back on taint-idle or non-offloadable natives;
//! * [`server::HttpsServerApp`]: TLS-speaking simulated web servers that
//!   the apps log into, oblivious to the payload replacement happening in
//!   front of them;
//! * [`scan::ResidueReport`]: the §5.1 attacker — a full scan of client
//!   memory, socket buffers, the disk and the placeholder directory for
//!   cor plaintext.
//!
//! Three runtime modes reproduce the paper's comparison set: stock Android
//! (no tainting, secrets typed in), TinMan (asymmetric tainting +
//! offloading), and full-tainting (TaintDroid-style client, for Figure 13).

pub mod device;
pub mod error;
pub mod hosts;
pub mod materialize;
pub mod natives;
pub mod node;
pub mod runtime;
pub mod scan;
pub mod server;

pub use device::{ClientDevice, ConnHandle};
pub use error::RuntimeError;
pub use node::TrustedNode;
pub use runtime::{Mode, NodeCheckpoint, RunReport, TinmanConfig, TinmanRuntime};
pub use scan::ResidueReport;
pub use server::{HttpHandler, HttpsServerApp};
