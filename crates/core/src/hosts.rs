//! Native hosts: what `ui.*`, `net.*`, `crypto.*` do on each endpoint.
//!
//! The client host executes device I/O for real and *refuses* to touch
//! tainted data (returning [`NativeOutcome::TriggerOffload`]); the node host
//! executes computation, refuses ordinary I/O (returning
//! [`NativeOutcome::MigrateBack`]), and implements the one special case the
//! whole paper revolves around: a **cor-bearing `net.send`**, performed by
//! SSL session injection plus TCP payload replacement (§3.2–§3.3).

use std::collections::HashMap;

use sha2::{Digest, Sha256};
use tinman_cor::{
    AccessRequest, AuditEntry, AuditLog, CorId, CorStore, PlaceholderDirectory, PolicyEngine,
};
use tinman_net::{HostId, NetWorld};
use tinman_sim::{Breakdown, SimClock, SplitMix64};
use tinman_tls::{ContentType, Handshake, Record, TlsError, TlsSession};
use tinman_vm::{NativeCtx, NativeHost, NativeOutcome, Value, VmError};

use crate::device::{ConnHandle, ConnState};
use crate::natives;

/// Cycle cost charged for a SHA-256 invocation (crypto is not free).
const SHA256_CYCLES: u64 = 4_000;
/// Cycle cost charged for sealing/opening a TLS record.
const TLS_RECORD_CYCLES: u64 = 1_500;

/// How the client resolves `ui.select_cor`.
pub enum ClientMode {
    /// TinMan: the user picks from the placeholder directory; the app gets
    /// the tainted placeholder.
    TinMan,
    /// Stock Android: the user types the secret; the app gets plaintext.
    /// The map is description -> typed plaintext.
    Stock(HashMap<String, String>),
}

/// The client-side native host for one run segment.
pub struct ClientHost<'a> {
    /// The simulated internet.
    pub world: &'a mut NetWorld,
    /// The device's host id.
    pub host: HostId,
    /// Open connections.
    pub conns: &'a mut HashMap<ConnHandle, ConnState>,
    /// Connection-handle allocator (mirrors `ClientDevice::add_conn`).
    pub next_handle: &'a mut ConnHandle,
    /// The placeholder directory (TinMan mode).
    pub directory: &'a PlaceholderDirectory,
    /// cor resolution mode.
    pub mode: ClientMode,
    /// The device's TLS policy.
    pub tls_config: &'a tinman_tls::TlsConfig,
    /// Scripted inputs for `app.input`.
    pub inputs: &'a HashMap<String, String>,
    /// The device log (`sys.log`, `ui.show`).
    pub device_log: &'a mut Vec<String>,
    /// The flash storage (`disk.write`).
    pub disk: &'a mut Vec<String>,
    /// Handshake randomness.
    pub rng: &'a mut SplitMix64,
    /// Records the last TLS failure so the runtime can surface it.
    pub last_tls_error: &'a mut Option<TlsError>,
}

impl ClientHost<'_> {
    fn handle_arg(&self, ctx: &NativeCtx<'_>, i: usize) -> Result<ConnHandle, VmError> {
        ctx.int_arg(i)
    }

    fn random32(&mut self) -> [u8; 32] {
        let mut r = [0u8; 32];
        self.rng.fill_bytes(&mut r);
        r
    }
}

impl NativeHost for ClientHost<'_> {
    fn call(&mut self, ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError> {
        match ctx.name {
            natives::UI_SELECT_COR => {
                let desc = ctx.str_arg(0)?.to_owned();
                match &self.mode {
                    ClientMode::TinMan => {
                        let id = self
                            .directory
                            .find_by_description(&desc)
                            .ok_or_else(|| ctx.error(format!("no cor described '{desc}'")))?;
                        let placeholder = self
                            .directory
                            .placeholder(id)
                            .expect("directory entries have placeholders")
                            .to_owned();
                        // The placeholder lands on the heap carrying the
                        // cor's taint label; the reference itself is clean.
                        let obj = ctx.heap.alloc_str_tainted(placeholder, id.taint());
                        Ok(NativeOutcome::ret(Value::Ref(obj)))
                    }
                    ClientMode::Stock(secrets) => {
                        let plaintext = secrets
                            .get(&desc)
                            .ok_or_else(|| ctx.error(format!("no typed secret for '{desc}'")))?
                            .clone();
                        let obj = ctx.heap.alloc_str(plaintext);
                        Ok(NativeOutcome::ret(Value::Ref(obj)))
                    }
                }
            }
            natives::UI_SHOW | natives::SYS_LOG => {
                if ctx.args_taint()?.is_tainted() {
                    // Displaying or logging a cor would leave residue; the
                    // node cannot do it either — but it will refuse with
                    // MigrateBack and the runtime detects the ping-pong.
                    return Ok(NativeOutcome::TriggerOffload);
                }
                let line = ctx.str_arg(0)?.to_owned();
                self.device_log.push(line);
                Ok(NativeOutcome::void())
            }
            natives::DISK_WRITE => {
                if ctx.args_taint()?.is_tainted() {
                    return Ok(NativeOutcome::TriggerOffload);
                }
                let line = ctx.str_arg(0)?.to_owned();
                self.disk.push(line);
                Ok(NativeOutcome::void())
            }
            natives::APP_INPUT => {
                let key = ctx.str_arg(0)?.to_owned();
                let value = self
                    .inputs
                    .get(&key)
                    .ok_or_else(|| ctx.error(format!("missing scripted input '{key}'")))?
                    .clone();
                let obj = ctx.heap.alloc_str(value);
                Ok(NativeOutcome::ret(Value::Ref(obj)))
            }
            natives::CRYPTO_SHA256 => {
                if ctx.args_taint()?.is_tainted() {
                    // Hashing a placeholder locally would produce garbage —
                    // the §4.1 trigger.
                    return Ok(NativeOutcome::TriggerOffload);
                }
                let input = ctx.str_arg(0)?.to_owned();
                let digest = Sha256::digest(input.as_bytes());
                let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
                let obj = ctx.heap.alloc_str(hex);
                Ok(NativeOutcome::Ret {
                    value: Value::Ref(obj),
                    taint: tinman_taint::TaintSet::EMPTY,
                    cycles: SHA256_CYCLES,
                })
            }
            natives::NET_CONNECT => {
                let domain = ctx.str_arg(0)?.to_owned();
                let port = ctx.int_arg(1)? as u16;
                let server =
                    self.world.resolve(&domain).map_err(|e| ctx.error(format!("dns: {e}")))?;
                let conn = self
                    .world
                    .connect(self.host, tinman_net::Addr::new(server, port))
                    .map_err(|e| ctx.error(format!("connect: {e}")))?;
                let handle = *self.next_handle;
                *self.next_handle += 1;
                self.conns.insert(handle, ConnState { conn, domain, tls: None });
                Ok(NativeOutcome::ret(Value::Int(handle)))
            }
            natives::NET_TLS_HANDSHAKE => {
                let handle = self.handle_arg(&ctx, 0)?;
                let random = self.random32();
                let seed = self.rng.next_u64();
                let state = self
                    .conns
                    .get_mut(&handle)
                    .ok_or_else(|| ctx.error(format!("bad conn handle {handle}")))?;
                let hello = Handshake::client_hello(self.tls_config, random);
                let rec = Record {
                    content_type: ContentType::Handshake,
                    version: hello.max_version,
                    body: serde_json::to_vec(&hello).expect("hello serializes"),
                };
                self.world
                    .send(state.conn, &rec.to_bytes())
                    .map_err(|e| ctx.error(format!("send hello: {e}")))?;
                let reply = self
                    .world
                    .recv_available(state.conn)
                    .map_err(|e| ctx.error(format!("recv hello: {e}")))?;
                let parsed = Record::parse(&reply)
                    .map_err(|e| ctx.error(format!("parse server hello: {e}")))?;
                let Some((rec, _)) = parsed else {
                    *self.last_tls_error = Some(TlsError::BadHandshake("no server hello".into()));
                    return Ok(NativeOutcome::ret(Value::Int(0)));
                };
                if rec.content_type == ContentType::Alert {
                    *self.last_tls_error = Some(TlsError::BadHandshake(
                        String::from_utf8_lossy(&rec.body).into_owned(),
                    ));
                    return Ok(NativeOutcome::ret(Value::Int(0)));
                }
                let server_hello: tinman_tls::ServerHello = serde_json::from_slice(&rec.body)
                    .map_err(|e| ctx.error(format!("bad server hello: {e}")))?;
                match Handshake::finish(self.tls_config, &hello, &server_hello, seed) {
                    Ok(session) => {
                        state.tls = Some(session);
                        Ok(NativeOutcome::Ret {
                            value: Value::Int(1),
                            taint: tinman_taint::TaintSet::EMPTY,
                            cycles: TLS_RECORD_CYCLES,
                        })
                    }
                    Err(e) => {
                        // The TinMan floor refusing TLS 1.0 lands here.
                        *self.last_tls_error = Some(e);
                        Ok(NativeOutcome::ret(Value::Int(0)))
                    }
                }
            }
            natives::NET_SEND => {
                if ctx.args_taint()?.is_tainted() {
                    // A cor-bearing send needs the trusted node (payload
                    // replacement).
                    return Ok(NativeOutcome::TriggerOffload);
                }
                let handle = self.handle_arg(&ctx, 0)?;
                let data = ctx.str_arg(1)?.to_owned();
                let state = self
                    .conns
                    .get_mut(&handle)
                    .ok_or_else(|| ctx.error(format!("bad conn handle {handle}")))?;
                let session =
                    state.tls.as_mut().ok_or_else(|| ctx.error("send before TLS handshake"))?;
                let wire = session.seal(ContentType::ApplicationData, data.as_bytes());
                self.world.send(state.conn, &wire).map_err(|e| ctx.error(format!("send: {e}")))?;
                Ok(NativeOutcome::Ret {
                    value: Value::Int(1),
                    taint: tinman_taint::TaintSet::EMPTY,
                    cycles: TLS_RECORD_CYCLES,
                })
            }
            natives::NET_RECV => {
                let handle = self.handle_arg(&ctx, 0)?;
                let state = self
                    .conns
                    .get_mut(&handle)
                    .ok_or_else(|| ctx.error(format!("bad conn handle {handle}")))?;
                let wire = self
                    .world
                    .recv_available(state.conn)
                    .map_err(|e| ctx.error(format!("recv: {e}")))?;
                let session =
                    state.tls.as_mut().ok_or_else(|| ctx.error("recv before TLS handshake"))?;
                let mut text = String::new();
                if !wire.is_empty() {
                    let opened =
                        session.open(&wire).map_err(|e| ctx.error(format!("open records: {e}")))?;
                    for (ctype, plaintext) in opened {
                        if ctype == ContentType::ApplicationData {
                            text.push_str(&String::from_utf8_lossy(&plaintext));
                        }
                    }
                }
                // Bulk page/resource content streams to the app's cache
                // rather than materializing as one managed-heap string
                // (what a real HTTP stack does); the VM sees the response
                // head. The full bytes were transferred and charged.
                const RECV_HEAD: usize = 4096;
                if text.len() > RECV_HEAD {
                    text.truncate(RECV_HEAD);
                }
                let obj = ctx.heap.alloc_str(text);
                Ok(NativeOutcome::Ret {
                    value: Value::Ref(obj),
                    taint: tinman_taint::TaintSet::EMPTY,
                    cycles: TLS_RECORD_CYCLES,
                })
            }
            natives::NET_CLOSE => {
                let handle = self.handle_arg(&ctx, 0)?;
                if let Some(state) = self.conns.remove(&handle) {
                    let _ = self.world.close(state.conn);
                }
                Ok(NativeOutcome::void())
            }
            other => Err(VmError::UnboundNative { name: other.to_owned() }),
        }
    }
}

/// The node-side native host for one run segment.
pub struct NodeHost<'a> {
    /// The simulated internet.
    pub world: &'a mut NetWorld,
    /// The node's host id (redirect queue owner, physical sender of
    /// reframed packets).
    pub node_host: HostId,
    /// The client device's host id (for diagnostics).
    pub client_host: HostId,
    /// The client's open connections (their TLS sessions get injected).
    pub conns: &'a mut HashMap<ConnHandle, ConnState>,
    /// The cor store.
    pub store: &'a mut CorStore,
    /// The policy engine.
    pub policy: &'a mut PolicyEngine,
    /// The audit log.
    pub audit: &'a mut AuditLog,
    /// The running app's image hash (the app↔cor binding subject).
    pub app_hash: [u8; 32],
    /// The requesting device's name (the revocation key).
    pub device_name: String,
    /// The shared clock (policy time windows, audit timestamps).
    pub clock: SimClock,
    /// Latency attribution: the SSL/TCP offloading path charges here.
    pub breakdown: &'a mut Breakdown,
    /// Session-injection nonce source.
    pub rng: &'a mut SplitMix64,
    /// Set when a policy denial occurred (the runtime surfaces it).
    pub last_denial: &'a mut Option<tinman_cor::PolicyDecision>,
    /// The client's radio profile (the exported session state crosses that
    /// link).
    pub client_link: tinman_sim::LinkProfile,
    /// Fixed coordination cost per cor send (see
    /// `TinmanConfig::ssl_coordination_fixed`).
    pub ssl_coordination_fixed: tinman_sim::SimDuration,
    /// Control-protocol round trips per cor send.
    pub ssl_coordination_rtts: u32,
    /// Trace emitter (no-op by default): the SSL/TCP offload path emits
    /// `ssl_injection` and `tcp_payload_replace` events.
    pub trace: tinman_obs::TraceHandle,
    /// The track those events land on.
    pub trace_track: u64,
}

impl NodeHost<'_> {
    fn audit_access(
        &mut self,
        cor: CorId,
        domain: Option<&str>,
        decision: tinman_cor::PolicyDecision,
    ) {
        self.audit.record(AuditEntry {
            time: self.clock.now(),
            app_hash_hex: self.app_hash.iter().map(|b| format!("{b:02x}")).collect(),
            cor,
            domain: domain.map(str::to_owned),
            decision,
            device: self.device_name.clone(),
        });
    }

    /// Policy-checks one cor access; records the audit entry; returns
    /// whether it may proceed.
    fn check_access(&mut self, cor: CorId, domain: Option<&str>) -> bool {
        let fallback: Vec<String> =
            self.store.get(cor).map(|r| r.whitelist.clone()).unwrap_or_default();
        let req = AccessRequest {
            cor,
            app_hash: self.app_hash,
            dest_domain: domain.map(str::to_owned),
            device: self.device_name.clone(),
            now: self.clock.now(),
        };
        let decision = self.policy.check(&req, &fallback);
        let allowed = decision.is_allowed();
        if !allowed {
            *self.last_denial = Some(decision.clone());
        }
        self.audit_access(cor, domain, decision);
        allowed
    }

    /// The §3.2/§3.3 flow: session injection + payload replacement.
    ///
    /// Precondition: `data` is the *plaintext* (the node's heap holds real
    /// values) and carries taint.
    fn send_cor(
        &mut self,
        ctx: &mut NativeCtx<'_>,
        handle: ConnHandle,
        data: String,
        taint: tinman_taint::TaintSet,
    ) -> Result<NativeOutcome, VmError> {
        let t_start = self.clock.now();
        let think_start = self.world.think_time_total();
        let rx_start = self
            .world
            .traffic(self.client_host)
            .map_err(|e| ctx.error(format!("client traffic: {e}")))?
            .rx_bytes;
        let state = self
            .conns
            .get_mut(&handle)
            .ok_or_else(|| ctx.error(format!("bad conn handle {handle}")))?;
        let domain = state.domain.clone();

        // -- policy: every cor label in the payload must be sendable to
        // this destination (the derived cor inherited its parents'
        // whitelists).
        let labels: Vec<CorId> = taint.iter().map(CorId::from_label).collect();
        for cor in &labels {
            if !self.check_access(*cor, Some(&domain)) {
                return Ok(NativeOutcome::ret(Value::Int(0)));
            }
        }

        // -- figure 8 step 1: the client exports its SSL session state.
        let state = self.conns.get_mut(&handle).expect("checked above");
        let session =
            state.tls.as_mut().ok_or_else(|| ctx.error("cor send before TLS handshake"))?;
        let exported = session.export_state();
        // The state crosses client -> node; its serialized size is tiny but
        // the transfer is real.
        let state_bytes = serde_json::to_vec(&exported).map(|v| v.len() as u64).unwrap_or(256);

        // -- figure 8 step 3: the client seals the *placeholder* under the
        // marked record type and sends it through its own TCP stack; the
        // egress filter redirects it here.
        let placeholder = match self.store.find_by_plaintext(&data) {
            Some(id) => self.store.placeholder(id).expect("has placeholder").to_owned(),
            None => {
                let id = self
                    .store
                    .register_derived(&data, taint)
                    .ok_or_else(|| ctx.error("cor label space exhausted"))?;
                self.store.placeholder(id).expect("has placeholder").to_owned()
            }
        };
        debug_assert_eq!(placeholder.len(), data.len());
        let marked_wire = session.seal(ContentType::TinManMarked, placeholder.as_bytes());
        if marked_wire.len() > tinman_net::tcp::MSS {
            return Err(ctx.error(format!(
                "cor record of {} bytes exceeds one segment ({}); payload replacement \
                 requires a single-packet record",
                marked_wire.len(),
                tinman_net::tcp::MSS
            )));
        }
        self.world
            .send(state.conn, &marked_wire)
            .map_err(|e| ctx.error(format!("send marked record: {e}")))?;

        // -- figure 8 step 4: pick up the diverted packet, replace the
        // payload with the cor sealed under the injected session, forward
        // with the TCP header untouched.
        let mut diverted = self
            .world
            .take_redirected(self.node_host)
            .map_err(|e| ctx.error(format!("redirect queue: {e}")))?;
        let Some(mut seg) = diverted.pop() else {
            return Err(ctx.error("marked packet was not diverted (filter not installed?)"));
        };
        let mut node_session = TlsSession::from_state(exported, self.rng.next_u64());
        if self.trace.is_enabled() {
            self.trace.emit_on(
                self.trace_track,
                self.clock.now(),
                tinman_obs::TraceEvent::SslInjection { domain: domain.clone(), state_bytes },
            );
        }
        let real_wire = node_session.seal(ContentType::ApplicationData, data.as_bytes());
        if real_wire.len() != seg.payload.len() {
            return Err(ctx.error(format!(
                "payload replacement length mismatch: {} != {}",
                real_wire.len(),
                seg.payload.len()
            )));
        }
        seg.payload = real_wire;
        if self.trace.is_enabled() {
            self.trace.emit_on(
                self.trace_track,
                self.clock.now(),
                tinman_obs::TraceEvent::TcpPayloadReplace { bytes: seg.payload.len() as u64 },
            );
        }
        self.world
            .inject(self.node_host, seg)
            .map_err(|e| ctx.error(format!("inject reframed packet: {e}")))?;

        // -- the client's session resumes from the node's progress (a
        // no-op for equal-length records, but the call also enforces the
        // implicit-IV refusal).
        let state = self.conns.get_mut(&handle).expect("still open");
        let session = state.tls.as_mut().expect("established");
        session
            .import_progress(node_session.send_seq(), node_session.send_stream_offset())
            .map_err(|e| ctx.error(format!("resume session: {e}")))?;

        // Attribute the path. The wall time so far splits into (a) server
        // processing, which belongs to the site, and (b) TinMan's transfer
        // work; on top come the state-export transfer and the control
        // protocol (filter arming, acks, progress sync) — the fixed +
        // per-RTT coordination cost the prototype measures as "SSL/TCP
        // offloading related overhead".
        let think = self.world.think_time_total().saturating_sub(think_start);
        // The server's response (page download) arrives inside this window
        // but is site traffic, not TinMan overhead: attribute it by the
        // client's received bytes.
        let rx_bytes = self
            .world
            .traffic(self.client_host)
            .map_err(|e| ctx.error(format!("client traffic: {e}")))?
            .rx_bytes
            - rx_start;
        let download = self.client_link.serialize_time(rx_bytes);
        let flow = self.clock.now().since(t_start).saturating_sub(think).saturating_sub(download);
        let coordination = self.ssl_coordination_fixed
            + self.client_link.rtt * self.ssl_coordination_rtts as u64
            + self.client_link.transfer_time(state_bytes);
        self.clock.advance(coordination);
        self.breakdown.charge("ssl_tcp", flow + coordination);
        self.breakdown.charge("net.server", think + download);
        Ok(NativeOutcome::Ret {
            value: Value::Int(1),
            taint: tinman_taint::TaintSet::EMPTY,
            cycles: 2 * TLS_RECORD_CYCLES,
        })
    }
}

impl NativeHost for NodeHost<'_> {
    fn call(&mut self, mut ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError> {
        match ctx.name {
            natives::CRYPTO_SHA256 => {
                let taint = ctx.args_taint()?;
                // Access control on computation: the app must be allowed to
                // touch each cor at all (the app↔cor binding; phishing apps
                // stop here).
                for label in taint.iter() {
                    if !self.check_access(CorId::from_label(label), None) {
                        return Ok(NativeOutcome::ret(Value::Null));
                    }
                }
                let input = ctx.str_arg(0)?.to_owned();
                let digest = Sha256::digest(input.as_bytes());
                let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
                let result_taint = if taint.is_tainted() {
                    // The hash of a cor is a new cor (§4.1): mint it now so
                    // it has a placeholder before any sync.
                    let id = self
                        .store
                        .register_derived(&hex, taint)
                        .ok_or_else(|| ctx.error("cor label space exhausted"))?;
                    id.taint()
                } else {
                    tinman_taint::TaintSet::EMPTY
                };
                let obj = ctx.heap.alloc_str_tainted(hex, result_taint);
                Ok(NativeOutcome::Ret {
                    value: Value::Ref(obj),
                    taint: tinman_taint::TaintSet::EMPTY,
                    cycles: SHA256_CYCLES,
                })
            }
            natives::NET_SEND => {
                let taint = ctx.args_taint()?;
                if taint.is_empty() {
                    // Ordinary I/O belongs on the device.
                    return Ok(NativeOutcome::MigrateBack);
                }
                let handle = ctx.int_arg(0)?;
                let data = ctx.str_arg(1)?.to_owned();
                self.send_cor(&mut ctx, handle, data, taint)
            }
            natives::UI_SELECT_COR
            | natives::UI_SHOW
            | natives::SYS_LOG
            | natives::DISK_WRITE
            | natives::APP_INPUT
            | natives::NET_CONNECT
            | natives::NET_TLS_HANDSHAKE
            | natives::NET_RECV
            | natives::NET_CLOSE => Ok(NativeOutcome::MigrateBack),
            other => Err(VmError::UnboundNative { name: other.to_owned() }),
        }
    }
}
