//! The §5.1 attacker: a full residue scan of the client device.
//!
//! "Given physical access to a mobile device, an attacker [can scan] the
//! entire memory and storage of the phone, searching residues of cor."
//! The scanner covers every place the paper's motivation (§2.1) lists
//! plaintext hiding: the VM heap (including char arrays), the operand
//! stacks, socket receive buffers, flash storage, the device log, and the
//! placeholder directory.

use tinman_net::NetWorld;

use crate::device::ClientDevice;

/// Where a residue hit was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResidueSite {
    /// A heap object (string or char array).
    Heap,
    /// A socket receive buffer.
    SocketBuffer,
    /// Flash storage (`disk.write`).
    Disk,
    /// The device log.
    DeviceLog,
    /// The placeholder directory (should never hit — placeholders are
    /// dummy data).
    Directory,
}

/// The result of scanning one device for one needle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResidueReport {
    /// Each hit's location.
    pub hits: Vec<ResidueSite>,
}

impl ResidueReport {
    /// True if the needle appeared nowhere — TinMan's headline guarantee.
    pub fn is_clean(&self) -> bool {
        self.hits.is_empty()
    }

    /// Number of hits.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// True if no hits were recorded.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }
}

/// Scans every attacker-visible surface of `device` for `needle`.
pub fn scan_device(device: &ClientDevice, world: &NetWorld, needle: &str) -> ResidueReport {
    let mut report = ResidueReport::default();
    if needle.is_empty() {
        return report;
    }
    for _ in device.machine.scan_residue(needle) {
        report.hits.push(ResidueSite::Heap);
    }
    for state in device.conns.values() {
        if world.conn_buffer_contains(state.conn, needle.as_bytes()) {
            report.hits.push(ResidueSite::SocketBuffer);
        }
    }
    if device.disk.iter().any(|l| l.contains(needle)) {
        report.hits.push(ResidueSite::Disk);
    }
    if device.device_log.iter().any(|l| l.contains(needle)) {
        report.hits.push(ResidueSite::DeviceLog);
    }
    if device.directory.contains_text(needle) {
        report.hits.push(ResidueSite::Directory);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_cor::PlaceholderDirectory;
    use tinman_net::HostId;
    use tinman_sim::{LinkProfile, SimClock};
    use tinman_taint::TaintEngine;
    use tinman_tls::TlsConfig;

    fn device() -> ClientDevice {
        ClientDevice::new(
            HostId(0),
            "phone",
            TaintEngine::asymmetric(),
            PlaceholderDirectory::default(),
            TlsConfig::tinman_client([0u8; 32]),
            LinkProfile::wifi(),
        )
    }

    #[test]
    fn clean_device_scans_clean() {
        let d = device();
        let w = NetWorld::new(SimClock::new());
        assert!(scan_device(&d, &w, "hunter2").is_clean());
        assert!(scan_device(&d, &w, "").is_clean());
    }

    #[test]
    fn heap_disk_and_log_hits_are_reported() {
        let mut d = device();
        let w = NetWorld::new(SimClock::new());
        d.machine.heap.alloc_str("contains hunter2 here");
        d.disk.push("saved: hunter2".into());
        d.device_log.push("debug hunter2".into());
        let report = scan_device(&d, &w, "hunter2");
        assert_eq!(report.len(), 3);
        assert!(report.hits.contains(&ResidueSite::Heap));
        assert!(report.hits.contains(&ResidueSite::Disk));
        assert!(report.hits.contains(&ResidueSite::DeviceLog));
    }
}
