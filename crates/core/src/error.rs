//! Runtime error type.

use std::fmt;

use tinman_cor::PolicyDecision;
use tinman_dsm::DsmError;
use tinman_guard::KillReason;
use tinman_net::NetError;
use tinman_tls::TlsError;
use tinman_vm::VmError;

/// An error raised by the TinMan runtime while driving an app.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// The VM faulted.
    Vm(VmError),
    /// DSM synchronization failed.
    Dsm(DsmError),
    /// The simulated network failed.
    Net(NetError),
    /// The TLS stack failed (including the version-floor refusal).
    Tls(TlsError),
    /// The trusted node's policy denied a cor access mid-flow.
    PolicyDenied(PolicyDecision),
    /// The app image is in the malware database; the node refused to run
    /// it at all (§3.4).
    MalwareRejected {
        /// Hex of the rejected image hash.
        app_hash_hex: String,
    },
    /// The same instruction triggered offloading twice without progress —
    /// tainted data was handed to a native that can run on neither
    /// endpoint.
    OffloadPingPong {
        /// The function containing the instruction.
        func: String,
        /// The instruction index.
        pc: usize,
    },
    /// The run exceeded its instruction budget (runaway app).
    FuelExhausted,
    /// The guard killed the guest for exhausting a session budget; the
    /// node heap was scrubbed and the session failed closed.
    GuestKilled {
        /// Which budget was exhausted.
        reason: KillReason,
    },
    /// The serving node began draining (planned membership change or a
    /// dying region) mid-offload: the guest was checkpointed at a DSM
    /// sync point, the source heap was scrubbed, and the session must
    /// resume from the checkpoint on a peer node — or fail closed.
    NodeDraining {
        /// The node index that drained.
        node: usize,
        /// Simulated instant of the checkpoint, nanoseconds since
        /// session start.
        at_ns: u64,
    },
    /// A migration checkpoint failed to rehydrate on the target node.
    /// The serialized guest cannot be trusted; the migration is
    /// abandoned and the session fails closed.
    CheckpointCorrupt {
        /// What the deserializer objected to.
        reason: String,
    },
    /// An app asked for an input key the harness did not script.
    MissingInput(String),
    /// The device is offline (connectivity requirement, §5.4).
    Offline,
    /// A derived value mixed cors owned by two different trusted nodes —
    /// a single offload episode cannot span trust domains (§5.3).
    CrossNodeCor {
        /// One involved node index.
        node_a: usize,
        /// The other involved node index.
        node_b: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Vm(e) => write!(f, "vm: {e}"),
            RuntimeError::Dsm(e) => write!(f, "dsm: {e}"),
            RuntimeError::Net(e) => write!(f, "net: {e}"),
            RuntimeError::Tls(e) => write!(f, "tls: {e}"),
            RuntimeError::PolicyDenied(d) => write!(f, "trusted node denied cor access: {d:?}"),
            RuntimeError::MalwareRejected { app_hash_hex } => {
                write!(f, "trusted node refused known-malware image {app_hash_hex}")
            }
            RuntimeError::OffloadPingPong { func, pc } => write!(
                f,
                "offload ping-pong at {func}:{pc}: tainted data passed to a native \
                 runnable on neither endpoint"
            ),
            RuntimeError::FuelExhausted => write!(f, "instruction budget exhausted"),
            RuntimeError::GuestKilled { reason } => {
                write!(f, "guard killed guest: {reason} budget exhausted")
            }
            RuntimeError::CheckpointCorrupt { reason } => {
                write!(f, "migration checkpoint failed to rehydrate: {reason}")
            }
            RuntimeError::NodeDraining { node, at_ns } => write!(
                f,
                "node {node} drained mid-offload at {at_ns}ns; session checkpointed for migration"
            ),
            RuntimeError::MissingInput(k) => write!(f, "no scripted input for key '{k}'"),
            RuntimeError::Offline => {
                write!(f, "device is offline; cor access requires the trusted node")
            }
            RuntimeError::CrossNodeCor { node_a, node_b } => write!(
                f,
                "cor labels span trusted nodes {node_a} and {node_b}; a derived value \
                 cannot mix trust domains"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<VmError> for RuntimeError {
    fn from(e: VmError) -> Self {
        RuntimeError::Vm(e)
    }
}
impl From<DsmError> for RuntimeError {
    fn from(e: DsmError) -> Self {
        RuntimeError::Dsm(e)
    }
}
impl From<NetError> for RuntimeError {
    fn from(e: NetError) -> Self {
        RuntimeError::Net(e)
    }
}
impl From<TlsError> for RuntimeError {
    fn from(e: TlsError) -> Self {
        RuntimeError::Tls(e)
    }
}
