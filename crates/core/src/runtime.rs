//! The TinMan runtime event loop.
//!
//! [`TinmanRuntime::run_app`] drives one application run across the client
//! and the trusted node, reproducing the paper's §3 mechanisms end to end:
//! on-demand offloading on taint triggers, DSM migration with cor
//! tokenization, SSL session injection and TCP payload replacement for
//! cor-bearing sends, migrate-back on non-offloadable natives or taint
//! idleness, lock-transfer syncs, and the §3.4 policy enforcement.
//!
//! The same runtime also runs the paper's two comparison baselines
//! ([`Mode::Stock`] and [`Mode::FullTaint`]), which keeps every measured
//! difference attributable to the mechanism rather than the harness.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tinman_cor::{CorStore, PolicyDecision};
use tinman_dsm::{DsmEngine, DsmError, DsmStats, SyncBudget, SyncCause};
use tinman_guard::{GuardPolicy, KillReason, ScrubReceipt};
use tinman_net::{HostId, MarkFilter, NetWorld, Traffic};
use tinman_obs::{MetricsRegistry, TraceEvent, TraceHandle};
use tinman_sim::{Breakdown, MicroJoules, RetryPolicy, SimClock, SimDuration, SimTime, SplitMix64};
use tinman_taint::TaintEngine;
use tinman_tls::{TlsConfig, TINMAN_MARK};
use tinman_vm::machine::LockSite;
use tinman_vm::{
    AppImage, CompiledImage, ExecConfig, ExecEvent, ExecTier, Machine, TierTelemetry, Value,
    VmError,
};

use crate::device::ClientDevice;
use crate::error::RuntimeError;
use crate::hosts::{ClientHost, ClientMode, NodeHost};
use crate::materialize::{ClientMaterializer, NodeMaterializer};
use crate::node::TrustedNode;
use crate::scan::{scan_device, ResidueReport};

/// Which system configuration a run uses (the paper's comparison set).
#[derive(Clone, Debug)]
pub enum Mode {
    /// TinMan: asymmetric client tainting + offloading; the user selects
    /// placeholders.
    TinMan,
    /// Stock Android: no tainting, no trusted node; the user types secrets
    /// (description -> plaintext).
    Stock(HashMap<String, String>),
    /// TaintDroid-style full tainting on the client, with TinMan
    /// offloading — the middle bar of Figure 13. Behaviourally the full
    /// engine never raises client triggers, so cor-touching apps cannot run
    /// in this mode; it exists for the overhead comparison on taint-free
    /// workloads.
    FullTaint,
}

/// Tunables for a runtime instance.
#[derive(Clone, Debug)]
pub struct TinmanConfig {
    /// Migrate back after this many node instructions without touching
    /// taint (§3.1 case 1).
    pub taint_idle_limit: u64,
    /// Per-segment instruction budget (runaway guard).
    pub fuel: u64,
    /// Toy-PKI pre-shared secret for the TLS handshakes.
    pub psk: [u8; 32],
    /// Seed for all runtime randomness (placeholders, nonces).
    pub seed: u64,
    /// Whether the device currently has connectivity (§5.4).
    pub online: bool,
    /// Fixed coordination cost of one SSL/TCP offload (arming the packet
    /// filter, netfilter queue handling, SSL-library synchronization in
    /// the prototype). Not derivable from first principles; calibrated to
    /// the paper's measured ~1.2 s (Wi-Fi) / ~1.6 s (3G) SSL/TCP overhead
    /// together with `ssl_coordination_rtts`.
    pub ssl_coordination_fixed: SimDuration,
    /// Client<->node round trips in the SSL/TCP offload control protocol
    /// (state export ack, filter arming, progress sync).
    pub ssl_coordination_rtts: u32,
    /// §3.5's *selective tainting*: when set, only app images whose hash
    /// is listed run with the asymmetric taint engine; every other app
    /// runs untracked (zero overhead — and zero cor protection: a
    /// non-critical app that selects a cor will send the placeholder
    /// verbatim and fail, by design). `None` = taint everything.
    pub critical_apps: Option<Vec<[u8; 32]>>,
    /// Per-session resource governance for node-side execution. `None`
    /// (the default) leaves every run byte-identical to the unguarded
    /// runtime; `Some` arms budget enforcement, watchdog deadline, and
    /// scrub-on-kill teardown for the guest.
    pub guard: Option<GuardPolicy>,
    /// Execution tier for node segments. [`ExecTier::Blocks`] runs warm
    /// guest code through the block-compiled tier (bit-identical to the
    /// interpreter by the `tinman-vm` tier contract, so reports and
    /// events do not change — only host wall time). The compiled image is
    /// cached per app hash, mirroring the dex warm-cache.
    pub node_tier: ExecTier,
    /// Build the world as a routed internet instead of a flat link: the
    /// phone lives on an access subnet behind a NAT gateway, the trusted
    /// node on its own subnet, servers on the public core, joined by
    /// routers. `false` (the default) keeps the world byte-identical to
    /// the flat original.
    pub topology: bool,
    /// Bounded re-sync attempts after a DSM synchronization times out
    /// mid-session (a mobility handoff blackout or node outage). `0`
    /// (the default) surfaces the timeout immediately, exactly as
    /// before; with retries armed, exhaustion fails closed as a guest
    /// kill (`KillReason::Resync`) with the node heap scrubbed.
    pub resync_retries: u32,
    /// First re-sync backoff; doubles each attempt.
    pub resync_backoff: SimDuration,
}

impl Default for TinmanConfig {
    fn default() -> Self {
        TinmanConfig {
            taint_idle_limit: 2_000,
            fuel: 50_000_000,
            psk: [0x42; 32],
            seed: 12345,
            online: true,
            ssl_coordination_fixed: SimDuration::from_millis(680),
            ssl_coordination_rtts: 2,
            critical_apps: None,
            guard: None,
            node_tier: ExecTier::Interpret,
            topology: false,
            resync_retries: 0,
            resync_backoff: SimDuration::from_millis(500),
        }
    }
}

/// A DSM wire exchange between the client and the active node, named so
/// the re-sync retry loop can replay it verbatim after a timeout.
enum DsmOp {
    /// Full migrate client → node (offload trigger).
    MigrateToNode,
    /// Full migrate node → client with the given cause.
    MigrateToClient(SyncCause),
    /// Lock-ownership transfer: the node holds the monitor the client
    /// is blocked on.
    LockFromNode,
    /// Lock-ownership transfer: a client background thread holds the
    /// monitor the offloaded code is blocked on.
    LockFromClient,
}

/// A serialized suspension of an in-flight offloaded thread, taken at a
/// DSM sync point when the serving node drains (planned membership change
/// or a dying region).
///
/// The checkpoint is the unit of **live session migration**: the source
/// node serializes its guest machine and taint engine, scrubs its own
/// heap (carrying the proof as a [`ScrubReceipt`]), and the scheduler
/// ships these bytes to an attested peer through the sealed replica
/// channel. The target proves fidelity by deserializing the same bytes
/// ([`NodeCheckpoint::restore`]) before resuming; the checkpoint instant
/// is the replay credit charged against the session's penalty deadline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeCheckpoint {
    /// The node index the guest drained from.
    pub node: usize,
    /// Simulated instant of the checkpoint, nanoseconds since session
    /// start.
    pub taken_at_ns: u64,
    /// The suspended guest machine (heap, frames, locks, counters), as
    /// canonical JSON.
    pub machine_json: String,
    /// The node-side taint engine at the sync point, as canonical JSON.
    pub engine_json: String,
    /// Proof the source heap was scrubbed before the state left the node.
    pub scrub: ScrubReceipt,
}

impl NodeCheckpoint {
    /// Bytes this checkpoint ships over the sealed replica channel.
    pub fn wire_bytes(&self) -> u64 {
        (self.machine_json.len() + self.engine_json.len()) as u64
    }

    /// The checkpoint instant on the session timeline.
    pub fn taken_at(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(self.taken_at_ns)
    }

    /// Rehydrates the suspended guest on the migration target — the
    /// round-trip that proves the serialized state is faithful. An error
    /// means the checkpoint cannot be trusted and the migration must be
    /// abandoned (fail closed), never resumed from guesswork.
    pub fn restore(&self) -> Result<(Machine, TaintEngine), RuntimeError> {
        let machine: Machine = serde_json::from_str(&self.machine_json)
            .map_err(|e| RuntimeError::CheckpointCorrupt { reason: e.to_string() })?;
        let engine: TaintEngine = serde_json::from_str(&self.engine_json)
            .map_err(|e| RuntimeError::CheckpointCorrupt { reason: e.to_string() })?;
        Ok((machine, engine))
    }
}

/// Everything measured about one app run — the raw material for Figures
/// 14-16 and Table 3.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The program's result value.
    pub result: Value,
    /// End-to-end simulated latency.
    pub latency: SimDuration,
    /// Stacked latency attribution: `exec.client`, `exec.node`, `dsm`,
    /// `ssl_tcp`, `net.server`, `warmup`.
    pub breakdown: Breakdown,
    /// DSM statistics (sync count, init/dirty bytes).
    pub dsm: DsmStats,
    /// Method invocations executed on the client.
    pub client_methods: u64,
    /// Method invocations executed on the trusted node (Table 3's
    /// "Off. Code").
    pub node_methods: u64,
    /// Times execution moved client -> node.
    pub offloads: u64,
    /// Client battery energy consumed by this run.
    pub energy: MicroJoules,
    /// Client radio traffic during the run.
    pub traffic: Traffic,
}

impl RunReport {
    /// Fraction of method invocations that ran on the trusted node.
    pub fn offloaded_fraction(&self) -> f64 {
        let total = self.client_methods + self.node_methods;
        if total == 0 {
            return 0.0;
        }
        self.node_methods as f64 / total as f64
    }
}

/// The composed system: world + client + node + DSM engine.
pub struct TinmanRuntime {
    /// The simulated internet (servers are installed here by the caller).
    pub world: NetWorld,
    /// The phone.
    pub client: ClientDevice,
    /// The primary trusted node.
    pub node: TrustedNode,
    /// The offloading engine for the primary node.
    pub dsm: DsmEngine,
    /// Additional trusted nodes (§5.3: different nodes for different
    /// passwords). Added with [`TinmanRuntime::add_trusted_node`]; cors are
    /// routed to the node whose store owns their label range.
    pub extra_nodes: Vec<TrustedNode>,
    extra_dsms: Vec<DsmEngine>,
    /// Which host the runtime last pointed the mark filter at. The filter
    /// is only reinstalled when the target node changes, so externally
    /// installed filters (tests, custom deployments) are not clobbered.
    filter_target: HostId,
    config: TinmanConfig,
    rng: SplitMix64,
    clock: SimClock,
    trace: TraceHandle,
    trace_track: u64,
    metrics: MetricsRegistry,
    /// DSM sync-fault window installed by the chaos layer. Like tracing,
    /// it must be re-applied to the engines each run (engines are rebuilt
    /// per run).
    dsm_fault: Option<tinman_dsm::SyncFault>,
    /// Block-tier compilation cache, keyed by app-image hash (one app is
    /// warm at a time, like the node's dex cache).
    compiled_cache: Option<([u8; 32], CompiledImage)>,
    /// Cumulative block-tier counters across every node segment.
    tier_telemetry: TierTelemetry,
    /// Membership drain trigger: when set, the first node-segment sync
    /// point at or after this instant checkpoints the guest and drains
    /// the node instead of running the segment.
    drain_at: Option<SimTime>,
    /// Session secrets a drain-time scrub is verified against.
    drain_probes: Vec<String>,
    /// The checkpoint the last drain produced, awaiting pickup by the
    /// scheduler's migration path.
    node_checkpoint: Option<NodeCheckpoint>,
}

impl TinmanRuntime {
    /// Builds a runtime: a world containing the phone (with the given
    /// radio link) and the trusted node, wired with the egress mark filter.
    /// The caller installs web servers on `world` afterwards.
    pub fn new(store: CorStore, link: tinman_sim::LinkProfile, config: TinmanConfig) -> Self {
        let clock = SimClock::new();
        let mut world = NetWorld::new(clock.clone());
        let phone_host = world.add_host("phone", link.clone());
        let node_host = world.add_host("trusted-node", tinman_sim::LinkProfile::ethernet());
        if config.topology {
            // The routed internet the paper never tested: the phone on an
            // access subnet behind a NAT gateway, the trusted node on its
            // own subnet, web servers on the public core (subnet 0, where
            // callers install them), all joined by routers.
            world.enable_topology(tinman_net::TopologyConfig::default());
            world.assign_subnet(phone_host, 1);
            world.assign_subnet(node_host, 2);
            world.add_router("r-access", &[1, 0], &[]);
            world.add_router("r-core", &[0, 2], &[]);
            world.enable_nat(1);
        }
        // The iptables analogue: divert TinMan-marked packets to the node.
        world.set_egress_filter(
            phone_host,
            Box::new(MarkFilter { mark: TINMAN_MARK, to: node_host }),
        );
        let directory = store.client_directory();
        let client = ClientDevice::new(
            phone_host,
            "phone-1",
            TaintEngine::asymmetric(),
            directory,
            TlsConfig::tinman_client(config.psk),
            link,
        );
        let node = TrustedNode::new(node_host, store);
        let rng = SplitMix64::new(config.seed);
        TinmanRuntime {
            world,
            client,
            node,
            dsm: DsmEngine::new(),
            extra_nodes: Vec::new(),
            extra_dsms: Vec::new(),
            filter_target: node_host,
            config,
            rng,
            clock,
            trace: TraceHandle::noop(),
            trace_track: 0,
            metrics: MetricsRegistry::new(),
            dsm_fault: None,
            compiled_cache: None,
            tier_telemetry: TierTelemetry::default(),
            drain_at: None,
            drain_probes: Vec::new(),
            node_checkpoint: None,
        }
    }

    /// Selects the execution tier for node segments. With
    /// [`ExecTier::Blocks`], warm guest code runs through the
    /// block-compiled tier; results are bit-identical to the interpreter.
    pub fn set_node_tier(&mut self, tier: ExecTier) {
        self.config.node_tier = tier;
    }

    /// Cumulative block-tier counters across every node segment run so
    /// far (all zero under [`ExecTier::Interpret`]).
    pub fn tier_telemetry(&self) -> TierTelemetry {
        self.tier_telemetry
    }

    /// Wires the runtime (and its world) to a trace sink. Every event the
    /// runtime emits — offload triggers, DSM syncs, SSL injection, payload
    /// replacement, migrate-back, plus the `run_app`/`offload` spans —
    /// lands on `track` (one track per device session in a fleet).
    pub fn set_trace(&mut self, trace: TraceHandle, track: u64) {
        self.world.set_trace(trace.clone(), track);
        self.trace = trace;
        self.trace_track = track;
    }

    /// Arms the per-session guard: node-side execution runs under
    /// `policy`'s budgets, and any exhaustion becomes a deterministic
    /// [`RuntimeError::GuestKilled`] with the node heap scrubbed.
    pub fn set_guard(&mut self, policy: GuardPolicy) {
        self.config.guard = Some(policy);
    }

    /// Installs a DSM sync-fault window (chaos-injected node outage).
    /// Synchronizations attempted while the session clock is inside a
    /// window fail with [`tinman_dsm::DsmError::SyncTimeout`], which
    /// surfaces from [`TinmanRuntime::run_app`] as [`RuntimeError::Dsm`].
    /// Installing a fault (even an inert one) also turns on checkpoint
    /// recording — see [`TinmanRuntime::dsm_checkpoint`].
    pub fn set_dsm_fault(&mut self, fault: tinman_dsm::SyncFault) {
        self.dsm_fault = Some(fault);
    }

    /// The instant of the primary engine's last completed synchronization —
    /// the checkpoint a chaos replay resumes from. `None` before the first
    /// sync or when no fault has been installed.
    pub fn dsm_checkpoint(&self) -> Option<tinman_sim::SimTime> {
        self.dsm.last_sync_at()
    }

    /// Arms the membership drain trigger: the first node-segment sync
    /// point at or after `at` serializes the guest into a
    /// [`NodeCheckpoint`], scrubs the source heap (verified against
    /// `probes` — the session's secrets), and surfaces
    /// [`RuntimeError::NodeDraining`] so the scheduler can migrate the
    /// session to a peer. A session that completes before `at` never
    /// observes the trigger.
    pub fn set_drain_at(&mut self, at: SimTime, probes: Vec<String>) {
        self.drain_at = Some(at);
        self.drain_probes = probes;
    }

    /// Takes the checkpoint the last drain produced, if any. The
    /// scheduler calls this after a [`RuntimeError::NodeDraining`] run to
    /// ship the suspended guest to the migration target.
    pub fn take_node_checkpoint(&mut self) -> Option<NodeCheckpoint> {
        self.node_checkpoint.take()
    }

    /// Checkpoints the guest on node `active` and drains it: serializes
    /// machine + taint engine, scrubs the source heap and stack, verifies
    /// the scrub against the drain probes, stores the checkpoint for
    /// pickup, and returns the [`RuntimeError::NodeDraining`] the run
    /// surfaces. Unlike [`Self::kill_guest`] the machine is not marked
    /// faulted — the serialized guest is healthy and resumable; only this
    /// node's copy of it is destroyed.
    fn checkpoint_and_drain(&mut self, active: usize) -> RuntimeError {
        let at_ns = self.clock.now().since(SimTime::ZERO).as_nanos();
        let probes = std::mem::take(&mut self.drain_probes);
        let node = if active == 0 { &mut self.node } else { &mut self.extra_nodes[active - 1] };
        let machine_json = serde_json::to_string(&node.machine).unwrap_or_default();
        let engine_json = serde_json::to_string(&node.engine).unwrap_or_default();
        node.machine.heap.scrub();
        node.machine.frames.clear();
        let residue: u64 = probes.iter().map(|p| node.machine.scan_residue(p).len() as u64).sum();
        let scrub = ScrubReceipt { node: active, at_ns, residue };
        self.metrics.incr("fleet.region.drains");
        self.node_checkpoint = Some(NodeCheckpoint {
            node: active,
            taken_at_ns: at_ns,
            machine_json,
            engine_json,
            scrub,
        });
        self.drain_at = None;
        RuntimeError::NodeDraining { node: active, at_ns }
    }

    /// The runtime's metrics registry. [`RunReport::offloads`] is read
    /// from the `runtime.offloads` counter here rather than from a
    /// hand-threaded local.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Replaces the metrics registry. Each runtime reads per-run counter
    /// *deltas* out of its registry, so give concurrent runtimes their own
    /// registries (the default) — sharing one across threads would mix
    /// their deltas.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Adds another trusted node owning `store`'s label range (§5.3 —
    /// "deploy different trusted nodes for different passwords to avoid
    /// putting all eggs in one basket"). The store's labels must be
    /// disjoint from every existing node's (use
    /// [`tinman_cor::CorStore::with_label_range`]). Returns the node's
    /// index (0 is the primary).
    ///
    /// The client's directory gains the new node's placeholders; each
    /// offload episode is routed to the node owning the touched cor, and a
    /// single derived value may not mix cors from different nodes.
    pub fn add_trusted_node(&mut self, name: &str, store: CorStore) -> usize {
        let host = self.world.add_host(name, tinman_sim::LinkProfile::ethernet());
        for (id, desc) in store.client_directory().listing() {
            let ph = store.placeholder(id).expect("has placeholder").to_owned();
            self.client.directory.insert(id, desc, &ph);
        }
        self.extra_nodes.push(TrustedNode::new(host, store));
        self.extra_dsms.push(DsmEngine::new());
        self.extra_nodes.len()
    }

    /// The index of the node whose store owns every label in `labels`, or
    /// an error if the labels span nodes (a derived value cannot be split
    /// across trust domains).
    fn route_labels(&self, labels: tinman_taint::TaintSet) -> Result<usize, RuntimeError> {
        let mut chosen: Option<usize> = None;
        for l in labels.iter() {
            let id = tinman_cor::CorId::from_label(l);
            let idx = if self.node.store.owns_label(id) {
                0
            } else if let Some(i) = self.extra_nodes.iter().position(|n| n.store.owns_label(id)) {
                i + 1
            } else {
                0 // unknown labels default to the primary node
            };
            match chosen {
                None => chosen = Some(idx),
                Some(c) if c == idx => {}
                Some(c) => {
                    return Err(RuntimeError::CrossNodeCor { node_a: c, node_b: idx });
                }
            }
        }
        Ok(chosen.unwrap_or(0))
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The phone's host id.
    pub fn phone_host(&self) -> HostId {
        self.client.host
    }

    /// The trusted node's host id.
    pub fn node_host(&self) -> HostId {
        self.node.host
    }

    /// The server-side TLS config matching this runtime's PSK.
    pub fn server_tls_config(&self) -> TlsConfig {
        TlsConfig::permissive(self.config.psk)
    }

    /// Scans the device for plaintext residue (§5.1's attacker).
    pub fn scan_residue(&self, needle: &str) -> ResidueReport {
        scan_device(&self.client, &self.world, needle)
    }

    /// Scans every trusted node's heap for plaintext residue — the §5.1
    /// memory-dump attacker pointed at the node, used to verify the
    /// guard's scrub-on-kill teardown left nothing behind.
    pub fn scan_node_residue(&self, needle: &str) -> Vec<tinman_vm::ObjId> {
        let mut hits = self.node.machine.scan_residue(needle);
        for n in &self.extra_nodes {
            hits.extend(n.machine.scan_residue(needle));
        }
        hits
    }

    /// Kills the guest on node `active`: scrubs the node heap (no cor
    /// byte survives for a §5.1 dump to find), tears down its stack,
    /// marks the machine faulted, bumps the `guard.*` counters, emits a
    /// `guest_killed` event, and returns the fail-closed error the run
    /// surfaces. A kill is terminal for the session — after exhaustion
    /// nothing on the node can be trusted enough to migrate back.
    fn kill_guest(&mut self, active: usize, reason: KillReason) -> RuntimeError {
        let node = if active == 0 { &mut self.node } else { &mut self.extra_nodes[active - 1] };
        node.machine.heap.scrub();
        node.machine.frames.clear();
        node.machine.status = tinman_vm::MachineStatus::Faulted;
        self.metrics.incr("guard.kills");
        self.metrics.incr(match reason.column() {
            "fuel" => "guard.fuel_exhausted",
            "heap" => "guard.heap_exhausted",
            "depth" => "guard.depth_exhausted",
            "dsm" => "guard.dsm_exhausted",
            _ => "guard.deadline_exhausted",
        });
        if self.trace.is_enabled() {
            self.trace.emit_on(
                self.trace_track,
                self.clock.now(),
                TraceEvent::GuestKilled {
                    session: self.trace_track,
                    node: active as u64,
                    reason: reason.as_str(),
                },
            );
        }
        RuntimeError::GuestKilled { reason }
    }

    /// Maps a DSM result through the guard: budget exhaustion becomes a
    /// kill of the active node's guest, everything else passes through.
    fn guard_dsm<T>(&mut self, active: usize, r: Result<T, DsmError>) -> Result<T, RuntimeError> {
        match r {
            Ok(v) => Ok(v),
            Err(DsmError::SyncBudgetExhausted { .. }) => {
                Err(self.kill_guest(active, KillReason::DsmSyncs))
            }
            Err(DsmError::SyncBytesExhausted { .. }) => {
                Err(self.kill_guest(active, KillReason::DsmBytes))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Performs one DSM wire exchange between the client and the active
    /// node. Expressed as data (see [`DsmOp`]) so [`Self::dsm_exchange`]
    /// can replay the identical exchange during bounded re-sync retries.
    fn run_dsm_op(&mut self, active: usize, op: &DsmOp) -> Result<u64, DsmError> {
        let node = if active == 0 { &mut self.node } else { &mut self.extra_nodes[active - 1] };
        let dsm = if active == 0 { &mut self.dsm } else { &mut self.extra_dsms[active - 1] };
        match op {
            DsmOp::MigrateToNode => dsm
                .migrate(
                    &mut self.client.machine,
                    &mut node.machine,
                    LockSite::Client,
                    SyncCause::OffloadTrigger,
                    &mut ClientMaterializer { directory: &mut self.client.directory },
                    &mut NodeMaterializer { store: &mut node.store },
                )
                .map(|p| p.wire_bytes()),
            DsmOp::MigrateToClient(cause) => dsm
                .migrate(
                    &mut node.machine,
                    &mut self.client.machine,
                    LockSite::TrustedNode,
                    *cause,
                    &mut NodeMaterializer { store: &mut node.store },
                    &mut ClientMaterializer { directory: &mut self.client.directory },
                )
                .map(|p| p.wire_bytes()),
            DsmOp::LockFromNode => dsm.lock_transfer(
                &mut self.client.machine,
                &mut node.machine,
                LockSite::TrustedNode,
                &mut ClientMaterializer { directory: &mut self.client.directory },
                &mut NodeMaterializer { store: &mut node.store },
            ),
            DsmOp::LockFromClient => dsm.lock_transfer(
                &mut node.machine,
                &mut self.client.machine,
                LockSite::Client,
                &mut NodeMaterializer { store: &mut node.store },
                &mut ClientMaterializer { directory: &mut self.client.directory },
            ),
        }
    }

    /// A DSM exchange with bounded re-sync. A `SyncTimeout` — the node
    /// unreachable mid-session because of a mobility handoff blackout or
    /// a chaos outage — is retried up to `resync_retries` times with
    /// doubling backoff (the shared [`RetryPolicy`] exponential curve,
    /// unjittered — byte-identical to the hand-rolled doubling loop this
    /// replaced). Each wait lets due network events (handoffs, NAT
    /// flushes) apply and refreshes the client radio, so the retry
    /// rides whatever link the phone holds afterwards; when the wired
    /// fault window is known to lift later than the backoff, the wait
    /// jumps to the lift instead of burning attempts inside the window.
    /// Exhaustion fails closed: the guest is killed and the node heap
    /// scrubbed ([`KillReason::Resync`]). With `resync_retries == 0`
    /// (the default) this is byte-identical to the unretried exchange.
    fn dsm_exchange(
        &mut self,
        active: usize,
        op: DsmOp,
        breakdown: &mut Breakdown,
    ) -> Result<u64, RuntimeError> {
        let mut r = self.run_dsm_op(active, &op);
        if matches!(r, Err(DsmError::SyncTimeout { .. })) && self.config.resync_retries > 0 {
            let policy = RetryPolicy::exponential(self.config.resync_backoff, 63, None);
            for attempt in 0..self.config.resync_retries {
                let t_wait = self.clock.now();
                let mut until = t_wait + policy.delay(attempt as u64);
                let dsm = if active == 0 { &self.dsm } else { &self.extra_dsms[active - 1] };
                if let Some(clear) = dsm.fault_clears_at() {
                    // An open-ended crash never clears; keep the plain
                    // backoff and let exhaustion fail the session closed.
                    if clear > until && clear < tinman_sim::SimTime::MAX {
                        until = clear;
                    }
                }
                self.clock.advance_to(until);
                breakdown.charge("dsm", self.clock.now().since(t_wait));
                self.world.poll_network();
                if let Ok(link) = self.world.host_link(self.client.host) {
                    self.client.link = link;
                }
                self.metrics.incr("net.handoff.resync_retries");
                r = self.run_dsm_op(active, &op);
                if !matches!(r, Err(DsmError::SyncTimeout { .. })) {
                    break;
                }
            }
            if matches!(r, Err(DsmError::SyncTimeout { .. })) {
                return Err(self.kill_guest(active, KillReason::Resync));
            }
        }
        self.guard_dsm(active, r)
    }

    /// Charges ambient power (display + idle + radio-active) for a period —
    /// used by the battery benchmarks between and during workloads.
    pub fn charge_ambient(&mut self, d: SimDuration, display_on: bool) {
        let idle = MicroJoules::from_power(self.client.profile.idle_power_mw, d);
        self.client.energy.idle += idle;
        self.client.battery.drain(idle);
        if display_on {
            let disp = MicroJoules::from_power(self.client.profile.display_power_mw, d);
            self.client.energy.display += disp;
            self.client.battery.drain(disp);
        }
    }

    fn charge_radio(&mut self, before: Traffic) -> Result<(), RuntimeError> {
        let after = self.world.traffic(self.client.host)?;
        let tx = self.client.link.tx_energy(after.tx_bytes - before.tx_bytes);
        let rx = self.client.link.rx_energy(after.rx_bytes - before.rx_bytes);
        self.client.energy.radio_tx += tx;
        self.client.energy.radio_rx += rx;
        self.client.battery.drain(tx);
        self.client.battery.drain(rx);
        Ok(())
    }

    fn charge_client_cpu(&mut self, cycles: u64, breakdown: &mut Breakdown) {
        let dt = self.client.profile.exec_time(cycles);
        self.clock.advance(dt);
        breakdown.charge("exec.client", dt);
        let e = self.client.profile.exec_energy(cycles);
        self.client.energy.cpu += e;
        self.client.battery.drain(e);
    }

    fn charge_node_cpu(&mut self, cycles: u64, breakdown: &mut Breakdown) {
        let dt = self.node.profile.exec_time(cycles);
        self.clock.advance(dt);
        breakdown.charge("exec.node", dt);
    }

    /// Ships a migration packet over the client's radio and charges the
    /// clock/breakdown/battery accordingly.
    fn charge_migration(&mut self, bytes: u64, breakdown: &mut Breakdown) {
        let dt = self.client.link.transfer_time(bytes);
        self.clock.advance(dt);
        breakdown.charge("dsm", dt);
    }

    /// Runs `image` to completion under `mode` with the given scripted
    /// inputs. Returns the run report; state relevant to later runs (warm
    /// caches, battery, audit log) persists on the runtime.
    pub fn run_app(
        &mut self,
        image: &AppImage,
        mode: Mode,
        inputs: &HashMap<String, String>,
    ) -> Result<RunReport, RuntimeError> {
        let app_hash = image.hash();
        let t_run_start = self.clock.now();
        let traffic_start = self.world.traffic(self.client.host)?;
        let topo_start = self.world.topology_stats();
        let mut breakdown = Breakdown::new();

        // Fresh machines; the client engine depends on the mode (and on
        // the selective-tainting list, §3.5).
        let selective_off =
            self.config.critical_apps.as_ref().is_some_and(|list| !list.contains(&app_hash));
        let (client_engine, client_mode, tls_config) = match &mode {
            Mode::TinMan => (
                if selective_off { TaintEngine::none() } else { TaintEngine::asymmetric() },
                ClientMode::TinMan,
                TlsConfig::tinman_client(self.config.psk),
            ),
            Mode::Stock(secrets) => (
                TaintEngine::none(),
                ClientMode::Stock(secrets.clone()),
                TlsConfig::permissive(self.config.psk),
            ),
            Mode::FullTaint => {
                (TaintEngine::full(), ClientMode::TinMan, TlsConfig::tinman_client(self.config.psk))
            }
        };
        self.client.reset_for_run(client_engine);
        self.client.tls_config = tls_config;
        self.node.reset_for_run();
        self.dsm = DsmEngine::new();
        for n in &mut self.extra_nodes {
            n.reset_for_run();
        }
        for d in &mut self.extra_dsms {
            *d = DsmEngine::new();
        }
        // Engines are rebuilt per run, so re-wire them to the trace sink.
        if self.trace.is_enabled() {
            self.dsm.set_trace(self.trace.clone(), self.clock.clone(), self.trace_track);
            for d in &mut self.extra_dsms {
                d.set_trace(self.trace.clone(), self.clock.clone(), self.trace_track);
            }
        }
        // ... and to the chaos fault window, which also enables
        // checkpoint recording.
        if let Some(fault) = &self.dsm_fault {
            self.dsm.set_fault(fault.clone(), self.clock.clone());
            for d in &mut self.extra_dsms {
                d.set_fault(fault.clone(), self.clock.clone());
            }
        }
        // ... and to the guard's sync budget, so a SyncFlood guest is
        // refused by the engine itself before the flood ships bytes.
        if let Some(g) = &self.config.guard {
            let budget = SyncBudget { max_syncs: g.max_dsm_syncs, max_bytes: g.max_dsm_bytes };
            self.dsm.set_budget(budget);
            for d in &mut self.extra_dsms {
                d.set_budget(budget);
            }
        }
        let _run_span = self.trace.span_guard(self.trace_track, &self.clock, "run_app");
        // Which trusted node the current offload episode targets.
        let mut active: usize = 0;

        let mut last_tls_error: Option<tinman_tls::TlsError> = None;
        let mut last_denial: Option<PolicyDecision> = None;
        // Offloads are counted in the metrics registry; the report reads
        // the delta back at the end of the run.
        let offloads_start = self.metrics.get("runtime.offloads");
        // Whether an "offload" span is currently open on our track.
        let mut offload_span_open = false;
        // Ping-pong detector: (func name, pc, client instrs at trigger,
        // consecutive no-progress count). A loop may legitimately trigger
        // at the same pc many times; the pathological case is re-triggering
        // with (almost) no instructions retired in between — tainted data
        // handed to a native neither endpoint can run.
        let mut last_trigger: Option<(String, usize, u64, u32)> = None;

        // Baseline cycle counters for attribution.
        let mut client_cycles_seen = 0u64;
        let mut node_cycles_seen = 0u64;

        let result = 'outer: loop {
            // ---- client segment ----
            // Apply any due network events first (mobility handoffs, NAT
            // flushes): the radio the guest runs on is the post-event one.
            // A no-op in worlds with nothing scheduled.
            self.world.poll_network();
            if let Ok(link) = self.world.host_link(self.client.host) {
                self.client.link = link;
            }
            let t0 = self.clock.now();
            let event = {
                let phone_host = self.client.host;
                let ClientDevice {
                    machine,
                    engine,
                    conns,
                    directory,
                    tls_config,
                    disk,
                    device_log,
                    ..
                } = &mut self.client;
                let mut next_handle: i64 = conns.keys().max().copied().unwrap_or(0) + 1;
                let mut host = ClientHost {
                    world: &mut self.world,
                    host: phone_host,
                    conns,
                    next_handle: &mut next_handle,
                    directory,
                    mode: match &client_mode {
                        ClientMode::TinMan => ClientMode::TinMan,
                        ClientMode::Stock(s) => ClientMode::Stock(s.clone()),
                    },
                    tls_config,
                    inputs,
                    device_log,
                    disk,
                    rng: &mut self.rng,
                    last_tls_error: &mut last_tls_error,
                };
                tinman_vm::interp::run(
                    machine,
                    image,
                    &mut host,
                    engine,
                    ExecConfig::client().with_fuel(self.config.fuel),
                )?
            };
            // Attribute the segment: the world advanced the clock for
            // network/server time; CPU time is charged from cycles.
            let net_dt = self.clock.now().since(t0);
            breakdown.charge("net.server", net_dt);
            let cycles = self.client.machine.stats.cycles - client_cycles_seen;
            self.charge_client_cpu(cycles, &mut breakdown);
            client_cycles_seen = self.client.machine.stats.cycles;

            match event {
                ExecEvent::Halted(v) => break 'outer v,
                ExecEvent::OutOfFuel => return Err(RuntimeError::FuelExhausted),
                ExecEvent::LockRemote(_) => {
                    // The node endpoint holds the monitor: exchange state
                    // and transfer ownership to the client.
                    let bytes = self.dsm_exchange(active, DsmOp::LockFromNode, &mut breakdown)?;
                    self.charge_migration(bytes, &mut breakdown);
                    continue;
                }
                ExecEvent::MigrateBack { .. } | ExecEvent::TaintIdle => {
                    // Cannot happen on the client (no idle limit, and the
                    // client host never returns MigrateBack).
                    unreachable!("client run cannot yield a node-side event")
                }
                ExecEvent::OffloadTrigger { labels, .. } => {
                    if !self.config.online {
                        return Err(RuntimeError::Offline);
                    }
                    // Route the episode to the node owning the touched cor
                    // and point the packet filter at it (the client knows
                    // which trusted node it is talking to).
                    active = self.route_labels(labels)?;
                    let active_host = if active == 0 {
                        self.node.host
                    } else {
                        self.extra_nodes[active - 1].host
                    };
                    if active_host != self.filter_target {
                        self.world.set_egress_filter(
                            self.client.host,
                            Box::new(MarkFilter { mark: TINMAN_MARK, to: active_host }),
                        );
                        self.filter_target = active_host;
                    }
                    // Ping-pong detection (same pc, no progress).
                    let frame = self.client.machine.top_frame().expect("suspended frame");
                    let key = (frame.func_name.clone(), frame.pc);
                    let instrs_now = self.client.machine.stats.instrs;
                    if self.trace.is_enabled() {
                        self.trace.emit_on(
                            self.trace_track,
                            self.clock.now(),
                            TraceEvent::OffloadTrigger {
                                labels: labels.iter().map(|l| l.id()).collect(),
                                func: key.0.clone(),
                                pc: key.1 as u64,
                            },
                        );
                        self.trace.span_start(self.trace_track, self.clock.now(), "offload");
                        offload_span_open = true;
                    }
                    match &mut last_trigger {
                        Some((f, pc, instrs, n))
                            if *f == key.0
                                && *pc == key.1
                                && instrs_now.saturating_sub(*instrs) <= 2 =>
                        {
                            *n += 1;
                            *instrs = instrs_now;
                            if *n >= 3 {
                                return Err(RuntimeError::OffloadPingPong {
                                    func: key.0,
                                    pc: key.1,
                                });
                            }
                        }
                        _ => last_trigger = Some((key.0, key.1, instrs_now, 1)),
                    }

                    // §3.4: the node refuses known malware outright.
                    let node = if active == 0 {
                        &mut self.node
                    } else {
                        &mut self.extra_nodes[active - 1]
                    };
                    if node.policy.malware_db().contains(&app_hash) {
                        return Err(RuntimeError::MalwareRejected {
                            app_hash_hex: image.hash_hex(),
                        });
                    }
                    // One-time dex upload for cold apps.
                    if !node.is_warm(&app_hash) {
                        let bytes = image.image_bytes();
                        let dt = self.client.link.transfer_time(bytes);
                        self.clock.advance(dt);
                        breakdown.charge("warmup", dt);
                        node.mark_warm(app_hash);
                    }
                    // Migrate client -> the active node.
                    let bytes = self.dsm_exchange(active, DsmOp::MigrateToNode, &mut breakdown)?;
                    self.metrics.incr("runtime.offloads");
                    // Carry execution counters over so stats stay cumulative
                    // per machine (each machine counts its own retire).
                    let node = if active == 0 {
                        &mut self.node
                    } else {
                        &mut self.extra_nodes[active - 1]
                    };
                    node.machine.status = tinman_vm::MachineStatus::Runnable;
                    self.charge_migration(bytes, &mut breakdown);
                }
            }

            // ---- node segments (run until execution returns to client) ----
            loop {
                // Mobility events due before the segment apply now, so the
                // migrate-back (if any) is charged on the current radio.
                self.world.poll_network();
                if let Ok(link) = self.world.host_link(self.client.host) {
                    self.client.link = link;
                }
                // Membership drain: a segment boundary is a DSM sync
                // point — the only place the guest can be serialized with
                // nothing in flight. A due drain checkpoints and leaves
                // instead of running the segment on a node that is going
                // away. Checked before the guard watchdog: a draining
                // node hands its guest off rather than killing it.
                if let Some(at) = self.drain_at {
                    if self.clock.now() >= at {
                        return Err(self.checkpoint_and_drain(active));
                    }
                }
                // Watchdog: the guard charges everything a guest retires on
                // trusted hardware against one session-wide budget. Fuel is
                // what remains of the policy's allowance after every node
                // segment so far this run (node machines are fresh per run,
                // so their cumulative instruction counters are exactly the
                // per-run spend); the wall deadline is checked against the
                // simulated clock before each segment.
                let guard_cfg = self.config.guard.map(|g| {
                    let used: u64 = self.node.machine.stats.instrs
                        + self.extra_nodes.iter().map(|n| n.machine.stats.instrs).sum::<u64>();
                    (g, g.fuel.saturating_sub(used))
                });
                if let Some((g, _)) = &guard_cfg {
                    if let Some(deadline) = g.deadline {
                        if self.clock.now().since(t_run_start) > deadline {
                            return Err(self.kill_guest(active, KillReason::Deadline));
                        }
                    }
                }
                let t0 = self.clock.now();
                let event = {
                    let active_node = if active == 0 {
                        &mut self.node
                    } else {
                        &mut self.extra_nodes[active - 1]
                    };
                    let node_host_id = active_node.host;
                    let client_host_id = self.client.host;
                    let client_link = self.client.link.clone();
                    let device_name = self.client.name.clone();
                    let TrustedNode { machine, engine, store, policy, audit, .. } = active_node;
                    let mut host = NodeHost {
                        world: &mut self.world,
                        node_host: node_host_id,
                        client_host: client_host_id,
                        conns: &mut self.client.conns,
                        store,
                        policy,
                        audit,
                        app_hash,
                        device_name,
                        clock: self.clock.clone(),
                        breakdown: &mut breakdown,
                        rng: &mut self.rng,
                        last_denial: &mut last_denial,
                        client_link,
                        ssl_coordination_fixed: self.config.ssl_coordination_fixed,
                        ssl_coordination_rtts: self.config.ssl_coordination_rtts,
                        trace: self.trace.clone(),
                        trace_track: self.trace_track,
                    };
                    let exec = match &guard_cfg {
                        Some((g, remaining)) => {
                            ExecConfig::trusted_node(self.config.taint_idle_limit, *remaining)
                                .with_heap_quota(g.max_heap_objects, g.max_heap_bytes)
                                .with_depth_limit(g.max_call_depth)
                        }
                        None => {
                            ExecConfig::trusted_node(self.config.taint_idle_limit, self.config.fuel)
                        }
                    };
                    let exec = exec.with_tier(self.config.node_tier);
                    match self.config.node_tier {
                        ExecTier::Interpret => {
                            tinman_vm::interp::run(machine, image, &mut host, engine, exec)
                        }
                        ExecTier::Blocks => {
                            // Compile-once cache keyed by app hash, like the
                            // node's dex warm cache.
                            if self.compiled_cache.as_ref().is_none_or(|(h, _)| *h != app_hash) {
                                let compiled = CompiledImage::compile(image);
                                let s = compiled.stats();
                                self.metrics.incr("tier.compiles");
                                if self.trace.is_enabled() {
                                    self.trace.emit_on(
                                        self.trace_track,
                                        self.clock.now(),
                                        TraceEvent::TierCompile {
                                            functions: s.functions,
                                            blocks: s.blocks,
                                            ops: s.ops,
                                            folded: s.folded,
                                            eliminated: s.eliminated,
                                            fused: s.fused,
                                        },
                                    );
                                }
                                self.compiled_cache = Some((app_hash, compiled));
                            }
                            let compiled = &self.compiled_cache.as_ref().expect("cached above").1;
                            let before = self.tier_telemetry;
                            let r = tinman_vm::run_tiered(
                                machine,
                                image,
                                compiled,
                                &mut host,
                                engine,
                                exec,
                                &mut self.tier_telemetry,
                            );
                            let t = self.tier_telemetry;
                            self.metrics.add("tier.block_runs", t.block_runs - before.block_runs);
                            self.metrics.add("tier.fast_insns", t.fast_insns - before.fast_insns);
                            self.metrics
                                .add("tier.stepped_insns", t.stepped_insns - before.stepped_insns);
                            self.metrics.add("tier.deopts", t.deopts - before.deopts);
                            if self.trace.is_enabled() {
                                self.trace.emit_on(
                                    self.trace_track,
                                    self.clock.now(),
                                    TraceEvent::TierSegment {
                                        block_runs: t.block_runs - before.block_runs,
                                        fast_insns: t.fast_insns - before.fast_insns,
                                        stepped_insns: t.stepped_insns - before.stepped_insns,
                                        deopts: t.deopts - before.deopts,
                                    },
                                );
                            }
                            r
                        }
                    }
                };
                let event = match event {
                    Ok(ev) => ev,
                    // Quota faults raised inside the VM are guard kills:
                    // scrub, tear down, fail closed.
                    Err(VmError::HeapQuotaExceeded { .. }) if guard_cfg.is_some() => {
                        return Err(self.kill_guest(active, KillReason::Heap));
                    }
                    Err(VmError::CallDepthExceeded { .. }) if guard_cfg.is_some() => {
                        return Err(self.kill_guest(active, KillReason::Depth));
                    }
                    Err(e) => return Err(e.into()),
                };
                // Node CPU time from cycles; the wall time the segment's
                // natives spent (SSL/TCP path, server think) was already
                // attributed by the host.
                let _ = t0;
                let active_cycles = if active == 0 {
                    self.node.machine.stats.cycles
                } else {
                    self.extra_nodes[active - 1].machine.stats.cycles
                };
                let cycles = active_cycles - node_cycles_seen;
                self.charge_node_cpu(cycles, &mut breakdown);
                node_cycles_seen = active_cycles;

                match event {
                    ExecEvent::Halted(v) => {
                        // Final migrate-back so the client sees the end
                        // state (tokenized).
                        let bytes = self.dsm_exchange(
                            active,
                            DsmOp::MigrateToClient(SyncCause::TaintIdle),
                            &mut breakdown,
                        )?;
                        self.charge_migration(bytes, &mut breakdown);
                        if self.trace.is_enabled() {
                            self.trace.emit_on(
                                self.trace_track,
                                self.clock.now(),
                                TraceEvent::MigrateBack { cause: "run_complete" },
                            );
                            if offload_span_open {
                                // The run ends here; no need to clear the flag.
                                self.trace.span_end(self.trace_track, self.clock.now(), "offload");
                            }
                        }
                        break 'outer v;
                    }
                    ExecEvent::OutOfFuel => {
                        // Under the guard, running the node dry is a hostile
                        // act (Spin), not a tuning problem.
                        return Err(if guard_cfg.is_some() {
                            self.kill_guest(active, KillReason::Fuel)
                        } else {
                            RuntimeError::FuelExhausted
                        });
                    }
                    ExecEvent::OffloadTrigger { .. } => {
                        unreachable!("the full engine never triggers offload")
                    }
                    ExecEvent::LockRemote(_) => {
                        // A client-side (background-thread) monitor blocks
                        // the offloaded code — the github case.
                        let bytes =
                            self.dsm_exchange(active, DsmOp::LockFromClient, &mut breakdown)?;
                        self.charge_migration(bytes, &mut breakdown);
                        continue;
                    }
                    ExecEvent::MigrateBack { .. } | ExecEvent::TaintIdle => {
                        let cause = match event {
                            ExecEvent::TaintIdle => SyncCause::TaintIdle,
                            _ => SyncCause::NonOffloadableNative,
                        };
                        let bytes = self.dsm_exchange(
                            active,
                            DsmOp::MigrateToClient(cause),
                            &mut breakdown,
                        )?;
                        self.charge_migration(bytes, &mut breakdown);
                        if self.trace.is_enabled() {
                            self.trace.emit_on(
                                self.trace_track,
                                self.clock.now(),
                                TraceEvent::MigrateBack { cause: cause.as_str() },
                            );
                            if offload_span_open {
                                self.trace.span_end(self.trace_track, self.clock.now(), "offload");
                                offload_span_open = false;
                            }
                        }
                        self.client.machine.status = tinman_vm::MachineStatus::Runnable;
                        break; // back to the client loop
                    }
                }
            }
        };

        // A policy denial mid-run is surfaced as the run's error even if
        // the app soldiered on with a failure code.
        if let Some(denial) = last_denial {
            return Err(RuntimeError::PolicyDenied(denial));
        }

        // Ambient power for the whole interaction (screen on).
        let latency = self.clock.now().since(t_run_start);
        self.charge_ambient(latency, true);
        self.charge_radio(traffic_start)?;
        // Radio burst tails: every network activation holds the radio in
        // its high-power state for a tail period after the traffic ends
        // (the dominant hidden cost of chatty protocols on phones).
        // A stock login has ~2 bursts (request, response); TinMan adds one
        // per DSM sync and two per offload round (state export + the
        // redirect/inject exchange).
        let mut dsm_stats = self.dsm.stats().clone();
        for d in &self.extra_dsms {
            dsm_stats.absorb(d.stats());
        }
        let node_methods: u64 = self.node.machine.stats.method_invocations
            + self.extra_nodes.iter().map(|n| n.machine.stats.method_invocations).sum::<u64>();
        // The report reads the run's offload count back from the registry
        // (this runtime is single-threaded, so the delta is exact).
        let offloads = self.metrics.get("runtime.offloads") - offloads_start;
        self.metrics.observe("runtime.latency_ns", latency.as_nanos());
        self.metrics.add("runtime.dsm_syncs", dsm_stats.sync_count);
        let bursts = 2 + dsm_stats.sync_count + 2 * offloads;
        let tail = MicroJoules::from_power(
            self.client.link.active_radio_mw,
            SimDuration::from_millis(800) * bursts,
        );
        self.client.energy.radio_active += tail;
        self.client.battery.drain(tail);

        // Topology-layer observability: only emitted once a routed world
        // exists, so flat runs keep a byte-identical metrics registry.
        let topo_end = self.world.topology_stats();
        if self.world.topology_enabled() || topo_end != topo_start {
            self.metrics
                .add("net.topology.router_hops", topo_end.router_hops - topo_start.router_hops);
            self.metrics
                .add("net.topology.route_drops", topo_end.route_drops - topo_start.route_drops);
            self.metrics.add(
                "net.topology.firewall_drops",
                topo_end.firewall_drops - topo_start.firewall_drops,
            );
            self.metrics
                .add("net.topology.nat_rewrites", topo_end.nat_rewrites - topo_start.nat_rewrites);
            self.metrics.add("net.topology.nat_drops", topo_end.nat_drops - topo_start.nat_drops);
            self.metrics
                .add("net.topology.dns_lookups", topo_end.dns_lookups - topo_start.dns_lookups);
            self.metrics
                .add("net.topology.dns_failures", topo_end.dns_failures - topo_start.dns_failures);
            self.metrics.add("net.handoff.count", topo_end.handoffs - topo_start.handoffs);
            self.metrics
                .add("net.handoff.nat_rebinds", topo_end.nat_rebinds - topo_start.nat_rebinds);
        }

        let traffic_end = self.world.traffic(self.client.host)?;
        Ok(RunReport {
            result,
            latency,
            breakdown,
            dsm: dsm_stats,
            client_methods: self.client.machine.stats.method_invocations,
            node_methods,
            offloads,
            energy: self.client.energy.total(),
            traffic: Traffic {
                tx_bytes: traffic_end.tx_bytes - traffic_start.tx_bytes,
                rx_bytes: traffic_end.rx_bytes - traffic_start.rx_bytes,
            },
        })
    }
}
