//! Instruction-level interpreter semantics, including the taint-trigger
//! behaviour each instruction must exhibit (the paper's Figures 10/11).

use tinman_taint::{Label, TaintEngine, TaintSet};
use tinman_vm::interp::{run, ExecConfig, ExecEvent, NativeOutcome, NullHost, TriggerReason};
use tinman_vm::machine::LockSite;
use tinman_vm::{
    AppImage, Insn, Machine, NativeCtx, NativeHost, ObjId, ProgramBuilder, Value, VmError,
};

fn label() -> TaintSet {
    Label::new(1).unwrap().as_set()
}

/// Runs an image on a fresh machine under the given engine; returns the
/// event and the machine.
fn run_with(
    image: &AppImage,
    engine: &mut TaintEngine,
    config: ExecConfig,
) -> (Result<ExecEvent, VmError>, Machine) {
    let mut m = Machine::new();
    let mut host = NullHost;
    let ev = run(&mut m, image, &mut host, engine, config);
    (ev, m)
}

fn expect_halt(image: &AppImage) -> Value {
    let (ev, _) = run_with(image, &mut TaintEngine::none(), ExecConfig::client());
    match ev.unwrap() {
        ExecEvent::Halted(v) => v,
        other => panic!("expected halt, got {other:?}"),
    }
}

fn program(f: impl FnOnce(&mut tinman_vm::FnBuilder, &mut ProgramBuilder)) -> AppImage {
    let mut p = ProgramBuilder::new("t");
    let main = p.define("main", 0, 8, f);
    p.build(main)
}

// ---------- arithmetic & comparison semantics ----------

#[test]
fn integer_arithmetic_semantics() {
    for (insns, expect) in [
        (vec![Insn::ConstI(7), Insn::ConstI(3), Insn::Sub], 4),
        (vec![Insn::ConstI(7), Insn::ConstI(3), Insn::Div], 2),
        (vec![Insn::ConstI(7), Insn::ConstI(3), Insn::Rem], 1),
        (vec![Insn::ConstI(6), Insn::ConstI(3), Insn::BitAnd], 2),
        (vec![Insn::ConstI(6), Insn::ConstI(1), Insn::BitOr], 7),
        (vec![Insn::ConstI(6), Insn::ConstI(3), Insn::BitXor], 5),
        (vec![Insn::ConstI(3), Insn::ConstI(2), Insn::Shl], 12),
        (vec![Insn::ConstI(12), Insn::ConstI(2), Insn::Shr], 3),
        (vec![Insn::ConstI(5), Insn::Neg], -5),
    ] {
        let img = program(|b, _| {
            for i in &insns {
                b.op(*i);
            }
            b.op(Insn::Halt);
        });
        assert_eq!(expect_halt(&img), Value::Int(expect), "{insns:?}");
    }
}

#[test]
fn double_arithmetic_and_conversions() {
    let img = program(|b, _| {
        b.op(Insn::ConstD(2.5)).op(Insn::ConstD(4.0)).op(Insn::Mul);
        b.op(Insn::D2I); // 10
        b.op(Insn::I2D).op(Insn::ConstD(2.0)).op(Insn::Div).op(Insn::D2I);
        b.op(Insn::Halt);
    });
    assert_eq!(expect_halt(&img), Value::Int(5));
}

#[test]
fn mixed_int_double_widens() {
    let img = program(|b, _| {
        b.op(Insn::ConstI(3)).op(Insn::ConstD(0.5)).op(Insn::Add).op(Insn::Halt);
    });
    assert_eq!(expect_halt(&img), Value::Double(3.5));
}

#[test]
fn comparison_results() {
    for (insn, a, b, expect) in [
        (Insn::CmpEq, 2, 2, 1),
        (Insn::CmpNe, 2, 2, 0),
        (Insn::CmpLt, 1, 2, 1),
        (Insn::CmpLe, 2, 2, 1),
        (Insn::CmpGt, 2, 1, 1),
        (Insn::CmpGe, 1, 2, 0),
    ] {
        let img = program(|bld, _| {
            bld.const_i(a).const_i(b).op(insn).op(Insn::Halt);
        });
        assert_eq!(expect_halt(&img), Value::Int(expect), "{insn:?}");
    }
}

#[test]
fn division_by_zero_faults() {
    let img = program(|b, _| {
        b.const_i(1).const_i(0).op(Insn::Div).op(Insn::Halt);
    });
    let (ev, m) = run_with(&img, &mut TaintEngine::none(), ExecConfig::client());
    assert!(matches!(ev, Err(VmError::DivisionByZero { .. })));
    assert_eq!(m.status, tinman_vm::MachineStatus::Faulted);
}

// ---------- stack shuffling ----------

#[test]
fn dup_pop_swap() {
    let img = program(|b, _| {
        b.const_i(1).const_i(2); // [1, 2]
        b.op(Insn::Swap); // [2, 1]
        b.op(Insn::Dup); // [2, 1, 1]
        b.op(Insn::Add); // [2, 2]
        b.op(Insn::Add); // [4]
        b.op(Insn::Halt);
    });
    assert_eq!(expect_halt(&img), Value::Int(4));
}

#[test]
fn stack_underflow_faults() {
    let img = program(|b, _| {
        b.op(Insn::Add).op(Insn::Halt);
    });
    let (ev, _) = run_with(&img, &mut TaintEngine::none(), ExecConfig::client());
    assert!(matches!(ev, Err(VmError::StackUnderflow { .. })));
}

// ---------- objects & arrays ----------

#[test]
fn fields_and_arrays_end_to_end() {
    let mut p = ProgramBuilder::new("t");
    let cls = p.class("Pair", &["a", "b"]);
    let main = p.define("main", 0, 4, |b, _| {
        b.op(Insn::New(cls)).store(0);
        b.load(0).const_i(11).op(Insn::PutField(0));
        b.load(0).const_i(22).op(Insn::PutField(1));
        b.const_i(3).op(Insn::NewArr).store(1);
        b.load(1).const_i(2);
        b.load(0).op(Insn::GetField(0));
        b.load(0).op(Insn::GetField(1));
        b.op(Insn::Add); // 33
        b.op(Insn::ArrStore); // arr[2] = 33
        b.load(1).const_i(2).op(Insn::ArrLoad);
        b.load(1).op(Insn::ArrLen);
        b.op(Insn::Add); // 36
        b.op(Insn::Halt);
    });
    assert_eq!(expect_halt(&p.build(main)), Value::Int(36));
}

#[test]
fn arr_copy_moves_ranges() {
    let img = program(|b, _| {
        // src = [10, 20, 30, 40], dst = [0; 4]; copy src[1..3] -> dst[0..2]
        b.const_i(4).op(Insn::NewArr).store(0);
        for (i, v) in [10i64, 20, 30, 40].iter().enumerate() {
            b.load(0).const_i(i as i64).const_i(*v).op(Insn::ArrStore);
        }
        b.const_i(4).op(Insn::NewArr).store(1);
        // stack: src, src_off, dst, dst_off, count
        b.load(0).const_i(1).load(1).const_i(0).const_i(2).op(Insn::ArrCopy);
        b.load(1).const_i(0).op(Insn::ArrLoad);
        b.load(1).const_i(1).op(Insn::ArrLoad);
        b.op(Insn::Add); // 20 + 30
        b.op(Insn::Halt);
    });
    assert_eq!(expect_halt(&img), Value::Int(50));
}

#[test]
fn clone_obj_is_a_distinct_object() {
    let mut p = ProgramBuilder::new("t");
    let cls = p.class("Box", &["v"]);
    let main = p.define("main", 0, 3, |b, _| {
        b.op(Insn::New(cls)).store(0);
        b.load(0).const_i(5).op(Insn::PutField(0));
        b.load(0).op(Insn::CloneObj).store(1);
        // Mutate the clone; the original must be unchanged.
        b.load(1).const_i(9).op(Insn::PutField(0));
        b.load(0).op(Insn::GetField(0));
        b.load(1).op(Insn::GetField(0));
        b.op(Insn::Add); // 5 + 9
        b.op(Insn::Halt);
    });
    assert_eq!(expect_halt(&p.build(main)), Value::Int(14));
}

// ---------- strings ----------

#[test]
fn string_operations_full_tour() {
    let mut p = ProgramBuilder::new("t");
    let hello = p.string("hello");
    let ell = p.string("ell");
    let main = p.define("main", 0, 4, |b, _| {
        b.op(Insn::ConstS(hello)).store(0);
        // indexOf("ell") = 1
        b.load(0).op(Insn::ConstS(ell)).op(Insn::StrIndexOf);
        // charAt(1) = 'e' (101)
        b.load(0).const_i(1).op(Insn::StrCharAt);
        b.op(Insn::Add); // 102
                         // substring [1,4) = "ell"; eq -> 1
        b.load(0).const_i(1).const_i(4).op(Insn::StrSub);
        b.op(Insn::ConstS(ell)).op(Insn::StrEq);
        b.op(Insn::Add); // 103
                         // from_int(40) has len 2
        b.const_i(40).op(Insn::StrFromInt).op(Insn::StrLen);
        b.op(Insn::Add); // 105
                         // from_char(65) = "A", len 1
        b.const_i(65).op(Insn::StrFromChar).op(Insn::StrLen);
        b.op(Insn::Add); // 106
        b.op(Insn::Halt);
    });
    assert_eq!(expect_halt(&p.build(main)), Value::Int(106));
}

#[test]
fn substring_bounds_fault() {
    let mut p = ProgramBuilder::new("t");
    let s = p.string("abc");
    let main = p.define("main", 0, 1, |b, _| {
        b.op(Insn::ConstS(s)).const_i(1).const_i(9).op(Insn::StrSub).op(Insn::Halt);
    });
    let img = p.build(main);
    let (ev, _) = run_with(&img, &mut TaintEngine::none(), ExecConfig::client());
    assert!(matches!(ev, Err(VmError::BadStringOp { .. })));
}

// ---------- taint triggers (the heart of TinMan) ----------

/// Builds a machine whose heap holds a tainted string in local 0 of the
/// entry frame, then runs `body` against it.
fn trigger_probe(
    body: impl FnOnce(&mut tinman_vm::FnBuilder, &mut ProgramBuilder),
) -> (Result<ExecEvent, VmError>, Machine) {
    let mut p = ProgramBuilder::new("t");
    let nat = p.native("test.get_secret");
    let main = p.define("main", 0, 4, |b, pb| {
        b.op(Insn::CallNative(nat, 0)).store(0);
        body(b, pb);
    });
    let image = p.build(main);

    struct SecretHost;
    impl NativeHost for SecretHost {
        fn call(&mut self, ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError> {
            let obj = ctx.heap.alloc_str_tainted("placeholdr", label());
            Ok(NativeOutcome::ret(Value::Ref(obj)))
        }
    }
    let mut m = Machine::new();
    let mut host = SecretHost;
    let mut engine = TaintEngine::asymmetric();
    let ev = run(&mut m, &image, &mut host, &mut engine, ExecConfig::client());
    (ev, m)
}

#[test]
fn char_at_on_placeholder_triggers_tainted_read() {
    let (ev, m) = trigger_probe(|b, _| {
        b.load(0).const_i(0).op(Insn::StrCharAt).op(Insn::Halt);
    });
    match ev.unwrap() {
        ExecEvent::OffloadTrigger { labels, reason } => {
            assert_eq!(labels, label());
            assert_eq!(reason, TriggerReason::TaintedRead);
        }
        other => panic!("{other:?}"),
    }
    // The machine is suspended BEFORE the instruction: re-runnable, stack
    // intact, and no tainted value ever reached a stack slot.
    assert!(m.is_runnable());
    assert!(!m.any_stack_taint());
}

#[test]
fn concat_with_placeholder_triggers_tainted_derive() {
    let (ev, _) = trigger_probe(|b, pb| {
        let prefix = pb.string("pass=");
        b.op(Insn::ConstS(prefix)).load(0).op(Insn::StrConcat).op(Insn::Halt);
    });
    assert!(matches!(
        ev.unwrap(),
        ExecEvent::OffloadTrigger { reason: TriggerReason::TaintedDerive, .. }
    ));
}

#[test]
fn substring_and_eq_and_indexof_trigger() {
    for body in [
        (&|b: &mut tinman_vm::FnBuilder, _: &mut ProgramBuilder| {
            b.load(0).const_i(0).const_i(2).op(Insn::StrSub).op(Insn::Halt);
        }) as &dyn Fn(&mut tinman_vm::FnBuilder, &mut ProgramBuilder),
        &|b, _| {
            b.load(0).load(0).op(Insn::StrEq).op(Insn::Halt);
        },
        &|b, pb| {
            let n = pb.string("x");
            b.load(0).op(Insn::ConstS(n)).op(Insn::StrIndexOf).op(Insn::Halt);
        },
    ] {
        let (ev, _) = trigger_probe(|b, pb| body(b, pb));
        assert!(matches!(ev.unwrap(), ExecEvent::OffloadTrigger { .. }));
    }
}

#[test]
fn str_len_on_placeholder_does_not_trigger() {
    // §5.1: length is the one unprotected property.
    let (ev, _) = trigger_probe(|b, _| {
        b.load(0).op(Insn::StrLen).op(Insn::Halt);
    });
    assert!(matches!(ev.unwrap(), ExecEvent::Halted(Value::Int(10))));
}

#[test]
fn reference_copies_of_placeholder_do_not_trigger() {
    // §3.5: a reference to a tainted object is not itself tainted.
    let (ev, _) = trigger_probe(|b, _| {
        b.load(0).store(1); // copy the reference around
        b.load(1).store(2);
        b.const_i(0).op(Insn::Halt);
    });
    assert!(matches!(ev.unwrap(), ExecEvent::Halted(Value::Int(0))));
}

#[test]
fn clone_of_placeholder_propagates_without_trigger() {
    // A heap→heap COPY is tracked but does not trigger (§3.5).
    let (ev, m) = trigger_probe(|b, _| {
        b.load(0).op(Insn::CloneObj).store(1);
        b.const_i(0).op(Insn::Halt);
    });
    assert!(matches!(ev.unwrap(), ExecEvent::Halted(_)));
    // Both the original and the clone carry the label on the heap.
    let tainted: Vec<ObjId> =
        m.heap.iter().filter(|(_, o)| o.taint.is_tainted()).map(|(id, _)| id).collect();
    assert_eq!(tainted.len(), 2);
}

#[test]
fn full_engine_executes_the_same_access_without_trigger() {
    // The trusted node's engine lets tainted reads proceed, propagating
    // taint onto the stack shadow.
    let mut p = ProgramBuilder::new("t");
    let nat = p.native("test.get_secret");
    let main = p.define("main", 0, 2, |b, _| {
        b.op(Insn::CallNative(nat, 0)).store(0);
        b.load(0).const_i(0).op(Insn::StrCharAt).op(Insn::Halt);
    });
    let image = p.build(main);
    struct SecretHost;
    impl NativeHost for SecretHost {
        fn call(&mut self, ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError> {
            let obj = ctx.heap.alloc_str_tainted("secret", label());
            Ok(NativeOutcome::ret(Value::Ref(obj)))
        }
    }
    let mut m = Machine::new();
    let mut host = SecretHost;
    let mut engine = TaintEngine::full();
    let ev =
        run(&mut m, &image, &mut host, &mut engine, ExecConfig::trusted_node(1_000_000, u64::MAX));
    assert!(matches!(ev.unwrap(), ExecEvent::Halted(Value::Int(115)))); // 's'
}

// ---------- control: fuel, idle, monitors ----------

#[test]
fn out_of_fuel_is_resumable() {
    let img = program(|b, _| {
        b.const_i(1000).store(2);
        b.const_i(0).store(3);
        b.for_loop(1, 2, |b| {
            b.load(3).const_i(1).op(Insn::Add).store(3);
        });
        b.load(3).op(Insn::Halt);
    });
    let mut m = Machine::new();
    let mut host = NullHost;
    let mut engine = TaintEngine::none();
    let mut fuel_stops = 0;
    loop {
        match run(&mut m, &img, &mut host, &mut engine, ExecConfig::client().with_fuel(500))
            .unwrap()
        {
            ExecEvent::OutOfFuel => fuel_stops += 1,
            ExecEvent::Halted(v) => {
                assert_eq!(v, Value::Int(1000));
                break;
            }
            other => panic!("{other:?}"),
        }
        assert!(fuel_stops < 100, "must terminate");
    }
    assert!(fuel_stops >= 5, "the loop must have been interrupted repeatedly");
}

#[test]
fn taint_idle_fires_only_on_the_node_config() {
    let img = program(|b, _| {
        b.const_i(100_000).store(2);
        b.for_loop(1, 2, |b| {
            b.load(1).op(Insn::Pop);
        });
        b.const_i(0).op(Insn::Halt);
    });
    // Client config: no idle limit — runs to completion.
    let (ev, _) = run_with(&img, &mut TaintEngine::none(), ExecConfig::client());
    assert!(matches!(ev.unwrap(), ExecEvent::Halted(_)));
    // Node config: the long taint-free run raises TaintIdle.
    let (ev, _) =
        run_with(&img, &mut TaintEngine::full(), ExecConfig::trusted_node(1_000, u64::MAX));
    assert!(matches!(ev.unwrap(), ExecEvent::TaintIdle));
}

#[test]
fn monitor_enter_exit_and_remote_lock() {
    let mut p = ProgramBuilder::new("t");
    let cls = p.class("L", &["x"]);
    let main = p.define("main", 0, 2, |b, _| {
        b.op(Insn::New(cls)).store(0);
        b.load(0).op(Insn::MonitorEnter);
        b.load(0).op(Insn::MonitorEnter); // recursive
        b.load(0).op(Insn::MonitorExit);
        b.load(0).op(Insn::MonitorExit);
        b.const_i(7).op(Insn::Halt);
    });
    let img = p.build(main);
    let (ev, m) = run_with(&img, &mut TaintEngine::none(), ExecConfig::client());
    assert!(matches!(ev.unwrap(), ExecEvent::Halted(Value::Int(7))));
    assert_eq!(m.lock_site(ObjId(0)), Some(LockSite::Client));
}

#[test]
fn entering_a_remote_pinned_lock_suspends() {
    let mut p = ProgramBuilder::new("t");
    let cls = p.class("L", &["x"]);
    let main = p.define("main", 0, 2, |b, _| {
        b.op(Insn::New(cls)).op(Insn::Dup).store(0);
        b.op(Insn::PinLock); // background thread holds it at Client
        b.load(0).op(Insn::MonitorEnter);
        b.const_i(1).op(Insn::Halt);
    });
    let img = p.build(main);
    // Run AS THE NODE: the pinned client-owned lock is remote.
    let mut m = Machine::new();
    let mut host = NullHost;
    let mut engine = TaintEngine::full();
    // PinLock executes at node site too, so pre-pin at Client manually:
    // simulate by running on client to set up, then flipping the site.
    let ev = run(&mut m, &img, &mut host, &mut engine, ExecConfig::client()).unwrap();
    assert!(matches!(ev, ExecEvent::Halted(_)), "locally-owned pinned lock re-enters fine");

    // Now a fresh run where the machine believes the lock is owned by the
    // other endpoint.
    let mut m = Machine::new();
    let mut engine = TaintEngine::full();
    // Execute just past PinLock with fuel, then flip ownership to simulate
    // the lock living on the other side.
    let _ = run(&mut m, &img, &mut host, &mut engine, ExecConfig::client().with_fuel(4)).unwrap();
    m.locks.insert(ObjId(0), (LockSite::TrustedNode, 1));
    m.pinned_locks.insert(ObjId(0));
    let ev = run(&mut m, &img, &mut host, &mut engine, ExecConfig::client()).unwrap();
    assert!(matches!(ev, ExecEvent::LockRemote(_)), "remote pinned lock suspends, got {ev:?}");
}

#[test]
fn ret_void_and_fallthrough() {
    let mut p = ProgramBuilder::new("t");
    let noop = p.define("noop", 0, 0, |b, _| {
        b.op(Insn::RetVoid);
    });
    // A function whose body simply ends (no explicit Ret) behaves as
    // RetVoid.
    let endless = p.define("fallthrough", 0, 0, |b, _| {
        b.op(Insn::Nop);
    });
    let main = p.define("main", 0, 0, |b, _| {
        b.op(Insn::Call(noop)).op(Insn::Pop);
        b.op(Insn::Call(endless)).op(Insn::Pop);
        b.const_i(3).op(Insn::Halt);
    });
    assert_eq!(expect_halt(&p.build(main)), Value::Int(3));
}
