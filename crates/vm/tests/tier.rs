//! Differential tests for the block-compiled tier.
//!
//! The contract (see `tinman_vm::tier`): for **any** bytecode, any taint
//! engine, and any [`ExecConfig`], running under the block tier must yield
//! the same `Result<ExecEvent, VmError>`, the same serialized [`Machine`]
//! bytes, and the same serialized [`TaintEngine`] state as the reference
//! interpreter — at every suspension point, not just at the end. These
//! tests enforce that with arbitrary-bytecode proptests, canned kernels
//! for every suspension kind (offload trigger, migrate-back, remote lock,
//! taint idle, out-of-fuel, guard kills), and locally-rebuilt hostile
//! workloads (spin, heap bomb, deep recursion).

use proptest::prelude::*;
use tinman_taint::{Label, TaintEngine, TaintSet};
use tinman_vm::interp::{run, ExecConfig, ExecEvent, NativeOutcome, NullHost, TriggerReason};
use tinman_vm::machine::LockSite;
use tinman_vm::{
    run_tiered, AppImage, CompiledImage, Insn, Machine, NativeCtx, NativeHost, ObjId, PassPipeline,
    ProgramBuilder, TierTelemetry, Value, VmError,
};

fn label() -> TaintSet {
    Label::new(1).unwrap().as_set()
}

fn program(f: impl FnOnce(&mut tinman_vm::FnBuilder, &mut ProgramBuilder)) -> AppImage {
    let mut p = ProgramBuilder::new("t");
    let main = p.define("main", 0, 8, f);
    p.build(main)
}

type Outcome = Result<ExecEvent, VmError>;

/// What one differential run produced (identical across tiers by the time
/// it is returned — every divergence panics inside the loop).
struct DiffReport {
    outcome: Outcome,
    machine_json: String,
    telemetry: TierTelemetry,
    rounds: usize,
}

/// Runs `image` on two fresh machines — one per tier — resuming through
/// resumable events (`OutOfFuel`, `TaintIdle`) up to `max_rounds` times,
/// and asserts after **every** round that the event, the serialized
/// machine bytes, and the serialized taint-engine state are identical.
fn diff_run_full<H: NativeHost>(
    image: &AppImage,
    pipeline: &PassPipeline,
    mk_host: impl Fn() -> H,
    mk_engine: impl Fn() -> TaintEngine,
    config: ExecConfig,
    max_rounds: usize,
) -> DiffReport {
    let compiled = CompiledImage::compile_with(image, pipeline);
    assert!(compiled.matches(image), "compiled image must bind to its source");
    let mut mi = Machine::new();
    let mut mt = Machine::new();
    let mut hi = mk_host();
    let mut ht = mk_host();
    let mut ei = mk_engine();
    let mut et = mk_engine();
    let mut telemetry = TierTelemetry::default();
    let mut rounds = 0;
    loop {
        let ri = run(&mut mi, image, &mut hi, &mut ei, config.clone());
        let rt =
            run_tiered(&mut mt, image, &compiled, &mut ht, &mut et, config.clone(), &mut telemetry);
        rounds += 1;
        assert_eq!(ri, rt, "events diverged at round {rounds}");
        let ji = serde_json::to_string(&mi).expect("machine serializes");
        let jt = serde_json::to_string(&mt).expect("machine serializes");
        assert_eq!(ji, jt, "machine bytes diverged at round {rounds}");
        assert_eq!(
            serde_json::to_string(&ei).unwrap(),
            serde_json::to_string(&et).unwrap(),
            "taint-engine state diverged at round {rounds}"
        );
        let resumable = matches!(ri, Ok(ExecEvent::OutOfFuel) | Ok(ExecEvent::TaintIdle));
        if !resumable || rounds >= max_rounds || !mi.is_runnable() {
            return DiffReport { outcome: ri, machine_json: ji, telemetry, rounds };
        }
    }
}

/// The common case: null host, default pipeline, generous resume budget.
fn diff_run(
    image: &AppImage,
    mk_engine: impl Fn() -> TaintEngine,
    config: ExecConfig,
) -> DiffReport {
    diff_run_full(image, &PassPipeline::default(), || NullHost, mk_engine, config, 5_000)
}

// ---------- arbitrary bytecode (the fuzzer) ----------

/// Maps `(selector, parameter)` pairs to an image whose `main` mixes fast
/// ops, step-only ops, out-of-range local slots, and jumps to arbitrary
/// (including out-of-range) targets, with a callable auxiliary function.
fn arbitrary_image(ops: &[(u8, i64)]) -> AppImage {
    let mut p = ProgramBuilder::new("fuzz");
    let s0 = p.string("ab");
    let aux = p.define("aux", 1, 2, |b, _| {
        b.load(0).const_i(3).op(Insn::Mul).op(Insn::Ret);
    });
    let code_len = ops.len() as i64 + 1; // + trailing Halt
    let main = p.define("main", 0, 8, |b, _| {
        for &(sel, k) in ops {
            let target = k.rem_euclid(code_len + 2) as u32;
            let insn = match sel % 30 {
                0 => Insn::ConstI(k),
                1 => Insn::ConstD(k as f64 * 0.5),
                2 => Insn::Add,
                3 => Insn::Sub,
                4 => Insn::Mul,
                5 => Insn::Div,
                6 => Insn::Rem,
                7 => Insn::Shl,
                8 => Insn::Shr,
                9 => Insn::BitAnd,
                10 => Insn::BitXor,
                11 => Insn::Neg,
                12 => Insn::I2D,
                13 => Insn::D2I,
                14 => Insn::Dup,
                15 => Insn::Pop,
                16 => Insn::Swap,
                17 => Insn::Load(k.rem_euclid(10) as u16), // slots 8/9 are invalid
                18 => Insn::Store(k.rem_euclid(10) as u16),
                19 => Insn::Jump(target),
                20 => Insn::JumpIfZero(target),
                21 => Insn::JumpIfNonZero(target),
                22 => Insn::CmpLt,
                23 => Insn::CmpEq,
                24 => Insn::Nop,
                25 => Insn::Call(aux),
                26 => Insn::ConstS(s0),
                27 => Insn::StrLen,
                28 => Insn::StrFromChar,
                29 => Insn::NewArr,
                _ => unreachable!(),
            };
            b.op(insn);
        }
        b.op(Insn::Halt);
    });
    p.build(main)
}

proptest! {
    #![cases(48)]
    #[test]
    fn arbitrary_bytecode_is_bit_identical_across_tiers(
        ops in proptest::collection::vec((0u8..30, -9i64..81), 0..36),
        fuel in 1u64..90,
    ) {
        let image = arbitrary_image(&ops);
        for pipeline in [PassPipeline::default(), PassPipeline::decode_only()] {
            // Client shape: fuel-bounded, no idle limit, no taint.
            diff_run_full(
                &image,
                &pipeline,
                || NullHost,
                TaintEngine::none,
                ExecConfig::client().with_fuel(fuel),
                8,
            );
            // Node shape: full engine, aggressive taint-idle limit, plus a
            // tight guard envelope so kills land mid-program.
            diff_run_full(
                &image,
                &pipeline,
                || NullHost,
                TaintEngine::full,
                ExecConfig::trusted_node(23, fuel).with_heap_quota(24, 4096).with_depth_limit(12),
                8,
            );
        }
    }
}

// ---------- canned kernels: halting paths ----------

fn sum_kernel(n: i64) -> AppImage {
    program(move |b, _| {
        b.const_i(n).store(2);
        b.const_i(0).store(3);
        b.for_loop(1, 2, |b| {
            b.load(3).load(1).op(Insn::Add).store(3); // acc += i   (BinLL fusion)
            b.load(3).const_i(1).op(Insn::Add).store(3); // acc += 1 (IncLocal fusion)
        });
        b.load(3).op(Insn::Halt);
    })
}

#[test]
fn loop_kernel_halts_identically_and_mostly_runs_in_blocks() {
    let n = 200i64;
    let image = sum_kernel(n);
    let report = diff_run(&image, TaintEngine::none, ExecConfig::client());
    let expected = n * (n - 1) / 2 + n;
    assert_eq!(report.outcome, Ok(ExecEvent::Halted(Value::Int(expected))));
    assert!(report.telemetry.block_runs > 0, "the hot loop must run as blocks");
    assert!(
        report.telemetry.fast_insns > report.telemetry.stepped_insns,
        "most instructions must retire through the fast path: {:?}",
        report.telemetry
    );
    let stats = CompiledImage::compile(&image).stats();
    assert!(stats.fused > 0, "loop header and increments must fuse: {stats:?}");
}

#[test]
fn passes_fire_without_perturbing_engine_state() {
    // Constant expressions and dead stores, under the full engine so every
    // replayed charge and batched EMPTY move is observable in engine state.
    let image = program(|b, _| {
        b.const_i(2).const_i(3).op(Insn::Add).const_i(4).op(Insn::Mul).store(0); // folds
        b.const_i(5).store(4);
        b.const_i(6).store(4); // kills the store above
        b.load(0).load(4).op(Insn::Add).op(Insn::Halt);
    });
    let stats = CompiledImage::compile(&image).stats();
    assert!(stats.folded > 0, "constant expression must fold: {stats:?}");
    assert!(stats.eliminated > 0, "dead store must be eliminated: {stats:?}");
    let report = diff_run(&image, TaintEngine::full, ExecConfig::trusted_node(1_000_000, u64::MAX));
    assert_eq!(report.outcome, Ok(ExecEvent::Halted(Value::Int(26))));
}

#[test]
fn mixed_object_string_call_kernel_is_identical() {
    let mut p = ProgramBuilder::new("t");
    let cls = p.class("Pair", &["a", "b"]);
    let hello = p.string("hello");
    let twice = p.define("twice", 1, 1, |b, _| {
        b.load(0).load(0).op(Insn::Add).op(Insn::Ret);
    });
    let main = p.define("main", 0, 6, |b, _| {
        b.op(Insn::New(cls)).store(0);
        b.load(0).const_i(21).op(Insn::PutField(0));
        b.load(0).op(Insn::GetField(0)).op(Insn::Call(twice)).store(1); // 42
        b.const_i(3).op(Insn::NewArr).store(2);
        b.load(2).const_i(1).load(1).op(Insn::ArrStore);
        b.load(2).const_i(1).op(Insn::ArrLoad);
        b.op(Insn::ConstS(hello)).op(Insn::StrLen);
        b.op(Insn::Add); // 47
        b.op(Insn::Halt);
    });
    let image = p.build(main);
    for pipeline in [PassPipeline::default(), PassPipeline::decode_only()] {
        let report = diff_run_full(
            &image,
            &pipeline,
            || NullHost,
            TaintEngine::full,
            ExecConfig::trusted_node(1_000_000, u64::MAX),
            4,
        );
        assert_eq!(report.outcome, Ok(ExecEvent::Halted(Value::Int(47))));
    }
}

// ---------- suspension points ----------

#[test]
fn out_of_fuel_suspends_at_identical_instructions_for_every_fuel_level() {
    // Small odd fuel values land suspensions mid-block; the differential
    // loop asserts machine bytes after every resume, so this exercises the
    // reserve-or-step boundary and mid-block (non-leader pc) resume.
    let image = sum_kernel(40);
    for fuel in [1u64, 2, 3, 5, 7, 11, 13, 23, 64, 101] {
        let report = diff_run(&image, TaintEngine::none, ExecConfig::client().with_fuel(fuel));
        assert!(
            matches!(report.outcome, Ok(ExecEvent::Halted(_))),
            "fuel {fuel}: {:?}",
            report.outcome
        );
        if fuel < 64 {
            assert!(report.rounds > 1, "fuel {fuel} must force at least one suspension");
        }
    }
}

struct SecretHost;
impl NativeHost for SecretHost {
    fn call(&mut self, ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError> {
        let obj = ctx.heap.alloc_str_tainted("placeholdr", label());
        Ok(NativeOutcome::ret(Value::Ref(obj)))
    }
}

#[test]
fn offload_trigger_suspends_identically_before_the_instruction() {
    let mut p = ProgramBuilder::new("t");
    let nat = p.native("test.get_secret");
    let main = p.define("main", 0, 4, |b, _| {
        b.op(Insn::CallNative(nat, 0)).store(0);
        b.load(0).const_i(0).op(Insn::StrCharAt).op(Insn::Halt);
    });
    let image = p.build(main);
    let report = diff_run_full(
        &image,
        &PassPipeline::default(),
        || SecretHost,
        TaintEngine::asymmetric,
        ExecConfig::client(),
        4,
    );
    match report.outcome {
        Ok(ExecEvent::OffloadTrigger { labels, reason }) => {
            assert_eq!(labels, label());
            assert_eq!(reason, TriggerReason::TaintedRead);
        }
        other => panic!("expected an offload trigger, got {other:?}"),
    }
    // Suspended BEFORE the instruction: both machines re-runnable with no
    // stack taint (asserted once here; byte-equality already held above).
    let m: Machine = serde_json::from_str(&report.machine_json).unwrap();
    assert!(m.is_runnable());
    assert!(!m.any_stack_taint());
}

#[test]
fn migrate_back_native_suspends_identically() {
    struct IoHost;
    impl NativeHost for IoHost {
        fn call(&mut self, _ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError> {
            Ok(NativeOutcome::MigrateBack)
        }
    }
    let mut p = ProgramBuilder::new("t");
    let nat = p.native("io.display");
    let main = p.define("main", 0, 2, |b, _| {
        b.const_i(1).op(Insn::CallNative(nat, 1)).op(Insn::Halt);
    });
    let image = p.build(main);
    let report = diff_run_full(
        &image,
        &PassPipeline::default(),
        || IoHost,
        TaintEngine::full,
        ExecConfig::trusted_node(1_000_000, u64::MAX),
        4,
    );
    assert_eq!(report.outcome, Ok(ExecEvent::MigrateBack { native: "io.display".to_owned() }));
}

#[test]
fn taint_idle_fires_identically_on_the_node_config() {
    let image = program(|b, _| {
        b.const_i(5_000).store(2);
        b.for_loop(1, 2, |b| {
            b.load(1).op(Insn::Pop);
        });
        b.const_i(0).op(Insn::Halt);
    });
    let report = diff_run(&image, TaintEngine::full, ExecConfig::trusted_node(1_000, u64::MAX));
    // Resumed through repeated idles up to the round cap or completion —
    // either way, every round compared equal.
    assert!(report.rounds > 1, "the idle limit must fire at least once");
}

#[test]
fn remote_pinned_lock_suspends_identically() {
    let mut p = ProgramBuilder::new("t");
    let cls = p.class("L", &["x"]);
    let main = p.define("main", 0, 2, |b, _| {
        b.op(Insn::New(cls)).op(Insn::Dup).store(0);
        b.op(Insn::PinLock);
        b.load(0).op(Insn::MonitorEnter);
        b.const_i(1).op(Insn::Halt);
    });
    let image = p.build(main);
    let compiled = CompiledImage::compile(&image);

    // Run just past PinLock, flip lock ownership to the other endpoint
    // (as a DSM sync would), then resume — under each tier.
    let run_one = |tiered: bool| -> (Outcome, String) {
        let mut m = Machine::new();
        let mut host = NullHost;
        let mut engine = TaintEngine::full();
        let mut tel = TierTelemetry::default();
        let cfg = ExecConfig::client().with_fuel(4);
        let first = if tiered {
            run_tiered(&mut m, &image, &compiled, &mut host, &mut engine, cfg, &mut tel)
        } else {
            run(&mut m, &image, &mut host, &mut engine, cfg)
        };
        assert_eq!(first, Ok(ExecEvent::OutOfFuel));
        m.locks.insert(ObjId(0), (LockSite::TrustedNode, 1));
        m.pinned_locks.insert(ObjId(0));
        let cfg = ExecConfig::client();
        let ev = if tiered {
            run_tiered(&mut m, &image, &compiled, &mut host, &mut engine, cfg, &mut tel)
        } else {
            run(&mut m, &image, &mut host, &mut engine, cfg)
        };
        (ev, serde_json::to_string(&m).unwrap())
    };
    let (ev_i, json_i) = run_one(false);
    let (ev_t, json_t) = run_one(true);
    assert_eq!(ev_i, ev_t);
    assert_eq!(json_i, json_t);
    assert!(matches!(ev_i, Ok(ExecEvent::LockRemote(_))), "got {ev_i:?}");
}

// ---------- guard kills (hostile workloads, rebuilt locally) ----------
//
// `tinman-fleet` depends on this crate, so its hostile-guest builders are
// not importable here; the same shapes are rebuilt minus the cor natives.

#[test]
fn hostile_spin_burns_fuel_identically() {
    let image = program(|b, _| {
        b.const_i(1).store(0);
        let top = b.label();
        b.bind(top);
        b.load(0).op(Insn::Pop);
        b.jump(top);
        b.op(Insn::Halt); // unreachable
    });
    let report = diff_run_full(
        &image,
        &PassPipeline::default(),
        || NullHost,
        TaintEngine::none,
        ExecConfig::client().with_fuel(64),
        6,
    );
    // Never halts: every round is an identical OutOfFuel suspension.
    assert_eq!(report.outcome, Ok(ExecEvent::OutOfFuel));
    assert_eq!(report.rounds, 6);
    assert!(report.telemetry.block_runs > 0, "the spin loop must run as a block");
}

#[test]
fn hostile_heap_bomb_trips_the_quota_identically() {
    let mut p = ProgramBuilder::new("bomb");
    let seed = p.string("aaaaaaaa");
    let main = p.define("main", 0, 2, |b, _| {
        b.op(Insn::ConstS(seed)).store(0);
        let top = b.label();
        b.bind(top);
        b.load(0).load(0).op(Insn::StrConcat).store(0); // s = s + s
        b.jump(top);
        b.op(Insn::Halt); // unreachable
    });
    let image = p.build(main);
    let report =
        diff_run(&image, TaintEngine::none, ExecConfig::client().with_heap_quota(64, 4096));
    assert!(
        matches!(report.outcome, Err(VmError::HeapQuotaExceeded { .. })),
        "got {:?}",
        report.outcome
    );
    let m: Machine = serde_json::from_str(&report.machine_json).unwrap();
    assert_eq!(m.status, tinman_vm::MachineStatus::Faulted);
}

#[test]
fn hostile_deep_recursion_trips_the_depth_limit_identically() {
    let mut p = ProgramBuilder::new("rec");
    let rec = p.declare("rec", 1, 1);
    p.define("rec", 1, 1, |b, _| {
        b.load(0).const_i(1).op(Insn::Add);
        b.op(Insn::Call(rec));
        b.op(Insn::Ret);
    });
    let main = p.define("main", 0, 1, |b, _| {
        b.const_i(0).op(Insn::Call(rec)).op(Insn::Halt);
    });
    let image = p.build(main);
    let report = diff_run(&image, TaintEngine::none, ExecConfig::client().with_depth_limit(24));
    assert!(
        matches!(report.outcome, Err(VmError::CallDepthExceeded { depth: 25 })),
        "got {:?}",
        report.outcome
    );
}

// ---------- pinned interpreter-semantics bugs (the satellites) ----------

#[test]
fn shift_counts_are_masked_to_six_bits_in_both_tiers() {
    // (value, count, expected) for Shl / Shr with the `& 63` mask. Counts
    // 64, 65, -1, and i64::MIN are the formerly-truncating edge cases.
    let shl_cases: &[(i64, i64, i64)] =
        &[(3, 64, 3), (3, 65, 6), (1, -1, i64::MIN), (7, i64::MIN, 7), (3, 2, 12)];
    let shr_cases: &[(i64, i64, i64)] =
        &[(5, 64, 5), (-8, 65, -4), (i64::MIN, -1, -1), (5, i64::MIN, 5), (12, 2, 3)];
    for (insn, cases) in [(Insn::Shl, shl_cases), (Insn::Shr, shr_cases)] {
        for &(v, count, expected) in cases {
            // Constant-operand form (exercises the folding pass)...
            let folded = program(move |b, _| {
                b.const_i(v).const_i(count).op(insn).op(Insn::Halt);
            });
            // ...and the runtime form through locals (no folding possible).
            let dynamic = program(move |b, _| {
                b.const_i(v).store(0);
                b.const_i(count).store(1);
                b.load(0).load(1).op(insn).op(Insn::Halt);
            });
            for image in [folded, dynamic] {
                let report = diff_run(&image, TaintEngine::none, ExecConfig::client());
                assert_eq!(
                    report.outcome,
                    Ok(ExecEvent::Halted(Value::Int(expected))),
                    "{insn:?} {v} by {count}"
                );
            }
        }
    }
}

#[test]
fn str_from_char_rejects_invalid_scalars_identically() {
    for bad in [-1i64, 0xD800, 0x11_0000, i64::MAX] {
        let image = program(move |b, _| {
            b.const_i(bad).op(Insn::StrFromChar).op(Insn::Halt);
        });
        let report = diff_run(&image, TaintEngine::none, ExecConfig::client());
        assert!(
            matches!(report.outcome, Err(VmError::BadStringOp { .. })),
            "char {bad:#x}: {:?}",
            report.outcome
        );
        let m: Machine = serde_json::from_str(&report.machine_json).unwrap();
        assert_eq!(m.status, tinman_vm::MachineStatus::Faulted);
    }
    // Boundary-valid scalars still construct.
    for good in [65i64, 0x10_FFFF] {
        let image = program(move |b, _| {
            b.const_i(good).op(Insn::StrFromChar).op(Insn::StrLen).op(Insn::Halt);
        });
        let report = diff_run(&image, TaintEngine::none, ExecConfig::client());
        assert!(
            matches!(report.outcome, Ok(ExecEvent::Halted(Value::Int(_)))),
            "char {good:#x}: {:?}",
            report.outcome
        );
    }
}

#[test]
fn missing_taint_slot_is_a_typed_error_in_both_tiers() {
    struct SlotProbe;
    impl NativeHost for SlotProbe {
        fn call(&mut self, ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError> {
            ctx.arg_effective_taint(3)?; // only 1 argument exists
            Ok(NativeOutcome::ret(Value::Int(0)))
        }
    }
    let mut p = ProgramBuilder::new("t");
    let nat = p.native("test.probe");
    let main = p.define("main", 0, 1, |b, _| {
        b.const_i(9).op(Insn::CallNative(nat, 1)).op(Insn::Halt);
    });
    let image = p.build(main);
    let report = diff_run_full(
        &image,
        &PassPipeline::default(),
        || SlotProbe,
        TaintEngine::none,
        ExecConfig::client(),
        4,
    );
    assert!(
        matches!(report.outcome, Err(VmError::TaintSlotMismatch { index: 3, .. })),
        "got {:?}",
        report.outcome
    );
}

// ---------- tier plumbing ----------

#[test]
fn compiled_image_mismatch_is_rejected_before_any_mutation() {
    let a = sum_kernel(5);
    let b = program(|b, _| {
        b.const_i(1).op(Insn::Halt);
    });
    let compiled_a = CompiledImage::compile(&a);
    assert!(!compiled_a.matches(&b));
    let mut m = Machine::new();
    let mut tel = TierTelemetry::default();
    let ev = run_tiered(
        &mut m,
        &b,
        &compiled_a,
        &mut NullHost,
        &mut TaintEngine::none(),
        ExecConfig::client(),
        &mut tel,
    );
    assert_eq!(ev, Err(VmError::CompiledImageMismatch));
    // The machine was not touched: still pristine and runnable.
    assert!(m.is_runnable());
    assert_eq!(serde_json::to_string(&m).unwrap(), serde_json::to_string(&Machine::new()).unwrap());
}

#[test]
fn one_compiled_image_serves_many_machines() {
    let image = sum_kernel(30);
    let compiled = CompiledImage::compile(&image);
    for _ in 0..3 {
        let mut m = Machine::new();
        let mut tel = TierTelemetry::default();
        let ev = run_tiered(
            &mut m,
            &image,
            &compiled,
            &mut NullHost,
            &mut TaintEngine::none(),
            ExecConfig::client(),
            &mut tel,
        );
        assert_eq!(ev, Ok(ExecEvent::Halted(Value::Int(30 * 29 / 2 + 30))));
    }
}
