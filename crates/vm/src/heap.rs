//! The object heap.
//!
//! Heap objects carry the per-object taint labels that drive TinMan's
//! offload triggering, and per-object/per-field dirty bits that drive the
//! DSM layer's init-versus-dirty synchronization accounting.

use serde::{Deserialize, Serialize};
use tinman_taint::TaintSet;

use crate::error::VmError;
use crate::value::{ObjId, Value};

/// The payload of a heap object.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum HeapKind {
    /// An immutable string.
    Str(String),
    /// A mutable array of values.
    Arr(Vec<Value>),
    /// A class instance: a class id and its field slots.
    Obj {
        /// Index of the class definition in the app image.
        class: u32,
        /// Field slots, in class declaration order.
        fields: Vec<Value>,
    },
}

impl HeapKind {
    /// Short kind name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            HeapKind::Str(_) => "string",
            HeapKind::Arr(_) => "array",
            HeapKind::Obj { .. } => "object",
        }
    }

    /// Approximate in-memory payload size in bytes, used for DSM transfer
    /// accounting.
    pub fn byte_size(&self) -> u64 {
        match self {
            HeapKind::Str(s) => s.len() as u64,
            HeapKind::Arr(v) => v.len() as u64 * 8,
            HeapKind::Obj { fields, .. } => fields.len() as u64 * 8,
        }
    }
}

/// One heap object: payload, taint, and DSM bookkeeping.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeapObj {
    /// The payload.
    pub kind: HeapKind,
    /// Taint labels attached to this object. Following TaintDroid, taint is
    /// tracked per object for heap data (per message/array rather than per
    /// element).
    pub taint: TaintSet,
    /// True if the object was created after the last DSM sync.
    pub fresh: bool,
    /// Dirty-field bitmask (bit *i* = field/element region *i* modified
    /// since the last sync). Arrays use bit 0 for "any element dirty".
    pub dirty: u64,
}

impl HeapObj {
    fn new(kind: HeapKind) -> Self {
        HeapObj { kind, taint: TaintSet::EMPTY, fresh: true, dirty: 0 }
    }

    /// True if any field (or the array payload) changed since the last
    /// sync.
    pub fn is_dirty(&self) -> bool {
        self.dirty != 0
    }
}

/// The object heap: allocation-ordered, no reclamation, stable ids.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Heap {
    objects: Vec<HeapObj>,
    /// Interned pooled-string objects: `intern[i]` is the object id for
    /// string-pool entry `i`, if materialized.
    intern: Vec<Option<ObjId>>,
    /// Total bytes ever allocated (reporting).
    allocated_bytes: u64,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no objects have been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total bytes ever allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Allocates an object and returns its id.
    pub fn alloc(&mut self, kind: HeapKind) -> ObjId {
        self.allocated_bytes += kind.byte_size();
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(HeapObj::new(kind));
        id
    }

    /// Allocates a string object.
    pub fn alloc_str(&mut self, s: impl Into<String>) -> ObjId {
        self.alloc(HeapKind::Str(s.into()))
    }

    /// Allocates a string object carrying taint (e.g. a materialized cor
    /// placeholder).
    pub fn alloc_str_tainted(&mut self, s: impl Into<String>, taint: TaintSet) -> ObjId {
        let id = self.alloc(HeapKind::Str(s.into()));
        self.objects[id.0 as usize].taint = taint;
        id
    }

    /// Allocates a zeroed array of `len` elements.
    pub fn alloc_arr(&mut self, len: usize) -> ObjId {
        self.alloc(HeapKind::Arr(vec![Value::Int(0); len]))
    }

    /// Allocates an instance with `n_fields` null fields.
    pub fn alloc_obj(&mut self, class: u32, n_fields: usize) -> ObjId {
        self.alloc(HeapKind::Obj { class, fields: vec![Value::Null; n_fields] })
    }

    /// Immutable access to an object.
    pub fn get(&self, id: ObjId) -> Result<&HeapObj, VmError> {
        self.objects.get(id.0 as usize).ok_or(VmError::BadObjId { obj: id })
    }

    /// Mutable access to an object.
    pub fn get_mut(&mut self, id: ObjId) -> Result<&mut HeapObj, VmError> {
        self.objects.get_mut(id.0 as usize).ok_or(VmError::BadObjId { obj: id })
    }

    /// The object's taint labels.
    pub fn taint_of(&self, id: ObjId) -> Result<TaintSet, VmError> {
        Ok(self.get(id)?.taint)
    }

    /// Replaces the object's taint labels.
    pub fn set_taint(&mut self, id: ObjId, taint: TaintSet) -> Result<(), VmError> {
        self.get_mut(id)?.taint = taint;
        Ok(())
    }

    /// Unions labels into the object's taint.
    pub fn add_taint(&mut self, id: ObjId, taint: TaintSet) -> Result<(), VmError> {
        let obj = self.get_mut(id)?;
        obj.taint = obj.taint.union(taint);
        Ok(())
    }

    /// The string payload of a string object.
    pub fn str_value(&self, id: ObjId) -> Result<&str, VmError> {
        match &self.get(id)?.kind {
            HeapKind::Str(s) => Ok(s),
            other => Err(VmError::WrongHeapKind {
                obj: id,
                expected: "string",
                found: other.kind_name(),
            }),
        }
    }

    /// Reads array element `index`.
    pub fn arr_get(&self, id: ObjId, index: i64) -> Result<Value, VmError> {
        match &self.get(id)?.kind {
            HeapKind::Arr(v) => {
                if index < 0 || index as usize >= v.len() {
                    Err(VmError::IndexOutOfBounds { obj: id, index, len: v.len() })
                } else {
                    Ok(v[index as usize])
                }
            }
            other => {
                Err(VmError::WrongHeapKind { obj: id, expected: "array", found: other.kind_name() })
            }
        }
    }

    /// Writes array element `index`, marking the object dirty.
    pub fn arr_set(&mut self, id: ObjId, index: i64, value: Value) -> Result<(), VmError> {
        let obj = self.get_mut(id)?;
        match &mut obj.kind {
            HeapKind::Arr(v) => {
                if index < 0 || index as usize >= v.len() {
                    return Err(VmError::IndexOutOfBounds { obj: id, index, len: v.len() });
                }
                v[index as usize] = value;
                obj.dirty |= 1;
                Ok(())
            }
            other => {
                Err(VmError::WrongHeapKind { obj: id, expected: "array", found: other.kind_name() })
            }
        }
    }

    /// Array length.
    pub fn arr_len(&self, id: ObjId) -> Result<usize, VmError> {
        match &self.get(id)?.kind {
            HeapKind::Arr(v) => Ok(v.len()),
            other => {
                Err(VmError::WrongHeapKind { obj: id, expected: "array", found: other.kind_name() })
            }
        }
    }

    /// Reads instance field `index`.
    pub fn field_get(&self, id: ObjId, index: u16) -> Result<Value, VmError> {
        match &self.get(id)?.kind {
            HeapKind::Obj { fields, .. } => fields
                .get(index as usize)
                .copied()
                .ok_or(VmError::BadFieldIndex { obj: id, index, len: fields.len() }),
            other => Err(VmError::WrongHeapKind {
                obj: id,
                expected: "object",
                found: other.kind_name(),
            }),
        }
    }

    /// Writes instance field `index`, marking that field dirty.
    pub fn field_set(&mut self, id: ObjId, index: u16, value: Value) -> Result<(), VmError> {
        let obj = self.get_mut(id)?;
        match &mut obj.kind {
            HeapKind::Obj { fields, .. } => {
                let len = fields.len();
                let slot = fields.get_mut(index as usize).ok_or(VmError::BadFieldIndex {
                    obj: id,
                    index,
                    len,
                })?;
                *slot = value;
                obj.dirty |= 1u64 << (index as u64).min(63);
                Ok(())
            }
            other => Err(VmError::WrongHeapKind {
                obj: id,
                expected: "object",
                found: other.kind_name(),
            }),
        }
    }

    /// Shallow-copies an object; the copy keeps the original's taint (a
    /// heap→heap *copy*, which even the client-side asymmetric engine
    /// tracks).
    pub fn clone_obj(&mut self, id: ObjId) -> Result<ObjId, VmError> {
        let src = self.get(id)?;
        let kind = src.kind.clone();
        let taint = src.taint;
        let new_id = self.alloc(kind);
        self.objects[new_id.0 as usize].taint = taint;
        Ok(new_id)
    }

    /// The interned object for string-pool entry `idx`, materializing it on
    /// first use. Interned constants are never tainted.
    pub fn intern_str(&mut self, idx: u32, content: &str) -> ObjId {
        if self.intern.len() <= idx as usize {
            self.intern.resize(idx as usize + 1, None);
        }
        if let Some(id) = self.intern[idx as usize] {
            return id;
        }
        let id = self.alloc_str(content);
        self.intern[idx as usize] = Some(id);
        id
    }

    /// Inserts or replaces the object at `id` with the given payload and
    /// taint, clearing its sync marks (the object is by definition in sync
    /// after being applied from a delta).
    ///
    /// `id` must be an existing object or the next allocation slot: DSM
    /// deltas ship new objects in allocation order, so ids stay consistent
    /// across endpoints. A gap indicates a corrupted delta.
    pub fn apply_object(
        &mut self,
        id: ObjId,
        kind: HeapKind,
        taint: TaintSet,
    ) -> Result<(), VmError> {
        let idx = id.0 as usize;
        if idx < self.objects.len() {
            self.allocated_bytes += kind.byte_size();
            self.objects[idx] = HeapObj { kind, taint, fresh: false, dirty: 0 };
            Ok(())
        } else if idx == self.objects.len() {
            let new_id = self.alloc(kind);
            debug_assert_eq!(new_id, id);
            let obj = &mut self.objects[idx];
            obj.taint = taint;
            obj.fresh = false;
            Ok(())
        } else {
            Err(VmError::BadObjId { obj: id })
        }
    }

    /// Applies a partial field update (a dirty-field delta entry) without
    /// touching taint or other fields.
    pub fn apply_fields(&mut self, id: ObjId, updates: &[(u16, Value)]) -> Result<(), VmError> {
        for &(index, value) in updates {
            self.field_set(id, index, value)?;
        }
        // The entries came from a sync; they are not locally dirty.
        if let Ok(obj) = self.get_mut(id) {
            obj.dirty = 0;
        }
        Ok(())
    }

    /// The intern table (string-pool index → object id), shipped as part of
    /// DSM syncs so `ConstS` resolves identically on both endpoints.
    pub fn intern_table(&self) -> &[Option<ObjId>] {
        &self.intern
    }

    /// Replaces the intern table (applied from a DSM delta).
    pub fn set_intern_table(&mut self, table: Vec<Option<ObjId>>) {
        self.intern = table;
    }

    /// Clears all fresh/dirty marks; called by the DSM layer after a sync.
    pub fn clear_sync_marks(&mut self) {
        for obj in &mut self.objects {
            obj.fresh = false;
            obj.dirty = 0;
        }
    }

    /// Iterates `(id, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &HeapObj)> {
        self.objects.iter().enumerate().map(|(i, o)| (ObjId(i as u32), o))
    }

    /// Iterates objects created or modified since the last sync.
    pub fn iter_unsynced(&self) -> impl Iterator<Item = (ObjId, &HeapObj)> {
        self.iter().filter(|(_, o)| o.fresh || o.is_dirty())
    }

    /// Zeroes every object payload in place and drops all taint — the
    /// guard's kill-time teardown. A killed guest's node heap must hold no
    /// cor bytes for the §5.1 memory-dump attacker to find, so string
    /// contents are overwritten with NULs (same length, so byte accounting
    /// and object ids stay stable), array elements are zeroed, and object
    /// fields are nulled. The intern table is cleared because interned
    /// constants no longer match their pool entries.
    pub fn scrub(&mut self) {
        for obj in &mut self.objects {
            match &mut obj.kind {
                HeapKind::Str(s) => {
                    *s = "\0".repeat(s.len());
                }
                HeapKind::Arr(v) => {
                    for slot in v.iter_mut() {
                        *slot = Value::Int(0);
                    }
                }
                HeapKind::Obj { fields, .. } => {
                    for slot in fields.iter_mut() {
                        *slot = Value::Null;
                    }
                }
            }
            obj.taint = TaintSet::EMPTY;
            obj.fresh = false;
            obj.dirty = 0;
        }
        self.intern.clear();
    }

    /// Raw byte scan of the whole heap for `needle` — the attacker's
    /// memory-dump search from the paper's motivation (§2.1). Returns the
    /// ids of objects whose payload contains the needle.
    pub fn scan_for_bytes(&self, needle: &str) -> Vec<ObjId> {
        if needle.is_empty() {
            return Vec::new();
        }
        self.iter()
            .filter(|(_, o)| match &o.kind {
                HeapKind::Str(s) => s.contains(needle),
                // Arrays of char codes are also searchable residue.
                HeapKind::Arr(v) => {
                    let bytes: String = v
                        .iter()
                        .filter_map(|x| match x {
                            Value::Int(i) if (1..=0x10FFFF).contains(i) => {
                                char::from_u32(*i as u32)
                            }
                            _ => None,
                        })
                        .collect();
                    bytes.contains(needle)
                }
                HeapKind::Obj { .. } => false,
            })
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_taint::Label;

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new();
        let s = h.alloc_str("hi");
        let a = h.alloc_arr(3);
        let o = h.alloc_obj(0, 2);
        assert_eq!(h.len(), 3);
        assert_eq!(h.str_value(s).unwrap(), "hi");
        assert_eq!(h.arr_len(a).unwrap(), 3);
        assert_eq!(h.field_get(o, 0).unwrap(), Value::Null);
    }

    #[test]
    fn wrong_kind_errors() {
        let mut h = Heap::new();
        let s = h.alloc_str("hi");
        assert!(matches!(h.arr_len(s), Err(VmError::WrongHeapKind { .. })));
        assert!(matches!(h.field_get(s, 0), Err(VmError::WrongHeapKind { .. })));
        assert!(matches!(h.get(ObjId(99)), Err(VmError::BadObjId { .. })));
    }

    #[test]
    fn bounds_checks() {
        let mut h = Heap::new();
        let a = h.alloc_arr(2);
        assert!(matches!(h.arr_get(a, 2), Err(VmError::IndexOutOfBounds { .. })));
        assert!(matches!(h.arr_get(a, -1), Err(VmError::IndexOutOfBounds { .. })));
        let o = h.alloc_obj(0, 1);
        assert!(matches!(h.field_set(o, 5, Value::Int(1)), Err(VmError::BadFieldIndex { .. })));
    }

    #[test]
    fn dirty_tracking() {
        let mut h = Heap::new();
        let o = h.alloc_obj(0, 2);
        let a = h.alloc_arr(1);
        h.clear_sync_marks();
        assert_eq!(h.iter_unsynced().count(), 0);
        h.field_set(o, 1, Value::Int(5)).unwrap();
        h.arr_set(a, 0, Value::Int(7)).unwrap();
        let unsynced: Vec<ObjId> = h.iter_unsynced().map(|(id, _)| id).collect();
        assert_eq!(unsynced, vec![o, a]);
        assert_eq!(h.get(o).unwrap().dirty, 0b10);
    }

    #[test]
    fn fresh_objects_are_unsynced() {
        let mut h = Heap::new();
        h.clear_sync_marks();
        let o = h.alloc_str("new");
        assert_eq!(h.iter_unsynced().map(|(id, _)| id).collect::<Vec<_>>(), vec![o]);
    }

    #[test]
    fn clone_preserves_taint() {
        let mut h = Heap::new();
        let t = Label::new(2).unwrap().as_set();
        let s = h.alloc_str_tainted("secret99", t);
        let c = h.clone_obj(s).unwrap();
        assert_ne!(s, c);
        assert_eq!(h.taint_of(c).unwrap(), t);
        assert_eq!(h.str_value(c).unwrap(), "secret99");
    }

    #[test]
    fn interning_reuses_objects() {
        let mut h = Heap::new();
        let a = h.intern_str(0, "x");
        let b = h.intern_str(0, "x");
        assert_eq!(a, b);
        let c = h.intern_str(3, "y");
        assert_ne!(a, c);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn scan_finds_string_and_char_array_residue() {
        let mut h = Heap::new();
        h.alloc_str("prefix-hunter2-suffix");
        let a = h.alloc_arr(7);
        for (i, ch) in "hunter2".chars().enumerate() {
            h.arr_set(a, i as i64, Value::Int(ch as i64)).unwrap();
        }
        h.alloc_str("innocuous");
        let hits = h.scan_for_bytes("hunter2");
        assert_eq!(hits.len(), 2);
        assert!(h.scan_for_bytes("absent").is_empty());
        assert!(h.scan_for_bytes("").is_empty());
    }

    #[test]
    fn apply_object_appends_and_replaces() {
        let mut h = Heap::new();
        let a = h.alloc_str("old");
        // Replace existing.
        h.apply_object(a, HeapKind::Str("new".into()), TaintSet::EMPTY).unwrap();
        assert_eq!(h.str_value(a).unwrap(), "new");
        assert!(!h.get(a).unwrap().fresh);
        // Append at next slot.
        let next = ObjId(1);
        h.apply_object(next, HeapKind::Str("appended".into()), Label::new(1).unwrap().as_set())
            .unwrap();
        assert_eq!(h.str_value(next).unwrap(), "appended");
        assert!(h.taint_of(next).unwrap().is_tainted());
        assert!(!h.get(next).unwrap().fresh, "applied objects are in sync");
        // Gap is rejected.
        assert!(matches!(
            h.apply_object(ObjId(9), HeapKind::Str("gap".into()), TaintSet::EMPTY),
            Err(VmError::BadObjId { .. })
        ));
    }

    #[test]
    fn apply_fields_updates_without_dirtying() {
        let mut h = Heap::new();
        let o = h.alloc_obj(0, 3);
        h.clear_sync_marks();
        h.apply_fields(o, &[(0, Value::Int(1)), (2, Value::Int(3))]).unwrap();
        assert_eq!(h.field_get(o, 0).unwrap(), Value::Int(1));
        assert_eq!(h.field_get(o, 2).unwrap(), Value::Int(3));
        assert!(!h.get(o).unwrap().is_dirty());
    }

    #[test]
    fn intern_table_round_trip() {
        // Sender interns pool entry 2 -> some object; after a sync the
        // receiver holds the same objects *and* the same table, so ConstS
        // resolves without a fresh allocation.
        let mut h = Heap::new();
        h.alloc_str("pad0");
        h.alloc_str("pad1");
        let interned = h.intern_str(2, "x");
        let table = h.intern_table().to_vec();

        let mut h2 = Heap::new();
        h2.alloc_str("pad0");
        h2.alloc_str("pad1");
        h2.alloc_str("x"); // delta shipped the interned object too
        h2.set_intern_table(table);
        assert_eq!(h2.intern_str(2, "x"), interned, "table entry reused, no new alloc");
        assert_eq!(h2.len(), 3);
    }

    #[test]
    fn scrub_removes_all_residue_and_taint() {
        let mut h = Heap::new();
        let t = Label::new(3).unwrap().as_set();
        h.alloc_str_tainted("hunter2-the-cor", t);
        let a = h.alloc_arr(7);
        for (i, ch) in "hunter2".chars().enumerate() {
            h.arr_set(a, i as i64, Value::Int(ch as i64)).unwrap();
        }
        let o = h.alloc_obj(0, 1);
        h.field_set(o, 0, Value::Int(99)).unwrap();
        h.intern_str(0, "hunter2");
        let before = (h.len(), h.allocated_bytes());
        assert!(!h.scan_for_bytes("hunter2").is_empty());

        h.scrub();
        assert!(h.scan_for_bytes("hunter2").is_empty(), "scrubbed heap holds no residue");
        assert!(h.iter().all(|(_, o)| o.taint.is_empty()), "scrub drops taint");
        assert_eq!((h.len(), h.allocated_bytes()), before, "scrub keeps shape and accounting");
        assert!(h.intern_table().is_empty(), "stale intern entries are dropped");
        assert_eq!(h.field_get(o, 0).unwrap(), Value::Null);
    }

    #[test]
    fn taint_union_helpers() {
        let mut h = Heap::new();
        let s = h.alloc_str("v");
        let l1 = Label::new(1).unwrap();
        let l2 = Label::new(2).unwrap();
        h.add_taint(s, l1.as_set()).unwrap();
        h.add_taint(s, l2.as_set()).unwrap();
        assert_eq!(h.taint_of(s).unwrap().len(), 2);
        h.set_taint(s, TaintSet::EMPTY).unwrap();
        assert!(h.taint_of(s).unwrap().is_empty());
    }
}
