//! VM error type.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::ObjId;

/// An execution error raised by the interpreter.
///
/// Errors indicate a malformed program or a bug in an embedder-provided
/// native, not a recoverable application condition; the runtime layer
/// surfaces them as failed app runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum VmError {
    /// Popped or peeked an empty operand stack.
    StackUnderflow {
        /// Function being executed.
        func: String,
        /// Instruction index within it.
        pc: usize,
    },
    /// A value had the wrong type for the instruction.
    TypeMismatch {
        /// Function being executed.
        func: String,
        /// Instruction index within it.
        pc: usize,
        /// The type the instruction required.
        expected: &'static str,
        /// The type actually found.
        found: &'static str,
    },
    /// A reference pointed at no live heap object.
    BadObjId {
        /// The dangling reference.
        obj: ObjId,
    },
    /// A field index was out of range for the object's class.
    BadFieldIndex {
        /// The object accessed.
        obj: ObjId,
        /// The out-of-range field index.
        index: u16,
        /// The object's field count.
        len: usize,
    },
    /// An array index was out of bounds.
    IndexOutOfBounds {
        /// The array (or string) accessed.
        obj: ObjId,
        /// The out-of-range index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// Function being executed.
        func: String,
        /// Instruction index within it.
        pc: usize,
    },
    /// A local-variable slot index was out of range.
    BadLocal {
        /// Function being executed.
        func: String,
        /// Instruction index within it.
        pc: usize,
        /// The out-of-range local slot.
        index: u16,
    },
    /// A jump target fell outside the function body.
    BadJump {
        /// Function being executed.
        func: String,
        /// Instruction index within it.
        pc: usize,
        /// The invalid jump target.
        target: i64,
    },
    /// Referenced a function id not present in the image.
    NoSuchFunction {
        /// The unknown function id.
        id: u32,
    },
    /// Referenced a string-pool index not present in the image.
    NoSuchString {
        /// The unknown pool index.
        index: u32,
    },
    /// Referenced a class id not present in the image.
    NoSuchClass {
        /// The unknown class id.
        id: u32,
    },
    /// Referenced a native id not present in the image's native table.
    NoSuchNative {
        /// The unknown native-table id.
        id: u32,
    },
    /// The embedder has no binding for a named native.
    UnboundNative {
        /// The unbound native's name.
        name: String,
    },
    /// A native rejected its arguments or failed internally.
    NativeError {
        /// The native's name.
        name: String,
        /// What went wrong.
        message: String,
    },
    /// The machine was resumed after halting or erroring.
    NotRunnable {
        /// The machine's actual status.
        status: &'static str,
    },
    /// Executed a `MonitorExit` without holding the monitor.
    MonitorStateError {
        /// The monitor's object.
        obj: ObjId,
    },
    /// Operated on an object of an unexpected heap kind.
    WrongHeapKind {
        /// The object accessed.
        obj: ObjId,
        /// The kind the instruction required.
        expected: &'static str,
        /// The object's actual kind.
        found: &'static str,
    },
    /// A string operation received an invalid argument (e.g. negative
    /// substring bounds).
    BadStringOp {
        /// What went wrong.
        message: String,
    },
    /// The machine has no active frame where one was required (malformed
    /// bytecode or a machine resumed after its stack was torn down).
    NoFrame,
    /// The heap grew past the guard policy's quota.
    HeapQuotaExceeded {
        /// Live objects at the time of the violation.
        objects: u64,
        /// Allocated payload bytes at the time of the violation.
        bytes: u64,
    },
    /// The call stack grew past the guard policy's depth limit.
    CallDepthExceeded {
        /// The offending stack depth.
        depth: usize,
    },
    /// A native was handed fewer argument taint slots than arguments.
    /// Defaulting the missing shadow to "untainted" would silently drop
    /// labels, so the mismatch is a hard error: taint propagation fails
    /// closed instead of open.
    TaintSlotMismatch {
        /// The argument index whose taint slot was missing.
        index: usize,
        /// How many argument values were supplied.
        args: usize,
        /// How many taint slots were supplied.
        taints: usize,
    },
    /// A compiled-tier image was executed against an [`crate::AppImage`]
    /// it was not compiled from (the function shapes disagree).
    CompiledImageMismatch,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StackUnderflow { func, pc } => {
                write!(f, "operand stack underflow in {func} at pc {pc}")
            }
            VmError::TypeMismatch { func, pc, expected, found } => {
                write!(f, "type mismatch in {func} at pc {pc}: expected {expected}, found {found}")
            }
            VmError::BadObjId { obj } => write!(f, "dangling object reference {obj:?}"),
            VmError::BadFieldIndex { obj, index, len } => {
                write!(f, "field index {index} out of range for {obj:?} ({len} fields)")
            }
            VmError::IndexOutOfBounds { obj, index, len } => {
                write!(f, "index {index} out of bounds for {obj:?} (len {len})")
            }
            VmError::DivisionByZero { func, pc } => {
                write!(f, "division by zero in {func} at pc {pc}")
            }
            VmError::BadLocal { func, pc, index } => {
                write!(f, "bad local slot {index} in {func} at pc {pc}")
            }
            VmError::BadJump { func, pc, target } => {
                write!(f, "jump to {target} out of range in {func} at pc {pc}")
            }
            VmError::NoSuchFunction { id } => write!(f, "no function with id {id}"),
            VmError::NoSuchString { index } => write!(f, "no string-pool entry {index}"),
            VmError::NoSuchClass { id } => write!(f, "no class with id {id}"),
            VmError::NoSuchNative { id } => write!(f, "no native-table entry {id}"),
            VmError::UnboundNative { name } => write!(f, "native '{name}' is not bound"),
            VmError::NativeError { name, message } => {
                write!(f, "native '{name}' failed: {message}")
            }
            VmError::NotRunnable { status } => {
                write!(f, "machine is not runnable (status: {status})")
            }
            VmError::MonitorStateError { obj } => {
                write!(f, "monitor-exit on {obj:?} without a matching enter")
            }
            VmError::WrongHeapKind { obj, expected, found } => {
                write!(f, "{obj:?} is a {found}, expected a {expected}")
            }
            VmError::BadStringOp { message } => write!(f, "bad string operation: {message}"),
            VmError::NoFrame => write!(f, "no active frame"),
            VmError::HeapQuotaExceeded { objects, bytes } => {
                write!(f, "heap quota exceeded: {objects} objects, {bytes} bytes")
            }
            VmError::CallDepthExceeded { depth } => {
                write!(f, "call depth limit exceeded at depth {depth}")
            }
            VmError::TaintSlotMismatch { index, args, taints } => {
                write!(
                    f,
                    "argument {index} has no taint slot ({args} args, {taints} taint slots); \
                     refusing to default to untainted"
                )
            }
            VmError::CompiledImageMismatch => {
                write!(f, "compiled tier image does not match the app image it is run against")
            }
        }
    }
}

impl std::error::Error for VmError {}
