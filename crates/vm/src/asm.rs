//! A text assembler for [`AppImage`]s.
//!
//! The builder API ([`crate::ProgramBuilder`]) is convenient from Rust, but
//! a downstream user writing a test app or an attack probe shouldn't need
//! to recompile the workspace. This module assembles a small line-oriented
//! text format into an image (and [`crate::disasm`] prints one back).
//!
//! # Format
//!
//! ```text
//! ; comment (also '#')
//! .class Point x y                 ; class with fields in slot order
//! .string greeting "hello world"   ; named string-pool entry
//! .native show "ui.show"           ; named native import
//!
//! .func main args=0 locals=2       ; first .func is the entry point
//!   const_s greeting
//!   call_native show 1
//!   pop
//!   const_i 41
//!   const_i 1
//!   add
//!   halt
//! .end
//! ```
//!
//! Labels are `name:` on their own line; jumps reference them by name.
//! Operand mnemonics mirror the [`Insn`] variants (lower snake case).
//! `.entry <name>` selects the entry function (default: the first
//! `.func`).

use std::collections::HashMap;

use crate::error::VmError;
use crate::insn::Insn;
use crate::program::{AppImage, ClassDef, ClassId, FuncId, Function, NativeId, StrIdx};

/// An assembler diagnostic, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles `source` into an image named `name`. The entry point is the
/// first `.func` unless `.entry` names another.
pub fn assemble(name: &str, source: &str) -> Result<AppImage, AsmError> {
    Assembler::new(name).run(source)
}

struct PendingFunc {
    name: String,
    n_args: u16,
    n_locals: u16,
    code: Vec<Insn>,
    labels: HashMap<String, u32>,
    /// (code index, label name, line) fixups.
    fixups: Vec<(usize, String, usize)>,
    start_line: usize,
}

struct Assembler {
    image_name: String,
    strings: Vec<String>,
    string_names: HashMap<String, StrIdx>,
    natives: Vec<String>,
    native_names: HashMap<String, NativeId>,
    classes: Vec<ClassDef>,
    class_names: HashMap<String, ClassId>,
    functions: Vec<Function>,
    func_names: HashMap<String, FuncId>,
    current: Option<PendingFunc>,
    entry: Option<FuncId>,
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

/// Splits a line into tokens, honouring one double-quoted string literal.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ';' | '#' => break,
            '"' => {
                chars.next();
                let mut s = String::from("\"");
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    s.push(c);
                }
                out.push(s);
            }
            _ => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == ';' || c == '#' {
                        break;
                    }
                    s.push(c);
                    chars.next();
                }
                out.push(s);
            }
        }
    }
    out
}

impl Assembler {
    fn new(name: &str) -> Self {
        Assembler {
            image_name: name.to_owned(),
            strings: Vec::new(),
            string_names: HashMap::new(),
            natives: Vec::new(),
            native_names: HashMap::new(),
            classes: Vec::new(),
            class_names: HashMap::new(),
            functions: Vec::new(),
            func_names: HashMap::new(),
            current: None,
            entry: None,
        }
    }

    fn run(mut self, source: &str) -> Result<AppImage, AsmError> {
        // Pass 1: pre-register every .func so forward calls resolve.
        for raw in source.lines() {
            let tokens = tokenize(raw);
            if tokens.first().map(String::as_str) == Some(".func") {
                if let Some(name) = tokens.get(1) {
                    if !self.func_names.contains_key(name) {
                        let id = FuncId(self.functions.len() as u32);
                        self.functions.push(Function {
                            name: name.clone(),
                            n_args: 0,
                            n_locals: 0,
                            code: Vec::new(),
                        });
                        self.func_names.insert(name.clone(), id);
                    }
                }
            }
        }
        // Pass 2: assemble.
        for (idx, raw) in source.lines().enumerate() {
            let line_no = idx + 1;
            let tokens = tokenize(raw);
            if tokens.is_empty() {
                continue;
            }
            self.line(&tokens, line_no)?;
        }
        if let Some(f) = &self.current {
            return Err(err(f.start_line, format!("unterminated .func {}", f.name)));
        }
        if self.functions.is_empty() {
            return Err(err(1, "no .func defined"));
        }
        Ok(AppImage {
            name: self.image_name,
            entry: self.entry.unwrap_or(FuncId(0)),
            functions: self.functions,
            classes: self.classes,
            strings: self.strings,
            natives: self.natives,
        })
    }

    fn line(&mut self, tokens: &[String], line: usize) -> Result<(), AsmError> {
        let head = tokens[0].as_str();
        match head {
            ".class" => {
                if tokens.len() < 2 {
                    return Err(err(line, ".class needs a name"));
                }
                let id = ClassId(self.classes.len() as u32);
                self.classes
                    .push(ClassDef { name: tokens[1].clone(), fields: tokens[2..].to_vec() });
                self.class_names.insert(tokens[1].clone(), id);
                Ok(())
            }
            ".string" => {
                if tokens.len() != 3 {
                    return Err(err(line, ".string needs: .string <name> \"<value>\""));
                }
                let value = tokens[2]
                    .strip_prefix('"')
                    .ok_or_else(|| err(line, "string value must be quoted"))?;
                let idx = StrIdx(self.strings.len() as u32);
                self.strings.push(value.to_owned());
                self.string_names.insert(tokens[1].clone(), idx);
                Ok(())
            }
            ".native" => {
                if tokens.len() != 3 {
                    return Err(err(line, ".native needs: .native <name> \"<import>\""));
                }
                let value = tokens[2]
                    .strip_prefix('"')
                    .ok_or_else(|| err(line, "native import must be quoted"))?;
                let id = NativeId(self.natives.len() as u32);
                self.natives.push(value.to_owned());
                self.native_names.insert(tokens[1].clone(), id);
                Ok(())
            }
            ".entry" => {
                let name = tokens.get(1).ok_or_else(|| err(line, ".entry needs a name"))?;
                let id = self
                    .func_names
                    .get(name)
                    .ok_or_else(|| err(line, format!("unknown entry function '{name}'")))?;
                self.entry = Some(*id);
                Ok(())
            }
            ".func" => {
                if self.current.is_some() {
                    return Err(err(line, "nested .func (missing .end?)"));
                }
                if tokens.len() < 2 {
                    return Err(err(line, ".func needs a name"));
                }
                let mut n_args = 0u16;
                let mut n_locals = 0u16;
                for t in &tokens[2..] {
                    if let Some(v) = t.strip_prefix("args=") {
                        n_args = v.parse().map_err(|_| err(line, "bad args="))?;
                    } else if let Some(v) = t.strip_prefix("locals=") {
                        n_locals = v.parse().map_err(|_| err(line, "bad locals="))?;
                    } else {
                        return Err(err(line, format!("unknown .func attribute '{t}'")));
                    }
                }
                if n_locals < n_args {
                    n_locals = n_args;
                }
                // The slot was pre-registered in pass 1; duplicate
                // definitions are an error.
                let id = self.func_names[&tokens[1]];
                if !self.functions[id.0 as usize].code.is_empty() {
                    return Err(err(line, format!("duplicate .func '{}'", tokens[1])));
                }
                self.current = Some(PendingFunc {
                    name: tokens[1].clone(),
                    n_args,
                    n_locals,
                    code: Vec::new(),
                    labels: HashMap::new(),
                    fixups: Vec::new(),
                    start_line: line,
                });
                Ok(())
            }
            ".end" => {
                let mut f = self.current.take().ok_or_else(|| err(line, ".end outside a .func"))?;
                for (at, label, fix_line) in std::mem::take(&mut f.fixups) {
                    let target = *f
                        .labels
                        .get(&label)
                        .ok_or_else(|| err(fix_line, format!("unknown label '{label}'")))?;
                    f.code[at] = match f.code[at] {
                        Insn::Jump(_) => Insn::Jump(target),
                        Insn::JumpIfZero(_) => Insn::JumpIfZero(target),
                        Insn::JumpIfNonZero(_) => Insn::JumpIfNonZero(target),
                        other => unreachable!("fixup on {other:?}"),
                    };
                }
                let id = self.func_names[&f.name];
                self.functions[id.0 as usize] =
                    Function { name: f.name, n_args: f.n_args, n_locals: f.n_locals, code: f.code };
                Ok(())
            }
            _ if head.ends_with(':') && tokens.len() == 1 => {
                let f = self.current.as_mut().ok_or_else(|| err(line, "label outside a .func"))?;
                let name = head.trim_end_matches(':').to_owned();
                if f.labels.insert(name.clone(), f.code.len() as u32).is_some() {
                    return Err(err(line, format!("duplicate label '{name}'")));
                }
                Ok(())
            }
            _ => self.instruction(tokens, line),
        }
    }

    fn instruction(&mut self, tokens: &[String], line: usize) -> Result<(), AsmError> {
        // Resolve operand lookups before borrowing the function mutably.
        let insn = self.parse_insn(tokens, line)?;
        let f = self.current.as_mut().ok_or_else(|| err(line, "instruction outside a .func"))?;
        if let Some((_, label)) = insn_jump_label(&insn, tokens) {
            f.fixups.push((f.code.len(), label, line));
        }
        f.code.push(insn);
        Ok(())
    }

    fn int_arg(&self, tokens: &[String], i: usize, line: usize) -> Result<i64, AsmError> {
        tokens
            .get(i)
            .ok_or_else(|| err(line, "missing operand"))?
            .parse()
            .map_err(|_| err(line, format!("bad integer '{}'", tokens[i])))
    }

    fn parse_insn(&self, tokens: &[String], line: usize) -> Result<Insn, AsmError> {
        let op = tokens[0].as_str();
        let insn = match op {
            "nop" => Insn::Nop,
            "halt" => Insn::Halt,
            "dup" => Insn::Dup,
            "pop" => Insn::Pop,
            "swap" => Insn::Swap,
            "add" => Insn::Add,
            "sub" => Insn::Sub,
            "mul" => Insn::Mul,
            "div" => Insn::Div,
            "rem" => Insn::Rem,
            "neg" => Insn::Neg,
            "and" => Insn::BitAnd,
            "or" => Insn::BitOr,
            "xor" => Insn::BitXor,
            "shl" => Insn::Shl,
            "shr" => Insn::Shr,
            "eq" => Insn::CmpEq,
            "ne" => Insn::CmpNe,
            "lt" => Insn::CmpLt,
            "le" => Insn::CmpLe,
            "gt" => Insn::CmpGt,
            "ge" => Insn::CmpGe,
            "i2d" => Insn::I2D,
            "d2i" => Insn::D2I,
            "ret" => Insn::Ret,
            "ret_void" => Insn::RetVoid,
            "clone" => Insn::CloneObj,
            "new_arr" => Insn::NewArr,
            "arr_load" => Insn::ArrLoad,
            "arr_store" => Insn::ArrStore,
            "arr_len" => Insn::ArrLen,
            "arr_copy" => Insn::ArrCopy,
            "concat" => Insn::StrConcat,
            "char_at" => Insn::StrCharAt,
            "str_len" => Insn::StrLen,
            "substr" => Insn::StrSub,
            "index_of" => Insn::StrIndexOf,
            "str_eq" => Insn::StrEq,
            "str_from_int" => Insn::StrFromInt,
            "str_from_char" => Insn::StrFromChar,
            "monitor_enter" => Insn::MonitorEnter,
            "monitor_exit" => Insn::MonitorExit,
            "pin_lock" => Insn::PinLock,
            "const_null" => Insn::ConstNull,
            "const_i" => Insn::ConstI(self.int_arg(tokens, 1, line)?),
            "const_d" => {
                let v: f64 = tokens
                    .get(1)
                    .ok_or_else(|| err(line, "missing operand"))?
                    .parse()
                    .map_err(|_| err(line, "bad float"))?;
                Insn::ConstD(v)
            }
            "const_s" => {
                let name = tokens.get(1).ok_or_else(|| err(line, "const_s needs a name"))?;
                let idx = self
                    .string_names
                    .get(name)
                    .ok_or_else(|| err(line, format!("unknown string '{name}'")))?;
                Insn::ConstS(*idx)
            }
            "load" => Insn::Load(self.int_arg(tokens, 1, line)? as u16),
            "store" => Insn::Store(self.int_arg(tokens, 1, line)? as u16),
            "get_field" => Insn::GetField(self.int_arg(tokens, 1, line)? as u16),
            "put_field" => Insn::PutField(self.int_arg(tokens, 1, line)? as u16),
            "new" => {
                let name = tokens.get(1).ok_or_else(|| err(line, "new needs a class"))?;
                let id = self
                    .class_names
                    .get(name)
                    .ok_or_else(|| err(line, format!("unknown class '{name}'")))?;
                Insn::New(*id)
            }
            "call" => {
                let name = tokens.get(1).ok_or_else(|| err(line, "call needs a function"))?;
                let id = self
                    .func_names
                    .get(name)
                    .ok_or_else(|| err(line, format!("unknown function '{name}'")))?;
                Insn::Call(*id)
            }
            "call_native" => {
                let name = tokens.get(1).ok_or_else(|| err(line, "call_native needs a native"))?;
                let id = self
                    .native_names
                    .get(name)
                    .ok_or_else(|| err(line, format!("unknown native '{name}'")))?;
                let argc = self.int_arg(tokens, 2, line)? as u8;
                Insn::CallNative(*id, argc)
            }
            // Jump targets are patched at .end; 0 is a placeholder.
            "jmp" => Insn::Jump(u32::MAX),
            "jz" => Insn::JumpIfZero(u32::MAX),
            "jnz" => Insn::JumpIfNonZero(u32::MAX),
            other => return Err(err(line, format!("unknown instruction '{other}'"))),
        };
        if matches!(insn, Insn::Jump(_) | Insn::JumpIfZero(_) | Insn::JumpIfNonZero(_))
            && tokens.len() < 2
        {
            return Err(err(line, format!("'{op}' needs a label")));
        }
        Ok(insn)
    }
}

/// Returns the fixup label for jump mnemonics.
fn insn_jump_label(insn: &Insn, tokens: &[String]) -> Option<((), String)> {
    match insn {
        Insn::Jump(_) | Insn::JumpIfZero(_) | Insn::JumpIfNonZero(_) => {
            tokens.get(1).map(|l| ((), l.clone()))
        }
        _ => None,
    }
}

/// Convenience: assemble and run a source program with no natives,
/// returning its result value. Intended for tests and quick exploration.
pub fn assemble_and_run(name: &str, source: &str) -> Result<crate::Value, VmError> {
    let image =
        assemble(name, source).map_err(|e| VmError::BadStringOp { message: e.to_string() })?;
    let mut machine = crate::Machine::new();
    let mut host = crate::interp::NullHost;
    let mut engine = tinman_taint::TaintEngine::none();
    match crate::interp::run(
        &mut machine,
        &image,
        &mut host,
        &mut engine,
        crate::interp::ExecConfig::client(),
    )? {
        crate::interp::ExecEvent::Halted(v) => Ok(v),
        other => Err(VmError::BadStringOp { message: format!("did not halt: {other:?}") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn assembles_arithmetic() {
        let v = assemble_and_run(
            "t",
            r#"
            .func main args=0 locals=0
              const_i 6
              const_i 7
              mul
              halt
            .end
            "#,
        )
        .unwrap();
        assert_eq!(v, Value::Int(42));
    }

    #[test]
    fn labels_and_loops() {
        // Sum 1..=10 = 55.
        let v = assemble_and_run(
            "t",
            r#"
            .func main args=0 locals=2
              const_i 10
              store 0       ; i
              const_i 0
              store 1       ; acc
            top:
              load 0
              jz done
              load 1
              load 0
              add
              store 1
              load 0
              const_i 1
              sub
              store 0
              jmp top
            done:
              load 1
              halt
            .end
            "#,
        )
        .unwrap();
        assert_eq!(v, Value::Int(55));
    }

    #[test]
    fn strings_classes_and_calls() {
        let v = assemble_and_run(
            "t",
            r#"
            .class Box v w
            .string hi "hello "
            .string there "world"

            .func greet args=0 locals=1
              const_s hi
              const_s there
              concat
              str_len
              ret
            .end

            .func main args=0 locals=1
              new Box
              store 0
              load 0
              call greet
              put_field 0
              load 0
              get_field 0
              halt
            .end
            "#,
        )
        .unwrap();
        assert_eq!(v, Value::Int(11));
    }

    #[test]
    fn recursion_works() {
        // fib(10) = 55, with call-before-definition resolved by
        // pre-registration.
        let v = assemble_and_run(
            "t",
            r#"
            .func main args=0 locals=0
              const_i 10
              call fib
              halt
            .end

            .func fib args=1 locals=1
              load 0
              const_i 2
              lt
              jz recurse
              load 0
              ret
            recurse:
              load 0
              const_i 1
              sub
              call fib
              load 0
              const_i 2
              sub
              call fib
              add
              ret
            .end
            "#,
        )
        .unwrap();
        assert_eq!(v, Value::Int(55));
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let e = assemble("t", ".func main args=0 locals=0\n  bogus_insn\n.end").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus_insn"));

        let e = assemble("t", ".func main args=0 locals=0\n  jmp nowhere\n.end").unwrap_err();
        assert!(e.message.contains("nowhere"));

        let e = assemble("t", ".func main args=0 locals=0\n  nop").unwrap_err();
        assert!(e.message.contains("unterminated"));

        let e = assemble("t", "nop\n").unwrap_err();
        assert!(e.message.contains("outside a .func"));
    }

    #[test]
    fn comments_and_quoting() {
        let img = assemble(
            "t",
            r#"
            ; full-line comment
            .string s "has ; and # inside"   # trailing comment
            .func main args=0 locals=0
              const_s s    ; say it
              str_len
              halt
            .end
            "#,
        )
        .unwrap();
        assert_eq!(img.strings[0], "has ; and # inside");
    }

    #[test]
    fn first_func_is_entry() {
        let img = assemble(
            "t",
            ".func alpha args=0 locals=0\n halt\n.end\n.func beta args=0 locals=0\n halt\n.end",
        )
        .unwrap();
        assert_eq!(img.entry, FuncId(0));
        assert_eq!(img.functions[0].name, "alpha");
    }
}
