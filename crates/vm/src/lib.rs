#![warn(missing_docs)]
//! A small managed-runtime bytecode VM that stands in for Dalvik.
//!
//! TinMan's prototype modifies Android's Dalvik VM: it instruments data
//! movement for taint tracking, pauses execution when tainted placeholders
//! are touched, serializes the thread + heap state for COMET-style DSM
//! migration, and resumes on the trusted node. None of that machinery exists
//! in the Rust ecosystem, so this crate rebuilds the minimum managed runtime
//! with the properties the paper's mechanisms rely on:
//!
//! * a **heap/stack split** identical in kind to the JVM's — primitives live
//!   in stack slots, objects (strings, arrays, field records) live on a
//!   garbage-free heap — so the four taint-propagation classes of the
//!   paper's Table 2 arise naturally;
//! * **per-object taint labels** and **per-slot stack shadow labels**,
//!   updated through a pluggable [`tinman_taint::TaintEngine`];
//! * **suspendable execution**: the interpreter returns an [`ExecEvent`]
//!   instead of a value whenever offloading must intervene, leaving the
//!   machine state exactly at the triggering instruction so the other
//!   endpoint can re-execute it;
//! * **fully serializable machine state** (frames + heap + locks), which is
//!   what the DSM layer ships between the client and the trusted node;
//! * **dirty tracking** on heap writes, feeding the DSM's
//!   init-versus-dirty sync accounting (the paper's Table 3);
//! * an execution **cost model** (cycles per instruction) that drives the
//!   simulated clock and the Caffeinemark reproduction of Figure 13.
//!
//! Programs ("apps") are built with [`build::ProgramBuilder`] into an
//! [`AppImage`], the analogue of an Android dex file — including the SHA-256
//! image hash the trusted node uses for its app↔cor access-control binding.

pub mod asm;
pub mod build;
pub mod disasm;
pub mod error;
pub mod frame;
pub mod heap;
pub mod insn;
pub mod interp;
pub mod machine;
pub mod program;
pub mod tier;
pub mod value;

pub use asm::{assemble, assemble_and_run, AsmError};
pub use build::{FnBuilder, ProgramBuilder};
pub use disasm::{disassemble, disassemble_function};
pub use error::VmError;
pub use frame::Frame;
pub use heap::{Heap, HeapKind, HeapObj};
pub use insn::Insn;
pub use interp::{ExecConfig, ExecEvent, Interp, NativeCtx, NativeHost, NativeOutcome};
pub use machine::{ExecStats, Machine, MachineStatus};
pub use program::{AppImage, ClassDef, ClassId, FuncId, Function, NativeId, StrIdx};
pub use tier::{run_tiered, CompileStats, CompiledImage, ExecTier, PassPipeline, TierTelemetry};
pub use value::{ObjId, Value};
