//! The block executor.
//!
//! [`run`] is the tier's analogue of [`crate::interp::run`]: same events,
//! same errors, same machine bytes. The outer loop resolves the current
//! pc to a compiled block and checks the block's *entry preconditions* —
//! enough fuel for the whole block ([`BlockFuel::can_reserve`]), the
//! taint-idle counter can't cross its limit inside the block, the guard
//! budgets hold, and the operand stack is deep enough for every fast op.
//! If all hold, the block runs through a tight native loop that pays
//! fetch/dispatch/budget costs once per block; otherwise execution
//! *deoptimizes* — single instructions run through the interpreter's own
//! [`Interp::step`] (which also covers every opcode outside the fast
//! subset, all offload triggers, and all error paths) until the pc lands
//! on a block leader again.
//!
//! Equivalence notes embedded throughout: every fast op replicates the
//! interpreter's exact order of retirement (instrs / cycles / idle
//! counter), taint-engine reports, taint touches, and mutations — so that
//! any exit point (event, error, fuel) observes byte-identical state. The
//! frame's `pc` is materialized lazily: before every `Step` op, at every
//! control transfer, on every fast-op error, and at block fall-through.

use tinman_guard::BlockFuel;
use tinman_taint::{PropClass, TaintEngine, TaintSet};

use crate::error::VmError;
use crate::insn::Insn;
use crate::interp::{
    eval_binop, eval_compare, ArithErr, ExecConfig, ExecEvent, Interp, NativeHost, Step,
};
use crate::machine::{Machine, MachineStatus};
use crate::program::AppImage;
use crate::value::Value;

use super::decode::{is_cmp, BOp, Block, TOp};
use super::{CompiledImage, TierTelemetry};

/// Runs `machine` under the block tier until an event, exactly as
/// [`crate::interp::run`] would.
pub(crate) fn run<H: NativeHost>(
    machine: &mut Machine,
    image: &AppImage,
    compiled: &CompiledImage,
    host: &mut H,
    engine: &mut TaintEngine,
    config: ExecConfig,
    tel: &mut TierTelemetry,
) -> Result<ExecEvent, VmError> {
    if !machine.is_runnable() {
        return Err(VmError::NotRunnable { status: machine.status.name() });
    }
    if !compiled.matches(image) {
        // Usage error, caught before any machine mutation: the machine
        // stays runnable for a correctly compiled image (unlike execution
        // errors below, which fault it — exactly as the interpreter does).
        return Err(VmError::CompiledImageMismatch);
    }
    let mut it = Interp::new(machine, image, host, engine, config);
    if let Err(e) = it.ensure_started() {
        it.machine.status = MachineStatus::Faulted;
        return Err(e);
    }
    let mut fuel = BlockFuel::new(it.config.fuel);
    let r = drive(&mut it, compiled, &mut fuel, tel);
    if r.is_err() {
        it.machine.status = MachineStatus::Faulted;
    }
    r
}

/// The outer loop: block dispatch, preconditions, deopt stepping.
fn drive<H: NativeHost>(
    it: &mut Interp<'_, H>,
    compiled: &CompiledImage,
    fuel: &mut BlockFuel,
    tel: &mut TierTelemetry,
) -> Result<ExecEvent, VmError> {
    loop {
        let Some((fi, pc, depth)) =
            it.machine.frames.last().map(|f| (f.func.0 as usize, f.pc, f.stack.len()))
        else {
            // No frame: let the interpreter raise its exact NoFrame error.
            match step_one(it, fuel, tel)? {
                Some(ev) => return Ok(ev),
                None => continue,
            }
        };
        let Some(block) =
            compiled.funcs.get(fi).and_then(|cf| cf.block_index(pc).map(|bi| &cf.blocks[bi]))
        else {
            // Mid-block resume (a suspension point was not a leader),
            // pc == code len (implicit RetVoid), or a malformed func id:
            // step until the pc lands on a leader.
            match step_one(it, fuel, tel)? {
                Some(ev) => return Ok(ev),
                None => continue,
            }
        };

        // Entry preconditions: a native block run must not be able to hit
        // OutOfFuel, TaintIdle, or a guard-budget kill anywhere inside the
        // block (fast ops don't check them), and no fast op may underflow.
        let idle_ok = match it.config.taint_idle_limit {
            Some(limit) => {
                it.machine.stats.instrs_since_taint_use.saturating_add(block.retire) < limit
            }
            None => true,
        };
        let ok = fuel.can_reserve(block.retire)
            && idle_ok
            && depth >= block.entry_depth_req as usize
            && it.check_budgets().is_ok();
        if !ok {
            // Deoptimize: the interpreter decides — at its exact
            // instruction — whether the budget actually exhausts, the
            // idle event fires, or execution simply proceeds.
            tel.deopts += 1;
            match step_one(it, fuel, tel)? {
                Some(ev) => return Ok(ev),
                None => continue,
            }
        }
        debug_assert_eq!(block.start_pc as usize, pc, "block_at index must agree with the block");
        tel.block_runs += 1;
        if let Some(ev) = run_block(it, fuel, block, tel)? {
            return Ok(ev);
        }
    }
}

/// One iteration of the interpreter's run loop: fuel gate, step, budget
/// check, taint-idle check, event bookkeeping. Used for every deoptimized
/// instruction so the per-instruction semantics are the interpreter's by
/// construction.
fn step_one<H: NativeHost>(
    it: &mut Interp<'_, H>,
    fuel: &mut BlockFuel,
    tel: &mut TierTelemetry,
) -> Result<Option<ExecEvent>, VmError> {
    if !fuel.charge_one() {
        return Ok(Some(ExecEvent::OutOfFuel));
    }
    tel.stepped_insns += 1;
    match it.step()? {
        Step::Continue => {
            it.check_budgets()?;
            if let Some(limit) = it.config.taint_idle_limit {
                if it.machine.stats.instrs_since_taint_use >= limit && !it.machine.any_stack_taint()
                {
                    it.machine.stats.instrs_since_taint_use = 0;
                    return Ok(Some(ExecEvent::TaintIdle));
                }
            }
            Ok(None)
        }
        Step::Event(ev) => {
            if let ExecEvent::Halted(v) = &ev {
                it.machine.status = MachineStatus::Halted;
                it.machine.result = *v;
            }
            Ok(Some(ev))
        }
    }
}

/// How a fast-op burst ended.
enum BurstExit {
    /// The next op is a `Step` op; return to the dispatcher.
    NextIsStep,
    /// Fell off the last op; the caller writes the fall-through pc.
    Fall,
    /// A control op transferred; `pc` is already set.
    Control,
    /// A fast op failed; `pc` is set at the failing instruction.
    Fail(VmError),
}

/// Executes one block: fast ops natively, `Step` ops through the
/// interpreter.
fn run_block<H: NativeHost>(
    it: &mut Interp<'_, H>,
    fuel: &mut BlockFuel,
    block: &Block,
    tel: &mut TierTelemetry,
) -> Result<Option<ExecEvent>, VmError> {
    let ops = &block.ops;
    let mut i = 0;
    while i < ops.len() {
        if matches!(ops[i].op, TOp::Step(_)) {
            // Deoptimize for this one instruction: materialize the pc
            // (fast ops before it kept the pc lazy) and run the
            // interpreter's own step — triggers, migrate-backs, errors,
            // and complex opcodes all behave identically by construction.
            it.machine.frames.last_mut().expect("in-block ops never tear down the frame").pc =
                ops[i].pc as usize;
            match step_one(it, fuel, tel)? {
                Some(ev) => return Ok(Some(ev)),
                None => {
                    i += 1;
                    if i == ops.len() {
                        // A trailing Step op (call, ret, jump with an
                        // invalid target, …) maintained the pc itself.
                        return Ok(None);
                    }
                    continue;
                }
            }
        }
        match burst(it, fuel, ops, &mut i, tel) {
            BurstExit::NextIsStep => {}
            BurstExit::Fall => {
                it.machine.frames.last_mut().expect("frame alive").pc = block.end_pc as usize;
                return Ok(None);
            }
            BurstExit::Control => return Ok(None),
            BurstExit::Fail(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Executes consecutive fast ops starting at `ops[*i]` with the hot
/// borrows (frame, stats, engine) resolved once.
fn burst<H: NativeHost>(
    it: &mut Interp<'_, H>,
    fuel: &mut BlockFuel,
    ops: &[BOp],
    i: &mut usize,
    tel: &mut TierTelemetry,
) -> BurstExit {
    let Interp { machine, engine, .. } = it;
    let machine: &mut Machine = machine;
    let engine: &mut TaintEngine = engine;
    let Machine { frames, stats, .. } = machine;
    let fr = frames.last_mut().expect("in-block ops never tear down the frame");

    // Retire `n` source instructions costing `cycles`: fuel, instruction
    // count, taint-idle counter (saturating, as the interpreter's), cycle
    // charge — the interpreter's per-instruction preamble, batched.
    macro_rules! retire {
        ($n:expr, $cycles:expr) => {{
            fuel.spend($n);
            tel.fast_insns += $n;
            stats.instrs += $n;
            stats.instrs_since_taint_use = stats.instrs_since_taint_use.saturating_add($n);
            stats.cycles += $cycles;
        }};
    }
    // Taint-instrumentation surcharge (Interp::charge_taint).
    macro_rules! taint_extra {
        ($x:expr) => {{
            let x = $x;
            stats.cycles += x;
            stats.taint_cycles += x;
        }};
    }
    // Taint-touch note for the migrate-back-on-idle rule
    // (Interp::note_taint_touch).
    macro_rules! touch {
        ($t:expr) => {{
            if $t.is_tainted() {
                stats.instrs_since_taint_use = 0;
            }
        }};
    }
    // Pop guaranteed by the block's entry depth requirement.
    macro_rules! popv {
        () => {{
            match (fr.stack.pop(), fr.stack_taint.pop()) {
                (Some(v), Some(t)) => (v, t),
                _ => unreachable!("entry_depth_req guarantees fast-op operands"),
            }
        }};
    }
    // Fail with the pc pinned at the failing instruction, exactly where
    // the interpreter leaves it.
    macro_rules! fail {
        ($pc:expr, $err:expr) => {{
            fr.pc = $pc as usize;
            return BurstExit::Fail($err);
        }};
    }
    // Local-slot bounds check. The decoder proved slots against the
    // function's declared n_locals, but a handcrafted or migrated frame
    // may carry fewer slots — that must raise the interpreter's BadLocal.
    macro_rules! local_guard {
        ($slot:expr, $pc:expr) => {{
            if ($slot as usize) >= fr.locals.len() {
                fail!(
                    $pc,
                    VmError::BadLocal {
                        func: fr.func_name.clone(),
                        pc: $pc as usize,
                        index: $slot,
                    }
                );
            }
        }};
    }
    macro_rules! arith_fail {
        ($pc:expr, $e:expr) => {{
            let err = match $e {
                ArithErr::DivZero => {
                    VmError::DivisionByZero { func: fr.func_name.clone(), pc: $pc as usize }
                }
                ArithErr::Type { expected, found } => VmError::TypeMismatch {
                    func: fr.func_name.clone(),
                    pc: $pc as usize,
                    expected,
                    found,
                },
            };
            fail!($pc, err);
        }};
    }

    loop {
        let bop = &ops[*i];
        let pc = bop.pc;
        match bop.op {
            TOp::PushI { v, charge } => {
                retire!(charge.instrs, charge.cycles);
                if charge.s2s_empty > 0 {
                    // Batched replay of the folded instructions' empty
                    // stack→stack reports (bit-identical to issuing them
                    // one at a time — see the taint crate's batching test).
                    taint_extra!(engine.on_empty_moves(PropClass::StackToStack, charge.s2s_empty));
                }
                fr.push(Value::Int(v), TaintSet::EMPTY);
            }
            TOp::PushD(d) => {
                retire!(1, Insn::ConstD(0.0).base_cost());
                fr.push(Value::Double(d), TaintSet::EMPTY);
            }
            TOp::PushNull => {
                retire!(1, Insn::ConstNull.base_cost());
                fr.push(Value::Null, TaintSet::EMPTY);
            }
            TOp::ChargeOnly(charge) => {
                retire!(charge.instrs, charge.cycles);
                if charge.s2s_empty > 0 {
                    taint_extra!(engine.on_empty_moves(PropClass::StackToStack, charge.s2s_empty));
                }
            }
            TOp::LoadL(n) => {
                retire!(1, Insn::Load(0).base_cost());
                local_guard!(n, pc); // interpreter errors before the engine report
                let (v, t) = (fr.locals[n as usize], fr.local_taint[n as usize]);
                let out = engine.on_move(PropClass::StackToStack, t);
                taint_extra!(out.extra_cycles);
                touch!(t);
                fr.push(v, out.dst_taint);
            }
            TOp::StoreL(n) => {
                retire!(1, Insn::Store(0).base_cost());
                let (v, t) = popv!();
                let out = engine.on_move(PropClass::StackToStack, t);
                taint_extra!(out.extra_cycles);
                touch!(t);
                // Interpreter order: pop and engine report happen before
                // the slot bounds check (Store pops first).
                local_guard!(n, pc);
                fr.locals[n as usize] = v;
                fr.local_taint[n as usize] = out.dst_taint;
            }
            TOp::Dup => {
                retire!(1, Insn::Dup.base_cost());
                let (v, t) = (
                    *fr.stack.last().expect("entry_depth_req guarantees a peek operand"),
                    *fr.stack_taint.last().expect("taint shadow in lockstep"),
                );
                let out = engine.on_move(PropClass::StackToStack, t);
                taint_extra!(out.extra_cycles);
                // No taint touch: Dup does not note one in the interpreter.
                fr.push(v, out.dst_taint.union(t));
            }
            TOp::Pop => {
                retire!(1, Insn::Pop.base_cost());
                let _ = popv!();
            }
            TOp::Swap => {
                retire!(1, Insn::Swap.base_cost());
                let (a, ta) = popv!();
                let (b, tb) = popv!();
                fr.push(a, ta);
                fr.push(b, tb);
            }
            TOp::Bin(insn) => {
                retire!(1, insn.base_cost());
                let (b, tb) = popv!();
                let (a, ta) = popv!();
                let srcs = ta.union(tb);
                let out = engine.on_move(PropClass::StackToStack, srcs);
                taint_extra!(out.extra_cycles);
                touch!(srcs);
                if is_cmp(&insn) {
                    match eval_compare(insn, a, b) {
                        Ok(r) => fr.push(Value::Int(r as i64), out.dst_taint),
                        Err(e) => arith_fail!(pc, e),
                    }
                } else {
                    match eval_binop(insn, a, b) {
                        Ok(v) => fr.push(v, out.dst_taint),
                        Err(e) => arith_fail!(pc, e),
                    }
                }
            }
            TOp::Neg => {
                retire!(1, Insn::Neg.base_cost());
                let (a, ta) = popv!();
                let out = engine.on_move(PropClass::StackToStack, ta);
                taint_extra!(out.extra_cycles);
                touch!(ta);
                let v = match a {
                    Value::Int(x) => Value::Int(x.wrapping_neg()),
                    Value::Double(d) => Value::Double(-d),
                    other => fail!(
                        pc,
                        VmError::TypeMismatch {
                            func: fr.func_name.clone(),
                            pc: pc as usize,
                            expected: "number",
                            found: other.type_name(),
                        }
                    ),
                };
                fr.push(v, out.dst_taint);
            }
            TOp::I2D => {
                retire!(1, Insn::I2D.base_cost());
                let (a, ta) = popv!();
                let out = engine.on_move(PropClass::StackToStack, ta);
                taint_extra!(out.extra_cycles);
                // No taint touch (matches the interpreter's I2D).
                match a.as_int() {
                    Ok(x) => fr.push(Value::Double(x as f64), out.dst_taint),
                    Err(found) => fail!(
                        pc,
                        VmError::TypeMismatch {
                            func: fr.func_name.clone(),
                            pc: pc as usize,
                            expected: "int",
                            found,
                        }
                    ),
                }
            }
            TOp::D2I => {
                retire!(1, Insn::D2I.base_cost());
                let (a, ta) = popv!();
                let out = engine.on_move(PropClass::StackToStack, ta);
                taint_extra!(out.extra_cycles);
                match a.as_double() {
                    Ok(d) => fr.push(Value::Int(d as i64), out.dst_taint),
                    Err(found) => fail!(
                        pc,
                        VmError::TypeMismatch {
                            func: fr.func_name.clone(),
                            pc: pc as usize,
                            expected: "double",
                            found,
                        }
                    ),
                }
            }
            TOp::Jump(target) => {
                retire!(1, Insn::Jump(0).base_cost());
                fr.pc = target as usize;
                return BurstExit::Control;
            }
            TOp::Branch { if_zero, target } => {
                retire!(1, Insn::JumpIfZero(0).base_cost());
                let (v, t) = popv!();
                touch!(t);
                let taken = if if_zero { !v.is_truthy() } else { v.is_truthy() };
                fr.pc = if taken { target as usize } else { pc as usize + 1 };
                return BurstExit::Control;
            }
            TOp::IncLocal { slot, delta } => {
                // Load slot
                retire!(1, Insn::Load(0).base_cost());
                local_guard!(slot, pc);
                let (v, t) = (fr.locals[slot as usize], fr.local_taint[slot as usize]);
                let o1 = engine.on_move(PropClass::StackToStack, t);
                taint_extra!(o1.extra_cycles);
                touch!(t);
                // ConstI delta
                retire!(1, Insn::ConstI(0).base_cost());
                // Add
                retire!(1, Insn::Add.base_cost());
                let srcs = o1.dst_taint; // ∪ EMPTY from the constant
                let o2 = engine.on_move(PropClass::StackToStack, srcs);
                taint_extra!(o2.extra_cycles);
                touch!(srcs);
                let r = match eval_binop(Insn::Add, v, Value::Int(delta)) {
                    Ok(r) => r,
                    // Stack is net-unchanged at this point in the
                    // interpreter too (it pushed two and popped two).
                    Err(e) => arith_fail!(pc + 2, e),
                };
                // Store slot
                retire!(1, Insn::Store(0).base_cost());
                let o3 = engine.on_move(PropClass::StackToStack, o2.dst_taint);
                taint_extra!(o3.extra_cycles);
                touch!(o2.dst_taint);
                fr.locals[slot as usize] = r;
                fr.local_taint[slot as usize] = o3.dst_taint;
            }
            TOp::BinLL { a, b, insn } => {
                // Load a
                retire!(1, Insn::Load(0).base_cost());
                local_guard!(a, pc);
                let (va, ta) = (fr.locals[a as usize], fr.local_taint[a as usize]);
                let o1 = engine.on_move(PropClass::StackToStack, ta);
                taint_extra!(o1.extra_cycles);
                touch!(ta);
                // Load b
                retire!(1, Insn::Load(0).base_cost());
                local_guard!(b, pc + 1);
                let (vb, tb) = (fr.locals[b as usize], fr.local_taint[b as usize]);
                let o2 = engine.on_move(PropClass::StackToStack, tb);
                taint_extra!(o2.extra_cycles);
                touch!(tb);
                // Bin
                retire!(1, insn.base_cost());
                let srcs = o1.dst_taint.union(o2.dst_taint);
                let o3 = engine.on_move(PropClass::StackToStack, srcs);
                taint_extra!(o3.extra_cycles);
                touch!(srcs);
                if is_cmp(&insn) {
                    match eval_compare(insn, va, vb) {
                        Ok(r) => fr.push(Value::Int(r as i64), o3.dst_taint),
                        Err(e) => arith_fail!(pc + 2, e),
                    }
                } else {
                    match eval_binop(insn, va, vb) {
                        Ok(v) => fr.push(v, o3.dst_taint),
                        Err(e) => arith_fail!(pc + 2, e),
                    }
                }
            }
            op @ (TOp::CmpBranchLL { .. } | TOp::CmpBranchLI { .. }) => {
                // `second` is Ok(local slot) for LL, Err(constant) for LI.
                let (a, second, cmp, if_zero, target) = match op {
                    TOp::CmpBranchLL { a, b, cmp, if_zero, target } => {
                        (a, Ok(b), cmp, if_zero, target)
                    }
                    TOp::CmpBranchLI { a, k, cmp, if_zero, target } => {
                        (a, Err(k), cmp, if_zero, target)
                    }
                    _ => unreachable!(),
                };
                // Load a
                retire!(1, Insn::Load(0).base_cost());
                local_guard!(a, pc);
                let (va, ta) = (fr.locals[a as usize], fr.local_taint[a as usize]);
                let o1 = engine.on_move(PropClass::StackToStack, ta);
                taint_extra!(o1.extra_cycles);
                touch!(ta);
                // Load b / ConstI k
                let (vb, tb_dst) = match second {
                    Ok(b) => {
                        retire!(1, Insn::Load(0).base_cost());
                        local_guard!(b, pc + 1);
                        let (vb, tb) = (fr.locals[b as usize], fr.local_taint[b as usize]);
                        let o2 = engine.on_move(PropClass::StackToStack, tb);
                        taint_extra!(o2.extra_cycles);
                        touch!(tb);
                        (vb, o2.dst_taint)
                    }
                    Err(k) => {
                        retire!(1, Insn::ConstI(0).base_cost());
                        (Value::Int(k), TaintSet::EMPTY)
                    }
                };
                // Cmp
                retire!(1, cmp.base_cost());
                let srcs = o1.dst_taint.union(tb_dst);
                let o3 = engine.on_move(PropClass::StackToStack, srcs);
                taint_extra!(o3.extra_cycles);
                touch!(srcs);
                let r = match eval_compare(cmp, va, vb) {
                    Ok(r) => r,
                    Err(e) => arith_fail!(pc + 2, e),
                };
                // Branch: pops the pushed Int(r), whose taint is the
                // compare's destination taint; is_truthy(Int(r)) == r.
                retire!(1, Insn::JumpIfZero(0).base_cost());
                touch!(o3.dst_taint);
                let taken = if if_zero { !r } else { r };
                fr.pc = if taken { target as usize } else { pc as usize + 4 };
                return BurstExit::Control;
            }
            TOp::Step(_) => unreachable!("Step ops are handled by run_block"),
        }
        *i += 1;
        if *i == ops.len() {
            return BurstExit::Fall;
        }
        if matches!(ops[*i].op, TOp::Step(_)) {
            return BurstExit::NextIsStep;
        }
    }
}
