//! The block-local optimization pass pipeline.
//!
//! Every pass preserves the interpreter-equivalence contract: a rewritten
//! op sequence must retire the same instruction count, charge the same
//! cycles, make the same taint-engine reports (statically-empty
//! stack→stack moves are aggregated into [`Charge::s2s_empty`] and
//! replayed in batch), and reach every possible exit — error, event,
//! block end — with byte-identical machine state. Passes therefore only
//! rewrite shapes whose intermediate states are provably unobservable:
//! all-constant subtrees (constant folding), values both produced and
//! killed inside the block with no read between (dead-store elimination),
//! and contiguous runs re-emitted as superinstructions that replay the
//! exact charge/report/error interleaving (fusion).

use crate::insn::Insn;
use crate::interp::{eval_binop, eval_compare};
use crate::value::Value;

use super::decode::{is_arith, is_cmp, op_stack_shape, BOp, Charge, TOp};
use super::CompileStats;

/// Which passes run over each decoded block, in fixed order:
/// fold → eliminate → fuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassPipeline {
    /// Fold constant integer expressions into single pushes.
    pub fold: bool,
    /// Eliminate stores and pushes that are dead within the block.
    pub dse: bool,
    /// Fuse common contiguous runs into superinstructions.
    pub fuse: bool,
}

impl Default for PassPipeline {
    fn default() -> Self {
        PassPipeline { fold: true, dse: true, fuse: true }
    }
}

impl PassPipeline {
    /// Decode-only: no rewriting. The tier still wins block-granular
    /// dispatch and budget checks; useful for isolating a pass in
    /// differential tests.
    pub fn decode_only() -> Self {
        PassPipeline { fold: false, dse: false, fuse: false }
    }

    /// Runs the enabled passes over one block's ops.
    pub(crate) fn run(&self, ops: &mut Vec<BOp>, stats: &mut CompileStats) {
        if self.fold {
            const_fold(ops, stats);
        }
        if self.dse {
            dead_store_elim(ops, stats);
        }
        if self.fuse {
            fuse(ops, stats);
        }
    }
}

/// The decoder's charge for a single plain (unfolded) instruction of
/// `insn`'s cost with no engine report.
fn plain(insn: Insn) -> Charge {
    Charge::one(insn.base_cost())
}

// ---------------------------------------------------------------- folding

/// Abstract stack entry: a known integer constant produced by the op at
/// `out` index `at`, or an unknown value.
#[derive(Clone, Copy)]
enum Abs {
    Const { v: i64, at: usize },
    Dyn,
}

/// Folds integer-constant expressions. `ConstI a; ConstI b; Add` becomes a
/// single `PushI(a+b)` whose [`Charge`] carries all three instructions'
/// retirement, cycles, and the one statically-empty stack→stack move the
/// folded `Add` owed the taint engine. Folding goes through
/// [`eval_binop`]/[`eval_compare`] — literally the interpreter's evaluator —
/// so masked shifts, wrapping arithmetic, and division semantics cannot
/// diverge. Operations that would trap (division by a constant zero) are
/// left unfolded so the runtime error keeps its exact pc.
fn const_fold(ops: &mut Vec<BOp>, stats: &mut CompileStats) {
    let mut abs: Vec<Abs> = Vec::new();
    let mut out: Vec<BOp> = Vec::with_capacity(ops.len());

    for bop in ops.drain(..) {
        // The two (or one) top abstract entries, if they are constants
        // produced by the trailing ops of `out` (required: folding rewrites
        // those producer ops in place).
        let top_const = |abs: &[Abs], out: &[BOp], depth: usize| -> Option<(i64, usize)> {
            match abs.get(abs.len().checked_sub(1 + depth)?)? {
                Abs::Const { v, at } if *at == out.len() - 1 - depth => Some((*v, *at)),
                _ => None,
            }
        };

        match bop.op {
            TOp::PushI { v, .. } => {
                abs.push(Abs::Const { v, at: out.len() });
                out.push(bop);
            }
            TOp::Bin(insn) if out.len() >= 2 => {
                let folded = match (top_const(&abs, &out, 1), top_const(&abs, &out, 0)) {
                    (Some((a, ai)), Some((b, _))) => {
                        let r = if is_cmp(&insn) {
                            eval_compare(insn, Value::Int(a), Value::Int(b)).map(|t| t as i64)
                        } else {
                            eval_binop(insn, Value::Int(a), Value::Int(b)).map(|v| match v {
                                Value::Int(i) => i,
                                _ => unreachable!("int binop produced non-int"),
                            })
                        };
                        r.ok().map(|v| (v, ai))
                    }
                    _ => None,
                };
                match folded {
                    Some((v, ai)) => {
                        let (ca, cb) = match (out[out.len() - 2].op, out[out.len() - 1].op) {
                            (TOp::PushI { charge: ca, .. }, TOp::PushI { charge: cb, .. }) => {
                                (ca, cb)
                            }
                            _ => unreachable!("const producers must be PushI ops"),
                        };
                        let pc = out[ai].pc;
                        out.truncate(out.len() - 2);
                        abs.truncate(abs.len() - 2);
                        // The folded Bin's stack→stack report had EMPTY
                        // sources (both operands are constants), so it
                        // batches into the charge.
                        let charge = ca.plus(cb).plus(Charge {
                            instrs: 1,
                            cycles: insn.base_cost(),
                            s2s_empty: 1,
                        });
                        abs.push(Abs::Const { v, at: out.len() });
                        out.push(BOp { op: TOp::PushI { v, charge }, pc });
                        stats.folded += 1;
                    }
                    None => {
                        generic(&mut abs, &bop.op);
                        out.push(bop);
                    }
                }
            }
            TOp::Neg => match top_const(&abs, &out, 0) {
                Some((v, at)) => {
                    let charge = match out[at].op {
                        TOp::PushI { charge, .. } => charge,
                        _ => unreachable!("const producer must be a PushI op"),
                    }
                    .plus(Charge {
                        instrs: 1,
                        cycles: Insn::Neg.base_cost(),
                        s2s_empty: 1,
                    });
                    let v = v.wrapping_neg();
                    out[at] = BOp { op: TOp::PushI { v, charge }, pc: out[at].pc };
                    *abs.last_mut().expect("const entry exists") = Abs::Const { v, at };
                    stats.folded += 1;
                }
                None => {
                    generic(&mut abs, &bop.op);
                    out.push(bop);
                }
            },
            _ => {
                generic(&mut abs, &bop.op);
                out.push(bop);
            }
        }
    }
    *ops = out;
}

/// Generic abstract-stack transfer for ops the folder does not model.
fn generic(abs: &mut Vec<Abs>, op: &TOp) {
    let (pops, pushes, _) = op_stack_shape(op);
    for _ in 0..pops {
        abs.pop(); // popping past block entry is fine: entries below are unknown anyway
    }
    for _ in 0..pushes {
        abs.push(Abs::Dyn);
    }
}

// ---------------------------------------------------------- dead stores

/// True if `op` can sit between a dead `PushI; StoreL(slot)` pair and the
/// store that kills it: total (cannot error once the block's entry-depth
/// requirement holds), no exit, no event, and no read of local `slot`.
fn inert_between(op: &TOp, slot: u16) -> bool {
    match op {
        TOp::PushI { .. } | TOp::PushD(_) | TOp::PushNull => true,
        TOp::Dup | TOp::Pop | TOp::Swap => true,
        TOp::ChargeOnly(_) => true,
        TOp::LoadL(m) | TOp::StoreL(m) => *m != slot,
        _ => false,
    }
}

/// Eliminates values both produced and killed inside the block:
/// `ConstI; Pop` (a dead push) and `ConstI; Store n; …; Store n` where no
/// op between reads local `n` (a dead store). The pair collapses to a
/// [`TOp::ChargeOnly`] that retires the same instructions, charges the
/// same cycles, and replays the dead store's statically-empty stack→stack
/// move — only the (unobservable) transient value disappears.
fn dead_store_elim(ops: &mut Vec<BOp>, stats: &mut CompileStats) {
    let mut i = 0;
    while i + 1 < ops.len() {
        let charge = match ops[i].op {
            TOp::PushI { charge, .. } => charge,
            _ => {
                i += 1;
                continue;
            }
        };
        let replacement = match ops[i + 1].op {
            TOp::Pop => Some(charge.plus(plain(Insn::Pop))),
            TOp::StoreL(n) => {
                let killed = ops[i + 2..]
                    .iter()
                    .map(|b| &b.op)
                    .take_while(|op| {
                        matches!(op, TOp::StoreL(m) if *m == n) || inert_between(op, n)
                    })
                    .any(|op| matches!(op, TOp::StoreL(m) if *m == n));
                if killed {
                    // The dead store still owed the engine one empty
                    // stack→stack report.
                    Some(charge.plus(Charge {
                        instrs: 1,
                        cycles: Insn::Store(0).base_cost(),
                        s2s_empty: 1,
                    }))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(c) = replacement {
            let pc = ops[i].pc;
            ops.splice(i..=i + 1, [BOp { op: TOp::ChargeOnly(c), pc }]);
            stats.eliminated += 1;
            // Re-examine from the same index: the new ChargeOnly may ride
            // along inside another pair's inert span.
        } else {
            i += 1;
        }
    }
}

// --------------------------------------------------------------- fusion

/// True if the op is a plain, unfolded `PushI` for constant `k` (fusion
/// must not capture folded charges inside a superinstruction).
fn plain_push(op: &TOp) -> Option<i64> {
    match op {
        TOp::PushI { v, charge } if *charge == plain(Insn::ConstI(0)) => Some(*v),
        _ => None,
    }
}

/// Fuses common contiguous instruction runs into superinstructions:
///
/// * `Load s; ConstI k; Add; Store s` → [`TOp::IncLocal`] (the builder's
///   `inc_local` idiom — every loop counter bump);
/// * `Load a; Load b; <cmp>; JumpIf{,Non}Zero` → [`TOp::CmpBranchLL`] (the
///   builder's `for_loop` header — every loop bound check);
/// * `Load a; ConstI k; <cmp>; JumpIf{,Non}Zero` → [`TOp::CmpBranchLI`];
/// * `Load a; Load b; <bin or cmp>` → [`TOp::BinLL`].
///
/// Fusion requires contiguous source pcs (no pass rewrote the middle) so
/// the executor can reconstruct each component's pc for errors and
/// deopts. The superinstruction executors replay the interpreter's exact
/// per-component charge, report, touch, and error sequence.
fn fuse(ops: &mut Vec<BOp>, stats: &mut CompileStats) {
    let contiguous = |w: &[BOp]| w.windows(2).all(|p| p[1].pc == p[0].pc + 1);
    let mut out: Vec<BOp> = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        // 4-op patterns first, then 3-op; longest match wins.
        if i + 3 < ops.len() && contiguous(&ops[i..i + 4]) {
            let w = [&ops[i].op, &ops[i + 1].op, &ops[i + 2].op, &ops[i + 3].op];
            let fused = match (w[0], w[1], w[2], w[3]) {
                (TOp::LoadL(s), push, TOp::Bin(Insn::Add), TOp::StoreL(s2)) if s == s2 => {
                    plain_push(push).map(|k| TOp::IncLocal { slot: *s, delta: k })
                }
                (TOp::LoadL(a), TOp::LoadL(b), TOp::Bin(cmp), TOp::Branch { if_zero, target })
                    if is_cmp(cmp) =>
                {
                    Some(TOp::CmpBranchLL {
                        a: *a,
                        b: *b,
                        cmp: *cmp,
                        if_zero: *if_zero,
                        target: *target,
                    })
                }
                (TOp::LoadL(a), push, TOp::Bin(cmp), TOp::Branch { if_zero, target })
                    if is_cmp(cmp) =>
                {
                    plain_push(push).map(|k| TOp::CmpBranchLI {
                        a: *a,
                        k,
                        cmp: *cmp,
                        if_zero: *if_zero,
                        target: *target,
                    })
                }
                _ => None,
            };
            if let Some(op) = fused {
                out.push(BOp { op, pc: ops[i].pc });
                stats.fused += 1;
                i += 4;
                continue;
            }
        }
        if i + 2 < ops.len() && contiguous(&ops[i..i + 3]) {
            if let (TOp::LoadL(a), TOp::LoadL(b), TOp::Bin(insn)) =
                (&ops[i].op, &ops[i + 1].op, &ops[i + 2].op)
            {
                if is_arith(insn) || is_cmp(insn) {
                    out.push(BOp { op: TOp::BinLL { a: *a, b: *b, insn: *insn }, pc: ops[i].pc });
                    stats.fused += 1;
                    i += 3;
                    continue;
                }
            }
        }
        out.push(ops[i]);
        i += 1;
    }
    *ops = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Function;
    use crate::tier::decode::compile_function;

    fn blocks_of(
        code: Vec<Insn>,
        pipeline: &PassPipeline,
    ) -> (Vec<super::super::decode::Block>, CompileStats) {
        let f = Function { name: "t".into(), n_args: 0, n_locals: 4, code };
        let mut stats = CompileStats::default();
        let cf = compile_function(&f, pipeline, &mut stats);
        (cf.blocks, stats)
    }

    #[test]
    fn folds_constant_expressions_with_exact_charges() {
        // 2 + 3 * 4 → a single PushI(14) retiring 5 insns, with 2 batched
        // empty stack→stack reports (one per folded Bin).
        let code = vec![
            Insn::ConstI(2),
            Insn::ConstI(3),
            Insn::ConstI(4),
            Insn::Mul,
            Insn::Add,
            Insn::Halt,
        ];
        let (blocks, stats) = blocks_of(code, &PassPipeline::default());
        assert_eq!(stats.folded, 2);
        let ops = &blocks[0].ops;
        assert_eq!(ops.len(), 2, "PushI + Step(Halt): {ops:?}");
        match ops[0].op {
            TOp::PushI { v, charge } => {
                assert_eq!(v, 14);
                assert_eq!(
                    charge,
                    Charge {
                        instrs: 5,
                        cycles: 3 * Insn::ConstI(0).base_cost()
                            + Insn::Mul.base_cost()
                            + Insn::Add.base_cost(),
                        s2s_empty: 2
                    }
                );
            }
            other => panic!("expected folded PushI, got {other:?}"),
        }
        // Retirement must cover all 6 source instructions.
        assert_eq!(blocks[0].retire, 6);
    }

    #[test]
    fn folding_respects_masked_shift_semantics() {
        // 1 << 65 must fold to 2 (count masked & 63), matching eval_binop.
        let code = vec![Insn::ConstI(1), Insn::ConstI(65), Insn::Shl, Insn::Halt];
        let (blocks, _) = blocks_of(code, &PassPipeline::default());
        match blocks[0].ops[0].op {
            TOp::PushI { v, .. } => assert_eq!(v, 2),
            ref other => panic!("expected folded PushI, got {other:?}"),
        }
    }

    #[test]
    fn division_by_constant_zero_is_left_unfolded() {
        let code = vec![Insn::ConstI(7), Insn::ConstI(0), Insn::Div, Insn::Halt];
        let (blocks, stats) = blocks_of(code, &PassPipeline::default());
        assert_eq!(stats.folded, 0);
        assert!(
            blocks[0].ops.iter().any(|b| matches!(b.op, TOp::Bin(Insn::Div))),
            "Div must stay for its runtime error: {:?}",
            blocks[0].ops
        );
    }

    #[test]
    fn dead_store_collapses_to_charge_only() {
        // store 0 is overwritten before any read → ChargeOnly.
        let code =
            vec![Insn::ConstI(1), Insn::Store(0), Insn::ConstI(2), Insn::Store(0), Insn::Halt];
        let (blocks, stats) =
            blocks_of(code, &PassPipeline { fold: false, dse: true, fuse: false });
        assert_eq!(stats.eliminated, 1);
        match blocks[0].ops[0].op {
            TOp::ChargeOnly(c) => {
                assert_eq!(c, Charge { instrs: 2, cycles: 20, s2s_empty: 1 });
            }
            ref other => panic!("expected ChargeOnly, got {other:?}"),
        }
    }

    #[test]
    fn intervening_read_blocks_dead_store_elimination() {
        let code = vec![
            Insn::ConstI(1),
            Insn::Store(0),
            Insn::Load(0), // reads slot 0: the first store is live
            Insn::Pop,
            Insn::ConstI(2),
            Insn::Store(0),
            Insn::Halt,
        ];
        let (_, stats) = blocks_of(code, &PassPipeline { fold: false, dse: true, fuse: false });
        assert_eq!(stats.eliminated, 0);
    }

    #[test]
    fn fuses_counter_increment_and_loop_header() {
        // for (i = 0; i < n; i++) {} as the builder emits it.
        let code = vec![
            Insn::ConstI(0),
            Insn::Store(0),
            // header @2: i < n ?
            Insn::Load(0),
            Insn::Load(1),
            Insn::CmpLt,
            Insn::JumpIfZero(11),
            // body: i += 1
            Insn::Load(0),
            Insn::ConstI(1),
            Insn::Add,
            Insn::Store(0),
            Insn::Jump(2),
            Insn::Halt,
        ];
        let (blocks, stats) = blocks_of(code, &PassPipeline::default());
        assert_eq!(stats.fused, 2, "loop header + counter bump");
        let all: Vec<&TOp> = blocks.iter().flat_map(|b| b.ops.iter().map(|b| &b.op)).collect();
        assert!(all.iter().any(|op| matches!(op, TOp::CmpBranchLL { .. })), "{all:?}");
        assert!(all.iter().any(|op| matches!(op, TOp::IncLocal { slot: 0, delta: 1 })), "{all:?}");
    }

    #[test]
    fn entry_depth_requirement_covers_fast_pops() {
        // A block that begins by popping two operands it did not push.
        let code = vec![Insn::Add, Insn::Halt];
        let (blocks, _) = blocks_of(code, &PassPipeline::default());
        assert_eq!(blocks[0].entry_depth_req, 2);
    }

    #[test]
    fn out_of_range_local_slot_decodes_to_step() {
        // n_locals = 4; Load(9) must stay a Step op so the interpreter
        // raises its exact BadLocal error.
        let code = vec![Insn::Load(9), Insn::Halt];
        let (blocks, _) = blocks_of(code, &PassPipeline::default());
        assert!(matches!(blocks[0].ops[0].op, TOp::Step(Insn::Load(9))), "{:?}", blocks[0].ops);
    }
}
