//! Bytecode → basic-block decoder for the compiled tier.
//!
//! Decoding partitions a function's code into maximal basic blocks
//! (leaders: the entry, every valid jump target, and the instruction after
//! every terminator) and translates each instruction into a [`TOp`]:
//! either a member of the *fast subset* the block executor runs natively,
//! or a [`TOp::Step`] that deoptimizes to the interpreter's own
//! `step()` for that one instruction. Instructions whose static
//! preconditions fail at decode time (out-of-range local slots, invalid
//! jump targets) are conservatively left as `Step` so their error paths
//! stay the interpreter's, byte for byte.
//!
//! The decoder also computes, per block:
//! * `retire` — how many source instructions the block retires end-to-end,
//!   which is what block-granular fuel reservation charges; and
//! * `entry_depth_req` — the minimum operand-stack depth at block entry
//!   that guarantees no *fast* op can underflow. (`Step` ops carry their
//!   own interpreter error handling and need no static guarantee.)

use crate::insn::Insn;
use crate::program::Function;

use super::passes::PassPipeline;
use super::{CompileStats, CompiledFunc};

/// Aggregated bookkeeping for ops that stand in for several source
/// instructions (folded constants, eliminated stores).
///
/// Every observable counter the collapsed instructions would have bumped
/// is preserved: retired-instruction count (fuel + `ExecStats::instrs` +
/// the taint-idle counter), base cycle cost, and the number of
/// statically-empty stack→stack moves owed to the taint engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Charge {
    /// Source instructions represented.
    pub instrs: u64,
    /// Total base cycle cost of those instructions.
    pub cycles: u64,
    /// `on_move(StackToStack, EMPTY)` reports owed to the taint engine.
    pub s2s_empty: u64,
}

impl Charge {
    /// The charge of a single plain instruction with `cycles` base cost
    /// and no engine report.
    pub fn one(cycles: u64) -> Charge {
        Charge { instrs: 1, cycles, s2s_empty: 0 }
    }

    /// Component-wise sum.
    pub fn plus(self, other: Charge) -> Charge {
        Charge {
            instrs: self.instrs + other.instrs,
            cycles: self.cycles + other.cycles,
            s2s_empty: self.s2s_empty + other.s2s_empty,
        }
    }
}

/// One op of the compiled tier's IR.
///
/// The fast subset mirrors the interpreter's cheapest opcodes (constants,
/// locals, stack shuffles, arithmetic, compares, conversions, intra-
/// function control flow); everything else — heap, strings, calls,
/// natives, monitors — executes through [`TOp::Step`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum TOp {
    /// Push an integer constant; may represent a folded run of source
    /// instructions (see [`Charge`]).
    PushI {
        /// The constant.
        v: i64,
        /// Aggregated bookkeeping for the instructions this op stands for.
        charge: Charge,
    },
    /// Push a double constant.
    PushD(f64),
    /// Push null.
    PushNull,
    /// Push local `slot` (statically in-bounds).
    LoadL(u16),
    /// Pop into local `slot` (statically in-bounds).
    StoreL(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the top two stack values.
    Swap,
    /// A binary arithmetic or comparison instruction (operand types are
    /// dynamic; errors carry the op's own pc).
    Bin(Insn),
    /// Arithmetic negation.
    Neg,
    /// Int → double conversion.
    I2D,
    /// Double → int conversion.
    D2I,
    /// Unconditional jump to a statically valid target (terminator).
    Jump(u32),
    /// Conditional branch to a statically valid target (terminator).
    Branch {
        /// True for `JumpIfZero`, false for `JumpIfNonZero`.
        if_zero: bool,
        /// Target pc when the branch is taken.
        target: u32,
    },
    /// Retire charges with no machine effect — the residue of instructions
    /// whose effects a pass proved dead.
    ChargeOnly(Charge),
    /// Fused `Load slot; ConstI delta; Add; Store slot`.
    IncLocal {
        /// The local slot incremented.
        slot: u16,
        /// The constant increment.
        delta: i64,
    },
    /// Fused `Load a; Load b; <bin or cmp>` pushing the result.
    BinLL {
        /// Left operand's local slot.
        a: u16,
        /// Right operand's local slot.
        b: u16,
        /// The arithmetic or comparison instruction.
        insn: Insn,
    },
    /// Fused `Load a; Load b; <cmp>; JumpIf{,Non}Zero target` (terminator).
    CmpBranchLL {
        /// Left operand's local slot.
        a: u16,
        /// Right operand's local slot.
        b: u16,
        /// The comparison instruction.
        cmp: Insn,
        /// True for `JumpIfZero`.
        if_zero: bool,
        /// Target pc when the branch is taken.
        target: u32,
    },
    /// Fused `Load a; ConstI k; <cmp>; JumpIf{,Non}Zero target`
    /// (terminator).
    CmpBranchLI {
        /// Left operand's local slot.
        a: u16,
        /// Right comparison operand.
        k: i64,
        /// The comparison instruction.
        cmp: Insn,
        /// True for `JumpIfZero`.
        if_zero: bool,
        /// Target pc when the branch is taken.
        target: u32,
    },
    /// Deoptimize: execute this one instruction through the interpreter's
    /// `step()`.
    Step(Insn),
}

/// An op plus the pc of its first source instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct BOp {
    /// The op.
    pub op: TOp,
    /// Source pc of the op's first instruction (errors and deopts resume
    /// here).
    pub pc: u32,
}

/// One basic block.
#[derive(Clone, Debug)]
pub(crate) struct Block {
    /// First source pc of the block.
    pub start_pc: u32,
    /// The pc execution falls to when the block ends without a control
    /// transfer (the next leader).
    pub end_pc: u32,
    /// The block's ops, post-passes.
    pub ops: Vec<BOp>,
    /// Source instructions retired by a full native run of the block.
    pub retire: u64,
    /// Minimum operand-stack depth at entry for every fast op to be
    /// underflow-free.
    pub entry_depth_req: u32,
}

/// True if `insn` always ends a basic block.
pub(crate) fn is_terminator(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Jump(_)
            | Insn::JumpIfZero(_)
            | Insn::JumpIfNonZero(_)
            | Insn::Call(_)
            | Insn::Ret
            | Insn::RetVoid
            | Insn::Halt
    )
}

/// Static stack effect of a `Step`-executed instruction *on success*:
/// `(pops, pushes)`. Exits (errors, triggers, events) leave the block, so
/// only the success shape matters for downstream depth tracking.
/// Terminators' shapes are never used (nothing follows them in a block).
fn step_shape(insn: &Insn) -> (u32, u32) {
    match insn {
        Insn::Nop => (0, 0),
        Insn::ConstI(_) | Insn::ConstD(_) | Insn::ConstNull | Insn::ConstS(_) => (0, 1),
        Insn::Load(_) => (0, 1),
        Insn::Store(_) => (1, 0),
        Insn::Dup => (0, 1),
        Insn::Pop => (1, 0),
        Insn::Swap => (2, 2),
        Insn::Add
        | Insn::Sub
        | Insn::Mul
        | Insn::Div
        | Insn::Rem
        | Insn::BitAnd
        | Insn::BitOr
        | Insn::BitXor
        | Insn::Shl
        | Insn::Shr => (2, 1),
        Insn::Neg => (1, 1),
        Insn::CmpEq | Insn::CmpNe | Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe => (2, 1),
        Insn::I2D | Insn::D2I => (1, 1),
        Insn::Jump(_) => (0, 0),
        Insn::JumpIfZero(_) | Insn::JumpIfNonZero(_) => (1, 0),
        Insn::New(_) => (0, 1),
        Insn::GetField(_) => (1, 1),
        Insn::PutField(_) => (2, 0),
        Insn::CloneObj => (1, 1),
        Insn::NewArr => (1, 1),
        Insn::ArrLoad => (2, 1),
        Insn::ArrStore => (3, 0),
        Insn::ArrLen => (1, 1),
        Insn::ArrCopy => (5, 0),
        Insn::StrConcat => (2, 1),
        Insn::StrCharAt => (2, 1),
        Insn::StrLen => (1, 1),
        Insn::StrSub => (3, 1),
        Insn::StrIndexOf => (2, 1),
        Insn::StrEq => (2, 1),
        Insn::StrFromInt => (1, 1),
        Insn::StrFromChar => (1, 1),
        Insn::Call(_) => (0, 0),
        Insn::CallNative(_, argc) => (*argc as u32, 1),
        Insn::Ret | Insn::RetVoid | Insn::Halt => (0, 0),
        Insn::MonitorEnter | Insn::MonitorExit | Insn::PinLock => (1, 0),
    }
}

/// `(pops, pushes, need)` for an op: its stack effect on success plus the
/// depth it *requires* at entry (`need ≥ pops`; peeks raise it above the
/// pop count). `Step` ops report `need = 0` — they detect underflow
/// themselves through the interpreter, with the interpreter's exact error.
/// Fused ops never reach below their own internal pushes, so they also
/// report `need = 0`.
pub(crate) fn op_stack_shape(op: &TOp) -> (u32, u32, u32) {
    match op {
        TOp::PushI { .. } | TOp::PushD(_) | TOp::PushNull | TOp::LoadL(_) => (0, 1, 0),
        TOp::StoreL(_) => (1, 0, 1),
        TOp::Dup => (0, 1, 1),
        TOp::Pop => (1, 0, 1),
        TOp::Swap => (2, 2, 2),
        TOp::Bin(_) => (2, 1, 2),
        TOp::Neg | TOp::I2D | TOp::D2I => (1, 1, 1),
        TOp::Jump(_) => (0, 0, 0),
        TOp::Branch { .. } => (1, 0, 1),
        TOp::ChargeOnly(_) => (0, 0, 0),
        TOp::IncLocal { .. } => (0, 0, 0),
        TOp::BinLL { .. } => (0, 1, 0),
        TOp::CmpBranchLL { .. } | TOp::CmpBranchLI { .. } => (0, 0, 0),
        TOp::Step(insn) => {
            let (pops, pushes) = step_shape(insn);
            (pops, pushes, 0)
        }
    }
}

/// Source instructions an op retires.
pub(crate) fn op_retire(op: &TOp) -> u64 {
    match op {
        TOp::PushI { charge, .. } | TOp::ChargeOnly(charge) => charge.instrs,
        TOp::IncLocal { .. } | TOp::CmpBranchLL { .. } | TOp::CmpBranchLI { .. } => 4,
        TOp::BinLL { .. } => 3,
        _ => 1,
    }
}

/// True for the binary arithmetic instructions [`TOp::Bin`] accepts.
pub(crate) fn is_arith(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::BitAnd
            | Insn::BitOr
            | Insn::BitXor
            | Insn::Shl
            | Insn::Shr
    )
}

/// True for the comparison instructions [`TOp::Bin`] accepts.
pub(crate) fn is_cmp(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::CmpEq | Insn::CmpNe | Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe
    )
}

/// Translates one instruction, classifying it fast or `Step`.
fn decode_insn(insn: Insn, n_locals: u16, code_len: usize) -> TOp {
    match insn {
        Insn::ConstI(v) => TOp::PushI { v, charge: Charge::one(insn.base_cost()) },
        Insn::ConstD(d) => TOp::PushD(d),
        Insn::ConstNull => TOp::PushNull,
        Insn::Nop => TOp::ChargeOnly(Charge::one(insn.base_cost())),
        Insn::Load(n) if n < n_locals => TOp::LoadL(n),
        Insn::Store(n) if n < n_locals => TOp::StoreL(n),
        Insn::Dup => TOp::Dup,
        Insn::Pop => TOp::Pop,
        Insn::Swap => TOp::Swap,
        Insn::Neg => TOp::Neg,
        Insn::I2D => TOp::I2D,
        Insn::D2I => TOp::D2I,
        Insn::Jump(t) if (t as usize) <= code_len => TOp::Jump(t),
        Insn::JumpIfZero(t) if (t as usize) <= code_len => TOp::Branch { if_zero: true, target: t },
        Insn::JumpIfNonZero(t) if (t as usize) <= code_len => {
            TOp::Branch { if_zero: false, target: t }
        }
        _ if is_arith(&insn) || is_cmp(&insn) => TOp::Bin(insn),
        other => TOp::Step(other),
    }
}

/// Decodes, optimizes, and finalizes one function.
pub(crate) fn compile_function(
    func: &Function,
    pipeline: &PassPipeline,
    stats: &mut CompileStats,
) -> CompiledFunc {
    let code = &func.code;
    let len = code.len();
    stats.insns += len as u64;

    // Leaders: entry, valid in-range jump targets, and the successor of
    // every terminator (so blocks partition the whole body and every pc
    // after a call return or branch fall-through is block-addressable).
    let mut leader = vec![false; len];
    if len > 0 {
        leader[0] = true;
    }
    for (pc, insn) in code.iter().enumerate() {
        if let Insn::Jump(t) | Insn::JumpIfZero(t) | Insn::JumpIfNonZero(t) = insn {
            if (*t as usize) < len {
                leader[*t as usize] = true;
            }
        }
        if is_terminator(insn) && pc + 1 < len {
            leader[pc + 1] = true;
        }
    }

    let mut blocks: Vec<Block> = Vec::new();
    let mut block_at = vec![u32::MAX; len];
    let mut start = 0usize;
    while start < len {
        debug_assert!(leader[start]);
        let mut end = start + 1;
        while end < len && !leader[end] {
            end += 1;
        }
        let mut ops: Vec<BOp> = (start..end)
            .map(|pc| BOp { op: decode_insn(code[pc], func.n_locals, len), pc: pc as u32 })
            .collect();
        pipeline.run(&mut ops, stats);

        let mut retire = 0u64;
        let mut rel: i64 = 0;
        let mut req: i64 = 0;
        for bop in &ops {
            retire += op_retire(&bop.op);
            let (pops, pushes, need) = op_stack_shape(&bop.op);
            req = req.max(need as i64 - rel);
            rel += pushes as i64 - pops as i64;
        }

        stats.ops += ops.len() as u64;
        block_at[start] = blocks.len() as u32;
        blocks.push(Block {
            start_pc: start as u32,
            end_pc: end as u32,
            ops,
            retire,
            entry_depth_req: req.max(0) as u32,
        });
        start = end;
    }
    stats.blocks += blocks.len() as u64;

    CompiledFunc { code_len: len, blocks, block_at }
}
