//! The compiled execution tier: block-decoded, pass-optimized, and
//! **bit-identical** to the interpreter.
//!
//! The interpreter ([`crate::interp`]) decides every offload trigger, taint
//! propagation, and guard kill one opcode at a time — fetch, dispatch,
//! frame lookup, budget check, per instruction. That is the right shape for
//! the security argument and the wrong shape for throughput. This module
//! adds a translation tier:
//!
//! 1. **decode** ([`decode`]): each function is decoded once into a CFG of
//!    basic blocks over a compact op IR, with static stack-depth and
//!    local-slot verification per block;
//! 2. **passes** ([`passes`]): a small pipeline — constant folding,
//!    dead-store elimination, superinstruction fusion — rewrites each
//!    block while preserving every observable charge (retired instruction
//!    counts, cycle costs, taint-engine move reports);
//! 3. **execute** ([`exec`]): blocks whose guard budgets
//!    (fuel/heap/depth/taint-idle) are satisfied for the *whole block* run
//!    through a tight native loop that pays the fetch/dispatch/budget
//!    overhead once per block; any precondition failure, offload trigger,
//!    guard kill, or opcode outside the fast subset **deoptimizes** to the
//!    interpreter's own [`crate::interp::Interp::step`], so machine state
//!    at every suspension point is byte-for-byte what the interpreter
//!    would have produced.
//!
//! The equivalence contract (enforced by `tests/tier.rs` differential
//! proptests and the hostile-bytecode fuzzer): for any bytecode, any taint
//! engine, and any [`crate::ExecConfig`], running under this tier yields
//! the same `Result<ExecEvent, VmError>`, the same serialized
//! [`crate::Machine`] bytes, and the same serialized
//! [`tinman_taint::TaintEngine`] state as the interpreter.

pub(crate) mod decode;
pub(crate) mod exec;
pub(crate) mod passes;

pub use passes::PassPipeline;

use serde::{Deserialize, Serialize};

use crate::error::VmError;
use crate::interp::{ExecConfig, ExecEvent, NativeHost};
use crate::machine::Machine;
use crate::program::AppImage;
use tinman_taint::TaintEngine;

/// Which execution tier runs a machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecTier {
    /// The per-opcode interpreter (the reference semantics).
    #[default]
    Interpret,
    /// The block-compiled tier; deoptimizes to the interpreter at any
    /// trigger, kill, or unsupported opcode.
    Blocks,
}

impl ExecTier {
    /// Stable lower-case name for reports and JSON schemas.
    pub fn name(self) -> &'static str {
        match self {
            ExecTier::Interpret => "interp",
            ExecTier::Blocks => "blocks",
        }
    }
}

/// A function's worth of decoded, optimized basic blocks.
#[derive(Clone, Debug)]
pub(crate) struct CompiledFunc {
    /// Source code length, for the cheap image-binding check.
    pub code_len: usize,
    /// Basic blocks, in leader order.
    pub blocks: Vec<decode::Block>,
    /// `block_at[pc]` = index into `blocks` if `pc` is a leader, else
    /// `u32::MAX`. Sized `code_len` (pc == code_len falls to stepping,
    /// which handles the implicit `RetVoid`).
    pub block_at: Vec<u32>,
}

impl CompiledFunc {
    /// The block starting at `pc`, if `pc` is a leader.
    pub fn block_index(&self, pc: usize) -> Option<usize> {
        match self.block_at.get(pc) {
            Some(&i) if i != u32::MAX => Some(i as usize),
            _ => None,
        }
    }
}

/// Aggregate counters from one compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Functions compiled.
    pub functions: u64,
    /// Basic blocks formed.
    pub blocks: u64,
    /// Source instructions decoded.
    pub insns: u64,
    /// Ops in the final IR (after passes).
    pub ops: u64,
    /// Constant-folding rewrites applied.
    pub folded: u64,
    /// Dead stores (and dead pushes) eliminated.
    pub eliminated: u64,
    /// Superinstructions fused.
    pub fused: u64,
}

/// An [`AppImage`] decoded and optimized for the block tier.
///
/// Compile once, run many times: compilation is pure (no machine state
/// involved), so one `CompiledImage` serves every machine executing the
/// same image, concurrently or sequentially.
#[derive(Clone, Debug)]
pub struct CompiledImage {
    pub(crate) funcs: Vec<CompiledFunc>,
    stats: CompileStats,
}

impl CompiledImage {
    /// Decodes and optimizes every function of `image` with the default
    /// pass pipeline.
    pub fn compile(image: &AppImage) -> CompiledImage {
        Self::compile_with(image, &passes::PassPipeline::default())
    }

    /// Decodes every function and runs the given pass pipeline.
    pub fn compile_with(image: &AppImage, pipeline: &passes::PassPipeline) -> CompiledImage {
        let mut stats = CompileStats::default();
        let mut funcs = Vec::with_capacity(image.functions.len());
        for func in &image.functions {
            let compiled = decode::compile_function(func, pipeline, &mut stats);
            funcs.push(compiled);
        }
        stats.functions = funcs.len() as u64;
        CompiledImage { funcs, stats }
    }

    /// Counters from the compilation.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Cheap structural binding check: does this compiled image plausibly
    /// belong to `image`? (Function count and per-function code lengths.)
    pub fn matches(&self, image: &AppImage) -> bool {
        self.funcs.len() == image.functions.len()
            && self.funcs.iter().zip(&image.functions).all(|(c, f)| c.code_len == f.code.len())
    }
}

/// Runtime counters from tiered execution. Deliberately **not** part of
/// [`Machine`]: machine bytes must stay identical across tiers, so tier
/// bookkeeping lives outside the serialized state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierTelemetry {
    /// Blocks executed natively (all preconditions held).
    pub block_runs: u64,
    /// Source instructions retired through native block execution.
    pub fast_insns: u64,
    /// Source instructions retired by deoptimized per-opcode stepping.
    pub stepped_insns: u64,
    /// Block-entry precondition failures (each falls back to stepping).
    pub deopts: u64,
}

impl TierTelemetry {
    /// Merges another telemetry snapshot into this one.
    pub fn absorb(&mut self, other: &TierTelemetry) {
        self.block_runs += other.block_runs;
        self.fast_insns += other.fast_insns;
        self.stepped_insns += other.stepped_insns;
        self.deopts += other.deopts;
    }
}

/// Runs a machine under the block tier until an event occurs, exactly like
/// [`crate::interp::run`] — same events, same errors, same machine bytes.
///
/// `compiled` must have been produced from `image` (checked cheaply;
/// mismatch is [`VmError::CompiledImageMismatch`]). `telemetry` accumulates
/// tier counters across calls.
pub fn run_tiered<H: NativeHost>(
    machine: &mut Machine,
    image: &AppImage,
    compiled: &CompiledImage,
    host: &mut H,
    engine: &mut TaintEngine,
    config: ExecConfig,
    telemetry: &mut TierTelemetry,
) -> Result<ExecEvent, VmError> {
    exec::run(machine, image, compiled, host, engine, config, telemetry)
}
