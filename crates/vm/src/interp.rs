//! The interpreter.
//!
//! [`Interp::run`] executes a [`Machine`] against an [`AppImage`] until the
//! program halts, an error occurs, or an *execution event* requires the
//! embedding runtime to intervene — which is how TinMan's on-demand
//! offloading is expressed: the machine suspends exactly at the triggering
//! instruction (no state mutated), the runtime migrates it, and the other
//! endpoint re-executes that instruction with the real cor materialized.

use serde::{Deserialize, Serialize};
use tinman_taint::{PropClass, TaintEngine, TaintSet};

use crate::error::VmError;
use crate::frame::Frame;
use crate::heap::Heap;
use crate::insn::Insn;
use crate::machine::{LockSite, Machine, MachineStatus};
use crate::program::AppImage;
use crate::tier::ExecTier;
use crate::value::{ObjId, Value};

/// Why an offload trigger fired.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TriggerReason {
    /// Tainted heap data was about to be read onto the operand stack
    /// (Figure 10, line 3).
    TaintedRead,
    /// A new value was about to be derived from tainted heap data
    /// (Figure 11, line 6).
    TaintedDerive,
    /// A native was invoked with a tainted argument the client cannot
    /// process locally (e.g. hashing a placeholder).
    TaintedNative {
        /// Native name.
        name: String,
    },
}

/// Why the interpreter returned control to the runtime.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExecEvent {
    /// The program finished; the payload is its result value.
    Halted(Value),
    /// Offloading must intervene before this instruction can execute.
    /// Machine state is unchanged (the pc still points at the triggering
    /// instruction).
    OffloadTrigger {
        /// The taint labels involved.
        labels: TaintSet,
        /// What kind of access triggered.
        reason: TriggerReason,
    },
    /// A native that cannot run on this endpoint was invoked (I/O or
    /// third-party library on the trusted node — §3.1 migrate-back case 2).
    /// State unchanged; re-execute after migrating back.
    MigrateBack {
        /// Native name.
        native: String,
    },
    /// A monitor owned by the other endpoint was entered; a DSM sync must
    /// transfer ownership (the paper's third sync cause). State unchanged.
    LockRemote(ObjId),
    /// No tainted data has been touched for the configured number of
    /// instructions (§3.1 migrate-back case 1). Only raised when
    /// [`ExecConfig::taint_idle_limit`] is set.
    TaintIdle,
    /// The fuel budget ran out; call `run` again to continue.
    OutOfFuel,
}

/// Per-run execution configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Which endpoint this machine currently executes on (monitor ownership
    /// checks compare against it).
    pub site: LockSite,
    /// Raise [`ExecEvent::TaintIdle`] after this many instructions without
    /// touching taint. `None` disables (client side).
    pub taint_idle_limit: Option<u64>,
    /// Stop with [`ExecEvent::OutOfFuel`] after this many instructions.
    pub fuel: Option<u64>,
    /// Fault with [`VmError::HeapQuotaExceeded`] once the heap holds more
    /// than this many live objects.
    pub max_heap_objects: Option<u64>,
    /// Fault with [`VmError::HeapQuotaExceeded`] once the heap's allocated
    /// payload exceeds this many bytes.
    pub max_heap_bytes: Option<u64>,
    /// Fault with [`VmError::CallDepthExceeded`] once the call stack grows
    /// deeper than this many frames.
    pub max_call_depth: Option<usize>,
    /// Which execution tier the embedder selected for this run. The
    /// interpreter itself ignores the field (it *is* the
    /// [`ExecTier::Interpret`] tier); the runtime reads it to decide
    /// whether to dispatch through [`crate::tier::run_tiered`] instead.
    /// Tier selection never changes observable machine state — the
    /// compiled tier is bit-identical to the interpreter by contract.
    pub tier: ExecTier,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            site: LockSite::Client,
            taint_idle_limit: None,
            fuel: None,
            max_heap_objects: None,
            max_heap_bytes: None,
            max_call_depth: None,
            tier: ExecTier::Interpret,
        }
    }
}

impl ExecConfig {
    /// Client-side defaults.
    pub fn client() -> Self {
        ExecConfig::default()
    }

    /// Trusted-node defaults with the given migrate-back idle threshold.
    /// The node executes *untrusted guest bytecode*, so fuel is mandatory
    /// here: a node-side segment can never spin forever.
    pub fn trusted_node(taint_idle_limit: u64, fuel: u64) -> Self {
        ExecConfig {
            site: LockSite::TrustedNode,
            taint_idle_limit: Some(taint_idle_limit),
            fuel: Some(fuel),
            max_heap_objects: None,
            max_heap_bytes: None,
            max_call_depth: None,
            tier: ExecTier::Interpret,
        }
    }

    /// Caps the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Caps live heap objects and allocated payload bytes.
    pub fn with_heap_quota(mut self, objects: u64, bytes: u64) -> Self {
        self.max_heap_objects = Some(objects);
        self.max_heap_bytes = Some(bytes);
        self
    }

    /// Caps the call-stack depth.
    pub fn with_depth_limit(mut self, depth: usize) -> Self {
        self.max_call_depth = Some(depth);
        self
    }

    /// Selects the execution tier.
    pub fn with_tier(mut self, tier: ExecTier) -> Self {
        self.tier = tier;
        self
    }
}

/// Everything a native implementation may touch.
pub struct NativeCtx<'a> {
    /// The native's imported name.
    pub name: &'a str,
    /// Argument values (first argument first).
    pub args: &'a [Value],
    /// Shadow taint of each argument slot. Note that for `Ref` arguments
    /// the *object's* taint matters too; use [`NativeCtx::arg_effective_taint`].
    pub arg_taints: &'a [TaintSet],
    /// The machine's heap, for reading strings and allocating results.
    pub heap: &'a mut Heap,
    /// The endpoint executing this native.
    pub site: LockSite,
}

impl NativeCtx<'_> {
    /// The taint of argument `i` including, for references, the referenced
    /// object's labels.
    ///
    /// A missing taint slot is a typed error, not an empty default: the
    /// shadow arrays are the only record of which arguments carry cor
    /// labels, so an args/taints length mismatch (an embedder building a
    /// [`NativeCtx`] by hand) must fail closed rather than silently launder
    /// a tainted argument as clean.
    pub fn arg_effective_taint(&self, i: usize) -> Result<TaintSet, VmError> {
        let slot = *self.arg_taints.get(i).ok_or(VmError::TaintSlotMismatch {
            index: i,
            args: self.args.len(),
            taints: self.arg_taints.len(),
        })?;
        match self.args.get(i) {
            Some(Value::Ref(id)) => Ok(slot.union(self.heap.taint_of(*id)?)),
            _ => Ok(slot),
        }
    }

    /// Union of effective taints across all arguments.
    pub fn args_taint(&self) -> Result<TaintSet, VmError> {
        let mut t = TaintSet::EMPTY;
        for i in 0..self.args.len() {
            t = t.union(self.arg_effective_taint(i)?);
        }
        Ok(t)
    }

    /// Convenience: argument `i` as a heap string.
    pub fn str_arg(&self, i: usize) -> Result<&str, VmError> {
        let v = self.args.get(i).ok_or_else(|| VmError::NativeError {
            name: self.name.to_owned(),
            message: format!("missing argument {i}"),
        })?;
        self.heap.str_value(v.as_ref_id().map_err(|found| VmError::NativeError {
            name: self.name.to_owned(),
            message: format!("argument {i}: expected ref, found {found}"),
        })?)
    }

    /// Convenience: argument `i` as an integer.
    pub fn int_arg(&self, i: usize) -> Result<i64, VmError> {
        let v = self.args.get(i).ok_or_else(|| VmError::NativeError {
            name: self.name.to_owned(),
            message: format!("missing argument {i}"),
        })?;
        v.as_int().map_err(|found| VmError::NativeError {
            name: self.name.to_owned(),
            message: format!("argument {i}: expected int, found {found}"),
        })
    }

    /// Convenience error constructor.
    pub fn error(&self, message: impl Into<String>) -> VmError {
        VmError::NativeError { name: self.name.to_owned(), message: message.into() }
    }
}

/// What a native decided.
#[derive(Clone, Debug, PartialEq)]
pub enum NativeOutcome {
    /// The native executed; push this result.
    Ret {
        /// Result value (may be `Value::Null` for void natives).
        value: Value,
        /// Taint to attach to the result's stack slot.
        taint: TaintSet,
        /// Extra interpreter cycles the native consumed (I/O setup, crypto,
        /// …); charged to the executing device.
        cycles: u64,
    },
    /// The native touches tainted data and must run on the trusted node;
    /// suspend and offload (client side only).
    TriggerOffload,
    /// The native cannot run on this endpoint (non-offloadable I/O on the
    /// trusted node); suspend and migrate back.
    MigrateBack,
}

impl NativeOutcome {
    /// A plain return with no taint and no extra cycles.
    pub fn ret(value: Value) -> Self {
        NativeOutcome::Ret { value, taint: TaintSet::EMPTY, cycles: 0 }
    }

    /// A void return.
    pub fn void() -> Self {
        Self::ret(Value::Null)
    }
}

/// The embedder's native-function dispatcher.
pub trait NativeHost {
    /// Executes (or refuses) the named native.
    fn call(&mut self, ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError>;
}

/// A host with no natives bound; any native call errors. Useful for pure
/// computations such as the Caffeinemark kernels.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullHost;

impl NativeHost for NullHost {
    fn call(&mut self, ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError> {
        Err(VmError::UnboundNative { name: ctx.name.to_owned() })
    }
}

impl<F> NativeHost for F
where
    F: FnMut(NativeCtx<'_>) -> Result<NativeOutcome, VmError>,
{
    fn call(&mut self, ctx: NativeCtx<'_>) -> Result<NativeOutcome, VmError> {
        self(ctx)
    }
}

/// The interpreter: borrows the machine, image, host and taint engine for
/// one `run` call.
///
/// Field visibility is `pub(crate)` so the compiled tier
/// ([`crate::tier`]) can wrap [`Interp::step`] for every opcode outside
/// its fast subset — complex opcodes are then bit-identical between tiers
/// *by construction*, because both tiers execute the same code.
pub struct Interp<'a, H: NativeHost> {
    pub(crate) machine: &'a mut Machine,
    pub(crate) image: &'a AppImage,
    pub(crate) host: &'a mut H,
    pub(crate) engine: &'a mut TaintEngine,
    pub(crate) config: ExecConfig,
}

/// Outcome of executing one instruction.
pub(crate) enum Step {
    /// Continue with the next instruction.
    Continue,
    /// Suspend with this event (machine state already consistent).
    Event(ExecEvent),
}

impl<'a, H: NativeHost> Interp<'a, H> {
    /// Creates an interpreter for one run.
    pub fn new(
        machine: &'a mut Machine,
        image: &'a AppImage,
        host: &'a mut H,
        engine: &'a mut TaintEngine,
        config: ExecConfig,
    ) -> Self {
        Interp { machine, image, host, engine, config }
    }

    /// Pushes the entry frame if the machine has never run. A runnable
    /// machine with no frames that has already retired instructions is
    /// malformed (its stack was torn down externally); restarting it from
    /// the entry point would silently re-run the program, so refuse.
    pub(crate) fn ensure_started(&mut self) -> Result<(), VmError> {
        if self.machine.frames.is_empty() {
            if self.machine.stats.instrs > 0 {
                return Err(VmError::NoFrame);
            }
            let entry = self.image.entry;
            let f = self.image.function(entry).ok_or(VmError::NoSuchFunction { id: entry.0 })?;
            self.machine.frames.push(Frame::new(entry, f.name.clone(), f.n_locals));
        }
        Ok(())
    }

    /// Checks the heap quota and call-depth limits (guard budgets).
    pub(crate) fn check_budgets(&self) -> Result<(), VmError> {
        if let Some(limit) = self.config.max_call_depth {
            let depth = self.machine.call_depth();
            if depth > limit {
                return Err(VmError::CallDepthExceeded { depth });
            }
        }
        let objects = self.machine.heap.len() as u64;
        let bytes = self.machine.heap.allocated_bytes();
        if self.config.max_heap_objects.is_some_and(|m| objects > m)
            || self.config.max_heap_bytes.is_some_and(|m| bytes > m)
        {
            return Err(VmError::HeapQuotaExceeded { objects, bytes });
        }
        Ok(())
    }

    /// Runs until an event occurs. On `Err`, the machine is marked faulted.
    pub fn run(mut self) -> Result<ExecEvent, VmError> {
        if !self.machine.is_runnable() {
            return Err(VmError::NotRunnable { status: self.machine.status.name() });
        }
        if let Err(e) = self.ensure_started() {
            self.machine.status = MachineStatus::Faulted;
            return Err(e);
        }
        let mut fuel = self.config.fuel;
        loop {
            if let Some(f) = fuel.as_mut() {
                if *f == 0 {
                    return Ok(ExecEvent::OutOfFuel);
                }
                *f -= 1;
            }
            match self.step() {
                Ok(Step::Continue) => {
                    if let Err(e) = self.check_budgets() {
                        self.machine.status = MachineStatus::Faulted;
                        return Err(e);
                    }
                    if let Some(limit) = self.config.taint_idle_limit {
                        // Migrating back is only safe once no tainted value
                        // rests in any stack or local slot — otherwise the
                        // migration itself would ship cor-derived data to
                        // the client.
                        if self.machine.stats.instrs_since_taint_use >= limit
                            && !self.machine.any_stack_taint()
                        {
                            self.machine.stats.instrs_since_taint_use = 0;
                            return Ok(ExecEvent::TaintIdle);
                        }
                    }
                }
                Ok(Step::Event(ev)) => {
                    if let ExecEvent::Halted(v) = &ev {
                        self.machine.status = MachineStatus::Halted;
                        self.machine.result = *v;
                    }
                    return Ok(ev);
                }
                Err(e) => {
                    self.machine.status = MachineStatus::Faulted;
                    return Err(e);
                }
            }
        }
    }

    /// Charges cycles to the machine's counters.
    pub(crate) fn charge(&mut self, cycles: u64) {
        self.machine.stats.cycles += cycles;
    }

    /// Charges taint-instrumentation cycles.
    pub(crate) fn charge_taint(&mut self, cycles: u64) {
        self.machine.stats.cycles += cycles;
        self.machine.stats.taint_cycles += cycles;
    }

    /// Notes whether the just-executed move touched tainted data, for the
    /// migrate-back-on-idle rule.
    pub(crate) fn note_taint_touch(&mut self, src: TaintSet) {
        if src.is_tainted() {
            self.machine.stats.instrs_since_taint_use = 0;
        }
    }

    /// Fetches the current instruction.
    fn fetch(&self) -> Result<(Insn, usize), VmError> {
        let frame = self.machine.top_frame().ok_or(VmError::NoFrame)?;
        let func =
            self.image.function(frame.func).ok_or(VmError::NoSuchFunction { id: frame.func.0 })?;
        match func.code.get(frame.pc) {
            Some(&insn) => Ok((insn, frame.pc)),
            // Falling off the end behaves as RetVoid, matching builder
            // convenience.
            None => Ok((Insn::RetVoid, frame.pc)),
        }
    }

    fn frame(&mut self) -> Result<&mut Frame, VmError> {
        self.machine.top_frame_mut().ok_or(VmError::NoFrame)
    }

    /// Executes one instruction.
    pub(crate) fn step(&mut self) -> Result<Step, VmError> {
        let (insn, _pc) = self.fetch()?;
        self.machine.stats.instrs += 1;
        self.machine.stats.instrs_since_taint_use =
            self.machine.stats.instrs_since_taint_use.saturating_add(1);
        self.charge(insn.base_cost());

        // Most instructions advance the pc by one; control flow overrides.
        macro_rules! advance {
            () => {{
                self.frame()?.pc += 1;
                Ok(Step::Continue)
            }};
        }

        match insn {
            Insn::Nop => advance!(),
            Insn::ConstI(i) => {
                self.frame()?.push(Value::Int(i), TaintSet::EMPTY);
                advance!()
            }
            Insn::ConstD(d) => {
                self.frame()?.push(Value::Double(d), TaintSet::EMPTY);
                advance!()
            }
            Insn::ConstNull => {
                self.frame()?.push(Value::Null, TaintSet::EMPTY);
                advance!()
            }
            Insn::ConstS(idx) => {
                let content = self
                    .image
                    .string(idx)
                    .ok_or(VmError::NoSuchString { index: idx.0 })?
                    .to_owned();
                let id = self.machine.heap.intern_str(idx.0, &content);
                self.frame()?.push(Value::Ref(id), TaintSet::EMPTY);
                advance!()
            }
            Insn::Load(n) => {
                let (v, t) = self.frame()?.local(n)?;
                let out = self.engine.on_move(PropClass::StackToStack, t);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(t);
                self.frame()?.push(v, out.dst_taint);
                advance!()
            }
            Insn::Store(n) => {
                let (v, t) = self.frame()?.pop()?;
                let out = self.engine.on_move(PropClass::StackToStack, t);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(t);
                self.frame()?.set_local(n, v, out.dst_taint)?;
                advance!()
            }
            Insn::Dup => {
                let (v, t) = self.frame()?.peek(0)?;
                let out = self.engine.on_move(PropClass::StackToStack, t);
                self.charge_taint(out.extra_cycles);
                self.frame()?.push(v, out.dst_taint.union(t));
                advance!()
            }
            Insn::Pop => {
                self.frame()?.pop()?;
                advance!()
            }
            Insn::Swap => {
                let (a, ta) = self.frame()?.pop()?;
                let (b, tb) = self.frame()?.pop()?;
                self.frame()?.push(a, ta);
                self.frame()?.push(b, tb);
                advance!()
            }
            Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::BitAnd
            | Insn::BitOr
            | Insn::BitXor
            | Insn::Shl
            | Insn::Shr => {
                let (b, tb) = self.frame()?.pop()?;
                let (a, ta) = self.frame()?.pop()?;
                let srcs = ta.union(tb);
                let out = self.engine.on_move(PropClass::StackToStack, srcs);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(srcs);
                let v = self.binop(insn, a, b)?;
                self.frame()?.push(v, out.dst_taint);
                advance!()
            }
            Insn::Neg => {
                let (a, ta) = self.frame()?.pop()?;
                let out = self.engine.on_move(PropClass::StackToStack, ta);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(ta);
                let v = match a {
                    Value::Int(i) => Value::Int(i.wrapping_neg()),
                    Value::Double(d) => Value::Double(-d),
                    other => return Err(self.type_err("number", other.type_name())),
                };
                self.frame()?.push(v, out.dst_taint);
                advance!()
            }
            Insn::CmpEq | Insn::CmpNe | Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe => {
                let (b, tb) = self.frame()?.pop()?;
                let (a, ta) = self.frame()?.pop()?;
                let srcs = ta.union(tb);
                let out = self.engine.on_move(PropClass::StackToStack, srcs);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(srcs);
                let r = self.compare(insn, a, b)?;
                self.frame()?.push(Value::Int(r as i64), out.dst_taint);
                advance!()
            }
            Insn::I2D => {
                let (a, ta) = self.frame()?.pop()?;
                let out = self.engine.on_move(PropClass::StackToStack, ta);
                self.charge_taint(out.extra_cycles);
                let i = a.as_int().map_err(|f| self.type_err("int", f))?;
                self.frame()?.push(Value::Double(i as f64), out.dst_taint);
                advance!()
            }
            Insn::D2I => {
                let (a, ta) = self.frame()?.pop()?;
                let out = self.engine.on_move(PropClass::StackToStack, ta);
                self.charge_taint(out.extra_cycles);
                let d = a.as_double().map_err(|f| self.type_err("double", f))?;
                self.frame()?.push(Value::Int(d as i64), out.dst_taint);
                advance!()
            }
            Insn::Jump(target) => self.jump(target),
            Insn::JumpIfZero(target) => {
                let (v, t) = self.frame()?.pop()?;
                self.note_taint_touch(t);
                if !v.is_truthy() {
                    self.jump(target)
                } else {
                    advance!()
                }
            }
            Insn::JumpIfNonZero(target) => {
                let (v, t) = self.frame()?.pop()?;
                self.note_taint_touch(t);
                if v.is_truthy() {
                    self.jump(target)
                } else {
                    advance!()
                }
            }
            Insn::New(class) => {
                let def = self.image.class(class).ok_or(VmError::NoSuchClass { id: class.0 })?;
                let id = self.machine.heap.alloc_obj(class.0, def.field_count());
                self.frame()?.push(Value::Ref(id), TaintSet::EMPTY);
                advance!()
            }
            Insn::GetField(n) => {
                // Peek (not pop) so a trigger leaves state untouched.
                let (objv, _) = self.frame()?.peek(0)?;
                let obj = objv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let value = self.machine.heap.field_get(obj, n)?;
                if value.is_ref_like() {
                    // Copying a reference moves no tainted data (§3.5).
                    self.frame()?.pop()?;
                    self.frame()?.push(value, TaintSet::EMPTY);
                    return advance!();
                }
                let src = self.machine.heap.taint_of(obj)?;
                let out = self.engine.on_move(PropClass::HeapToStack, src);
                self.charge_taint(out.extra_cycles);
                if out.trigger_offload {
                    return Ok(Step::Event(ExecEvent::OffloadTrigger {
                        labels: src,
                        reason: TriggerReason::TaintedRead,
                    }));
                }
                self.note_taint_touch(src);
                self.frame()?.pop()?;
                self.frame()?.push(value, out.dst_taint);
                advance!()
            }
            Insn::PutField(n) => {
                let (value, vt) = self.frame()?.peek(0)?;
                let (objv, _) = self.frame()?.peek(1)?;
                let obj = objv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let out = self.engine.on_move(PropClass::StackToHeap, vt);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(vt);
                self.frame()?.pop()?;
                self.frame()?.pop()?;
                self.machine.heap.field_set(obj, n, value)?;
                if out.dst_taint.is_tainted() {
                    self.machine.heap.add_taint(obj, out.dst_taint)?;
                }
                advance!()
            }
            Insn::CloneObj => {
                let (objv, _) = self.frame()?.peek(0)?;
                let obj = objv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let src = self.machine.heap.taint_of(obj)?;
                // A clone is a heap→heap *copy*: tracked on both endpoints,
                // never a trigger.
                let out = self.engine.on_move(PropClass::HeapToHeap, src);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(src);
                let bytes = self.machine.heap.get(obj)?.kind.byte_size();
                self.charge(bytes / 8);
                self.frame()?.pop()?;
                let copy = self.machine.heap.clone_obj(obj)?;
                // clone_obj preserved the full source taint; narrow it to
                // what the engine propagates (None-engine: nothing).
                self.machine.heap.set_taint(copy, out.dst_taint)?;
                self.frame()?.push(Value::Ref(copy), TaintSet::EMPTY);
                advance!()
            }
            Insn::NewArr => {
                let (lenv, _) = self.frame()?.pop()?;
                let len = lenv.as_int().map_err(|f| self.type_err("int", f))?;
                if len < 0 {
                    return Err(VmError::BadStringOp {
                        message: format!("negative array length {len}"),
                    });
                }
                // Charge the byte quota *before* the backing store exists:
                // the length is guest-controlled, and a hostile `ConstI(2^40);
                // NewArr` must die on the quota, not drive the allocator.
                // Unquota'd machines still cap a single allocation — no
                // bytecode may ask the simulator for terabytes of backing.
                const MAX_ARR_ELEMS: u64 = 1 << 28;
                let bytes = self
                    .machine
                    .heap
                    .allocated_bytes()
                    .saturating_add((len as u64).saturating_mul(8));
                if len as u64 > MAX_ARR_ELEMS
                    || self.config.max_heap_bytes.is_some_and(|m| bytes > m)
                {
                    return Err(VmError::HeapQuotaExceeded {
                        objects: self.machine.heap.len() as u64,
                        bytes,
                    });
                }
                self.charge(len as u64 / 8);
                let id = self.machine.heap.alloc_arr(len as usize);
                self.frame()?.push(Value::Ref(id), TaintSet::EMPTY);
                advance!()
            }
            Insn::ArrLoad => {
                let (idxv, _) = self.frame()?.peek(0)?;
                let (arrv, _) = self.frame()?.peek(1)?;
                let arr = arrv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let index = idxv.as_int().map_err(|f| self.type_err("int", f))?;
                let value = self.machine.heap.arr_get(arr, index)?;
                if value.is_ref_like() {
                    self.frame()?.pop()?;
                    self.frame()?.pop()?;
                    self.frame()?.push(value, TaintSet::EMPTY);
                    return advance!();
                }
                let src = self.machine.heap.taint_of(arr)?;
                let out = self.engine.on_move(PropClass::HeapToStack, src);
                self.charge_taint(out.extra_cycles);
                if out.trigger_offload {
                    return Ok(Step::Event(ExecEvent::OffloadTrigger {
                        labels: src,
                        reason: TriggerReason::TaintedRead,
                    }));
                }
                self.note_taint_touch(src);
                self.frame()?.pop()?;
                self.frame()?.pop()?;
                self.frame()?.push(value, out.dst_taint);
                advance!()
            }
            Insn::ArrStore => {
                let (value, vt) = self.frame()?.peek(0)?;
                let (idxv, _) = self.frame()?.peek(1)?;
                let (arrv, _) = self.frame()?.peek(2)?;
                let arr = arrv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let index = idxv.as_int().map_err(|f| self.type_err("int", f))?;
                let out = self.engine.on_move(PropClass::StackToHeap, vt);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(vt);
                self.frame()?.pop()?;
                self.frame()?.pop()?;
                self.frame()?.pop()?;
                self.machine.heap.arr_set(arr, index, value)?;
                if out.dst_taint.is_tainted() {
                    self.machine.heap.add_taint(arr, out.dst_taint)?;
                }
                advance!()
            }
            Insn::ArrLen => {
                let (arrv, _) = self.frame()?.pop()?;
                let arr = arrv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let len = self.machine.heap.arr_len(arr)?;
                self.frame()?.push(Value::Int(len as i64), TaintSet::EMPTY);
                advance!()
            }
            Insn::ArrCopy => {
                // Stack (top first): count, dst_off, dst, src_off, src.
                let (countv, _) = self.frame()?.peek(0)?;
                let (doffv, _) = self.frame()?.peek(1)?;
                let (dstv, _) = self.frame()?.peek(2)?;
                let (soffv, _) = self.frame()?.peek(3)?;
                let (srcv, _) = self.frame()?.peek(4)?;
                let count = countv.as_int().map_err(|f| self.type_err("int", f))?;
                let doff = doffv.as_int().map_err(|f| self.type_err("int", f))?;
                let soff = soffv.as_int().map_err(|f| self.type_err("int", f))?;
                let dst = dstv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let src = srcv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let src_taint = self.machine.heap.taint_of(src)?;
                // arraycopy is a heap→heap copy: propagate, never trigger.
                let out = self.engine.on_move(PropClass::HeapToHeap, src_taint);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(src_taint);
                self.charge(count.max(0) as u64 / 4);
                for k in 0..count.max(0) {
                    let v = self.machine.heap.arr_get(src, soff + k)?;
                    self.machine.heap.arr_set(dst, doff + k, v)?;
                }
                if out.dst_taint.is_tainted() {
                    self.machine.heap.add_taint(dst, out.dst_taint)?;
                }
                for _ in 0..5 {
                    self.frame()?.pop()?;
                }
                advance!()
            }
            Insn::StrConcat => {
                let (bv, _) = self.frame()?.peek(0)?;
                let (av, _) = self.frame()?.peek(1)?;
                let b = bv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let a = av.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let srcs = self.machine.heap.taint_of(a)?.union(self.machine.heap.taint_of(b)?);
                // Concatenation derives a new value: on the client this is
                // the Figure 11 line-6 trigger.
                let out = self.engine.on_derive(srcs);
                self.charge_taint(out.extra_cycles);
                if out.trigger_offload {
                    return Ok(Step::Event(ExecEvent::OffloadTrigger {
                        labels: srcs,
                        reason: TriggerReason::TaintedDerive,
                    }));
                }
                self.note_taint_touch(srcs);
                let joined = {
                    let sa = self.machine.heap.str_value(a)?;
                    let sb = self.machine.heap.str_value(b)?;
                    let mut s = String::with_capacity(sa.len() + sb.len());
                    s.push_str(sa);
                    s.push_str(sb);
                    s
                };
                self.charge(joined.len() as u64 / 8);
                self.frame()?.pop()?;
                self.frame()?.pop()?;
                let id = self.machine.heap.alloc_str_tainted(joined, out.dst_taint);
                self.frame()?.push(Value::Ref(id), TaintSet::EMPTY);
                advance!()
            }
            Insn::StrCharAt => {
                let (idxv, _) = self.frame()?.peek(0)?;
                let (sv, _) = self.frame()?.peek(1)?;
                let s = sv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let index = idxv.as_int().map_err(|f| self.type_err("int", f))?;
                let src = self.machine.heap.taint_of(s)?;
                let out = self.engine.on_move(PropClass::HeapToStack, src);
                self.charge_taint(out.extra_cycles);
                if out.trigger_offload {
                    return Ok(Step::Event(ExecEvent::OffloadTrigger {
                        labels: src,
                        reason: TriggerReason::TaintedRead,
                    }));
                }
                self.note_taint_touch(src);
                let content = self.machine.heap.str_value(s)?;
                let ch = content
                    .as_bytes()
                    .get(index.max(0) as usize)
                    .copied()
                    .ok_or(VmError::IndexOutOfBounds { obj: s, index, len: content.len() })?;
                self.frame()?.pop()?;
                self.frame()?.pop()?;
                self.frame()?.push(Value::Int(ch as i64), out.dst_taint);
                advance!()
            }
            Insn::StrLen => {
                // Length is deliberately an untainted read: the placeholder
                // has the same length as the cor (§5.1), so this neither
                // leaks nor needs to trigger offloading.
                let (sv, _) = self.frame()?.pop()?;
                let s = sv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let len = self.machine.heap.str_value(s)?.len();
                self.frame()?.push(Value::Int(len as i64), TaintSet::EMPTY);
                advance!()
            }
            Insn::StrSub => {
                let (endv, _) = self.frame()?.peek(0)?;
                let (startv, _) = self.frame()?.peek(1)?;
                let (sv, _) = self.frame()?.peek(2)?;
                let s = sv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let src = self.machine.heap.taint_of(s)?;
                let out = self.engine.on_derive(src);
                self.charge_taint(out.extra_cycles);
                if out.trigger_offload {
                    return Ok(Step::Event(ExecEvent::OffloadTrigger {
                        labels: src,
                        reason: TriggerReason::TaintedDerive,
                    }));
                }
                self.note_taint_touch(src);
                let start = startv.as_int().map_err(|f| self.type_err("int", f))?;
                let end = endv.as_int().map_err(|f| self.type_err("int", f))?;
                let content = self.machine.heap.str_value(s)?;
                if start < 0 || end < start || end as usize > content.len() {
                    return Err(VmError::BadStringOp {
                        message: format!("substring [{start}, {end}) of len {}", content.len()),
                    });
                }
                let sub = content[start as usize..end as usize].to_owned();
                self.charge(sub.len() as u64 / 8);
                for _ in 0..3 {
                    self.frame()?.pop()?;
                }
                let id = self.machine.heap.alloc_str_tainted(sub, out.dst_taint);
                self.frame()?.push(Value::Ref(id), TaintSet::EMPTY);
                advance!()
            }
            Insn::StrIndexOf => {
                let (needlev, _) = self.frame()?.peek(0)?;
                let (hayv, _) = self.frame()?.peek(1)?;
                let needle = needlev.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let hay = hayv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let srcs =
                    self.machine.heap.taint_of(needle)?.union(self.machine.heap.taint_of(hay)?);
                let out = self.engine.on_move(PropClass::HeapToStack, srcs);
                self.charge_taint(out.extra_cycles);
                if out.trigger_offload {
                    return Ok(Step::Event(ExecEvent::OffloadTrigger {
                        labels: srcs,
                        reason: TriggerReason::TaintedRead,
                    }));
                }
                self.note_taint_touch(srcs);
                let (pos, scan_len) = {
                    let h = self.machine.heap.str_value(hay)?;
                    let n = self.machine.heap.str_value(needle)?;
                    (h.find(n).map(|i| i as i64).unwrap_or(-1), (h.len() + n.len()) as u64)
                };
                self.charge(scan_len / 8);
                self.frame()?.pop()?;
                self.frame()?.pop()?;
                self.frame()?.push(Value::Int(pos), out.dst_taint);
                advance!()
            }
            Insn::StrEq => {
                let (bv, _) = self.frame()?.peek(0)?;
                let (av, _) = self.frame()?.peek(1)?;
                let b = bv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let a = av.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let srcs = self.machine.heap.taint_of(a)?.union(self.machine.heap.taint_of(b)?);
                // Comparing contents is a value-dependent heap read: a
                // placeholder would compare wrongly, so this must offload.
                let out = self.engine.on_move(PropClass::HeapToStack, srcs);
                self.charge_taint(out.extra_cycles);
                if out.trigger_offload {
                    return Ok(Step::Event(ExecEvent::OffloadTrigger {
                        labels: srcs,
                        reason: TriggerReason::TaintedRead,
                    }));
                }
                self.note_taint_touch(srcs);
                let (eq, cmp_len) = {
                    let sa = self.machine.heap.str_value(a)?;
                    let sb = self.machine.heap.str_value(b)?;
                    (sa == sb, sa.len().min(sb.len()) as u64)
                };
                self.charge(cmp_len / 8);
                self.frame()?.pop()?;
                self.frame()?.pop()?;
                self.frame()?.push(Value::Int(eq as i64), out.dst_taint);
                advance!()
            }
            Insn::StrFromInt => {
                let (v, vt) = self.frame()?.pop()?;
                let out = self.engine.on_move(PropClass::StackToHeap, vt);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(vt);
                let i = v.as_int().map_err(|f| self.type_err("int", f))?;
                let id = self.machine.heap.alloc_str_tainted(i.to_string(), out.dst_taint);
                self.frame()?.push(Value::Ref(id), TaintSet::EMPTY);
                advance!()
            }
            Insn::StrFromChar => {
                let (v, vt) = self.frame()?.pop()?;
                let out = self.engine.on_move(PropClass::StackToHeap, vt);
                self.charge_taint(out.extra_cycles);
                self.note_taint_touch(vt);
                let i = v.as_int().map_err(|f| self.type_err("int", f))?;
                // Only valid Unicode scalar values convert; truncating
                // through `as u32` and papering over failures with a
                // replacement character would give re-execution on the
                // other endpoint (and the compiled tier) room to diverge
                // silently. Out-of-range codes trap instead.
                let ch = u32::try_from(i).ok().and_then(char::from_u32).ok_or_else(|| {
                    VmError::BadStringOp {
                        message: format!("char code {i} is not a Unicode scalar value"),
                    }
                })?;
                let id = self.machine.heap.alloc_str_tainted(ch.to_string(), out.dst_taint);
                self.frame()?.push(Value::Ref(id), TaintSet::EMPTY);
                advance!()
            }
            Insn::Call(fid) => {
                let callee =
                    self.image.function(fid).ok_or(VmError::NoSuchFunction { id: fid.0 })?;
                self.machine.stats.method_invocations += 1;
                let n_args = callee.n_args as usize;
                let mut new_frame = Frame::new(fid, callee.name.clone(), callee.n_locals);
                // Pop args (last arg on top) into the callee's first locals.
                for i in (0..n_args).rev() {
                    let (v, t) = self.frame()?.pop()?;
                    let out = self.engine.on_move(PropClass::StackToStack, t);
                    self.charge_taint(out.extra_cycles);
                    new_frame.set_local(i as u16, v, out.dst_taint)?;
                }
                // Return to the instruction after the call.
                self.frame()?.pc += 1;
                self.machine.frames.push(new_frame);
                Ok(Step::Continue)
            }
            Insn::CallNative(nid, argc) => {
                let name =
                    self.image.native(nid).ok_or(VmError::NoSuchNative { id: nid.0 })?.to_owned();
                let argc = argc as usize;
                let frame = self.machine.top_frame().ok_or(VmError::NoFrame)?;
                if frame.depth() < argc {
                    return Err(VmError::StackUnderflow {
                        func: frame.func_name.clone(),
                        pc: frame.pc,
                    });
                }
                let base = frame.depth() - argc;
                let args: Vec<Value> = frame.stack[base..].to_vec();
                let arg_taints: Vec<TaintSet> = frame.stack_taint[base..].to_vec();
                let taint_in: TaintSet = {
                    let mut t = TaintSet::EMPTY;
                    for (i, v) in args.iter().enumerate() {
                        t = t.union(arg_taints[i]);
                        if let Value::Ref(id) = v {
                            t = t.union(self.machine.heap.taint_of(*id)?);
                        }
                    }
                    t
                };
                let outcome = self.host.call(NativeCtx {
                    name: &name,
                    args: &args,
                    arg_taints: &arg_taints,
                    heap: &mut self.machine.heap,
                    site: self.config.site,
                })?;
                match outcome {
                    NativeOutcome::Ret { value, taint, cycles } => {
                        self.machine.stats.native_calls += 1;
                        self.charge(cycles);
                        self.note_taint_touch(taint_in);
                        for _ in 0..argc {
                            self.frame()?.pop()?;
                        }
                        self.frame()?.push(value, taint);
                        advance!()
                    }
                    NativeOutcome::TriggerOffload => Ok(Step::Event(ExecEvent::OffloadTrigger {
                        labels: taint_in,
                        reason: TriggerReason::TaintedNative { name },
                    })),
                    NativeOutcome::MigrateBack => {
                        Ok(Step::Event(ExecEvent::MigrateBack { native: name }))
                    }
                }
            }
            Insn::Ret => {
                let (v, t) = self.frame()?.pop()?;
                self.machine.frames.pop();
                if self.machine.frames.is_empty() {
                    return Ok(Step::Event(ExecEvent::Halted(v)));
                }
                let out = self.engine.on_move(PropClass::StackToStack, t);
                self.charge_taint(out.extra_cycles);
                self.frame()?.push(v, out.dst_taint);
                Ok(Step::Continue)
            }
            Insn::RetVoid => {
                self.machine.frames.pop();
                if self.machine.frames.is_empty() {
                    return Ok(Step::Event(ExecEvent::Halted(Value::Null)));
                }
                self.frame()?.push(Value::Null, TaintSet::EMPTY);
                Ok(Step::Continue)
            }
            Insn::MonitorEnter => {
                let (objv, _) = self.frame()?.peek(0)?;
                let obj = objv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                let here = self.config.site;
                match self.machine.locks.get_mut(&obj) {
                    Some((site, count)) if *site == here => {
                        *count += 1;
                    }
                    Some((site, _)) if *site != here => {
                        // Owned remotely: a DSM sync must transfer it first.
                        return Ok(Step::Event(ExecEvent::LockRemote(obj)));
                    }
                    _ => {
                        self.machine.locks.insert(obj, (here, 1));
                    }
                }
                self.frame()?.pop()?;
                advance!()
            }
            Insn::MonitorExit => {
                let (objv, _) = self.frame()?.pop()?;
                let obj = objv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                match self.machine.locks.get_mut(&obj) {
                    Some((_, count)) if *count > 0 => {
                        *count -= 1;
                    }
                    _ => return Err(VmError::MonitorStateError { obj }),
                }
                advance!()
            }
            Insn::PinLock => {
                let (objv, _) = self.frame()?.pop()?;
                let obj = objv.as_ref_id().map_err(|f| self.type_err("ref", f))?;
                self.machine.locks.insert(obj, (self.config.site, 1));
                self.machine.pinned_locks.insert(obj);
                advance!()
            }
            Insn::Halt => {
                let v =
                    if self.frame()?.depth() > 0 { self.frame()?.pop()?.0 } else { Value::Null };
                Ok(Step::Event(ExecEvent::Halted(v)))
            }
        }
    }

    fn jump(&mut self, target: u32) -> Result<Step, VmError> {
        let frame = self.machine.top_frame().ok_or(VmError::NoFrame)?;
        let func =
            self.image.function(frame.func).ok_or(VmError::NoSuchFunction { id: frame.func.0 })?;
        if target as usize > func.code.len() {
            return Err(VmError::BadJump {
                func: frame.func_name.clone(),
                pc: frame.pc,
                target: target as i64,
            });
        }
        self.frame()?.pc = target as usize;
        Ok(Step::Continue)
    }

    pub(crate) fn type_err(&self, expected: &'static str, found: &'static str) -> VmError {
        match self.machine.top_frame() {
            Some(frame) => VmError::TypeMismatch {
                func: frame.func_name.clone(),
                pc: frame.pc,
                expected,
                found,
            },
            None => VmError::NoFrame,
        }
    }

    fn binop(&self, insn: Insn, a: Value, b: Value) -> Result<Value, VmError> {
        eval_binop(insn, a, b).map_err(|e| self.arith_err(e))
    }

    fn compare(&self, insn: Insn, a: Value, b: Value) -> Result<bool, VmError> {
        eval_compare(insn, a, b).map_err(|e| self.arith_err(e))
    }

    /// Attaches the current frame's function/pc context to a pure
    /// arithmetic error.
    pub(crate) fn arith_err(&self, e: ArithErr) -> VmError {
        match e {
            ArithErr::DivZero => self.div_zero(),
            ArithErr::Type { expected, found } => self.type_err(expected, found),
        }
    }

    fn div_zero(&self) -> VmError {
        match self.machine.top_frame() {
            Some(frame) => VmError::DivisionByZero { func: frame.func_name.clone(), pc: frame.pc },
            None => VmError::NoFrame,
        }
    }
}

/// A context-free arithmetic failure; callers attach function/pc context.
///
/// Shared by the interpreter and the compiled tier so both evaluate binary
/// operations through literally the same code path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ArithErr {
    /// Integer division or remainder by zero.
    DivZero,
    /// Operand type the operation cannot accept.
    Type {
        /// The type the operation required.
        expected: &'static str,
        /// The type actually found.
        found: &'static str,
    },
}

/// Evaluates a binary arithmetic/bitwise instruction on two operands.
pub(crate) fn eval_binop(insn: Insn, a: Value, b: Value) -> Result<Value, ArithErr> {
    use Insn::*;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            let r = match insn {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(ArithErr::DivZero);
                    }
                    x.wrapping_div(y)
                }
                Rem => {
                    if y == 0 {
                        return Err(ArithErr::DivZero);
                    }
                    x.wrapping_rem(y)
                }
                BitAnd => x & y,
                BitOr => x | y,
                BitXor => x ^ y,
                // Shift counts take only their low six bits (JVM `lshl`
                // semantics, documented on `Insn::Shl`/`Insn::Shr`): the
                // explicit mask pins down what `wrapping_shl(y as u32)`
                // merely happened to compute, so negative and ≥64 counts
                // have *specified* behavior the compiled tier and constant
                // folding can rely on.
                Shl => x.wrapping_shl((y & 63) as u32),
                Shr => x.wrapping_shr((y & 63) as u32),
                _ => unreachable!("binop called with non-binop insn"),
            };
            Ok(Value::Int(r))
        }
        (x, y) if matches!(x, Value::Double(_)) || matches!(y, Value::Double(_)) => {
            let xd = x.as_double().map_err(|f| ArithErr::Type { expected: "number", found: f })?;
            let yd = y.as_double().map_err(|f| ArithErr::Type { expected: "number", found: f })?;
            let r = match insn {
                Add => xd + yd,
                Sub => xd - yd,
                Mul => xd * yd,
                Div => xd / yd,
                Rem => xd % yd,
                _ => return Err(ArithErr::Type { expected: "int", found: "double" }),
            };
            Ok(Value::Double(r))
        }
        (x, y) => {
            let found = if x.as_int().is_err() { x.type_name() } else { y.type_name() };
            Err(ArithErr::Type { expected: "number", found })
        }
    }
}

/// Evaluates a comparison instruction on two operands.
pub(crate) fn eval_compare(insn: Insn, a: Value, b: Value) -> Result<bool, ArithErr> {
    use Insn::*;
    // Reference comparisons: only Eq/Ne.
    if a.is_ref_like() || b.is_ref_like() {
        let eq = a == b;
        return match insn {
            CmpEq => Ok(eq),
            CmpNe => Ok(!eq),
            _ => Err(ArithErr::Type { expected: "number", found: "ref" }),
        };
    }
    let xd = a.as_double().map_err(|f| ArithErr::Type { expected: "number", found: f })?;
    let yd = b.as_double().map_err(|f| ArithErr::Type { expected: "number", found: f })?;
    Ok(match insn {
        CmpEq => xd == yd,
        CmpNe => xd != yd,
        CmpLt => xd < yd,
        CmpLe => xd <= yd,
        CmpGt => xd > yd,
        CmpGe => xd >= yd,
        _ => unreachable!("compare called with non-compare insn"),
    })
}

/// Runs a machine to an event with the given pieces — a convenience wrapper
/// over [`Interp::new`] + [`Interp::run`].
pub fn run<H: NativeHost>(
    machine: &mut Machine,
    image: &AppImage,
    host: &mut H,
    engine: &mut TaintEngine,
    config: ExecConfig,
) -> Result<ExecEvent, VmError> {
    Interp::new(machine, image, host, engine, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FuncId, Function};

    fn image(code: Vec<Insn>) -> AppImage {
        AppImage {
            name: "guarded".into(),
            functions: vec![Function { name: "main".into(), n_args: 0, n_locals: 2, code }],
            classes: Vec::new(),
            strings: vec!["seed".into()],
            natives: Vec::new(),
            entry: FuncId(0),
        }
    }

    fn run_image(code: Vec<Insn>, config: ExecConfig) -> (Machine, Result<ExecEvent, VmError>) {
        let mut m = Machine::new();
        let img = image(code);
        let mut engine = TaintEngine::none();
        let r = run(&mut m, &img, &mut NullHost, &mut engine, config);
        (m, r)
    }

    #[test]
    fn frameless_resumed_machine_errors_instead_of_restarting() {
        // Run a program to a suspension point, strip its stack, resume:
        // the interpreter must refuse with NoFrame, not re-run from entry.
        let mut m = Machine::new();
        let img = image(vec![Insn::ConstI(1), Insn::ConstI(2), Insn::Halt]);
        let mut engine = TaintEngine::none();
        let ev = run(&mut m, &img, &mut NullHost, &mut engine, ExecConfig::client().with_fuel(1));
        assert_eq!(ev, Ok(ExecEvent::OutOfFuel));
        m.frames.clear(); // malformed external teardown
        let err = run(&mut m, &img, &mut NullHost, &mut engine, ExecConfig::client());
        assert_eq!(err, Err(VmError::NoFrame));
        assert_eq!(m.status, MachineStatus::Faulted);
    }

    #[test]
    fn machine_with_retired_instrs_but_no_frames_is_rejected() {
        // A runnable machine that has already executed but lost its stack
        // is malformed; re-running it from entry would repeat the program.
        let mut m = Machine::new();
        m.stats.instrs = 7;
        let img = image(vec![Insn::Halt]);
        let mut engine = TaintEngine::none();
        let err = run(&mut m, &img, &mut NullHost, &mut engine, ExecConfig::client());
        assert_eq!(err, Err(VmError::NoFrame));
    }

    #[test]
    fn heap_object_quota_kills_allocation_loop() {
        // while(true) { new arr(1); } — dies on the object quota.
        let code = vec![Insn::ConstI(1), Insn::NewArr, Insn::Pop, Insn::Jump(0)];
        let (m, r) =
            run_image(code, ExecConfig::client().with_fuel(100_000).with_heap_quota(16, 1 << 20));
        match r {
            Err(VmError::HeapQuotaExceeded { objects, .. }) => assert!(objects > 16),
            other => panic!("expected HeapQuotaExceeded, got {other:?}"),
        }
        assert_eq!(m.status, MachineStatus::Faulted);
    }

    #[test]
    fn heap_byte_quota_kills_doubling_string() {
        // s = "seed"; while(true) { s = s + s; } — bytes blow up fast.
        let code = vec![
            Insn::ConstS(crate::program::StrIdx(0)),
            Insn::Store(0),
            Insn::Load(0),
            Insn::Load(0),
            Insn::StrConcat,
            Insn::Store(0),
            Insn::Jump(2),
        ];
        let (m, r) =
            run_image(code, ExecConfig::client().with_fuel(100_000).with_heap_quota(1 << 20, 4096));
        match r {
            Err(VmError::HeapQuotaExceeded { bytes, .. }) => assert!(bytes > 4096),
            other => panic!("expected HeapQuotaExceeded, got {other:?}"),
        }
        assert_eq!(m.status, MachineStatus::Faulted);
    }

    #[test]
    fn call_depth_limit_kills_unbounded_recursion() {
        // main() { main(); } — no base case.
        let code = vec![Insn::Call(FuncId(0)), Insn::Halt];
        let (m, r) = run_image(code, ExecConfig::client().with_fuel(100_000).with_depth_limit(32));
        assert_eq!(r, Err(VmError::CallDepthExceeded { depth: 33 }));
        assert_eq!(m.status, MachineStatus::Faulted);
    }

    #[test]
    fn spin_loop_runs_out_of_fuel_not_forever() {
        let code = vec![Insn::Nop, Insn::Jump(0)];
        let (m, r) = run_image(code, ExecConfig::client().with_fuel(10_000));
        assert_eq!(r, Ok(ExecEvent::OutOfFuel));
        assert_eq!(m.stats.instrs, 10_000);
    }

    #[test]
    fn budgets_do_not_disturb_well_behaved_programs() {
        let code = vec![Insn::ConstI(41), Insn::ConstI(1), Insn::Add, Insn::Halt];
        let (m, r) = run_image(
            code,
            ExecConfig::client().with_fuel(1_000).with_heap_quota(64, 4096).with_depth_limit(8),
        );
        assert_eq!(r, Ok(ExecEvent::Halted(Value::Int(42))));
        assert_eq!(m.status, MachineStatus::Halted);
    }
}
