//! The instruction set and its cycle-cost model.

use serde::{Deserialize, Serialize};

use crate::program::{ClassId, FuncId, NativeId, StrIdx};

/// One VM instruction.
///
/// The set is deliberately small but sufficient to express the reproduction's
/// applications (login flows, form handling, hashing glue) and the
/// Caffeinemark micro-benchmarks (sieve/loop/logic/string/float/method).
/// Operands follow the JVM convention: an operand stack per frame plus
/// indexed local slots.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Insn {
    // ---- constants, locals, stack shuffling ----
    /// Push an integer constant.
    ConstI(i64),
    /// Push a double constant.
    ConstD(f64),
    /// Push (an interned reference to) a pooled string constant.
    ConstS(StrIdx),
    /// Push the null reference.
    ConstNull,
    /// Push local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the top two stack values.
    Swap,

    // ---- arithmetic and logic (int or double; both operands popped) ----
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division traps on zero).
    Div,
    /// Remainder (traps on zero for ints).
    Rem,
    /// Arithmetic negation of the top value.
    Neg,
    /// Bitwise AND (ints only).
    BitAnd,
    /// Bitwise OR (ints only).
    BitOr,
    /// Bitwise XOR (ints only).
    BitXor,
    /// Left shift (ints only). Like the JVM's `lshl`, only the low six
    /// bits of the count are significant: the count is masked with `& 63`,
    /// so `x << 64 == x`, `x << 65 == x << 1`, and a negative count shifts
    /// by its low six bits (e.g. `-1` shifts by 63). This is a *specified*
    /// semantics — the interpreter and the compiled tier must agree on it
    /// bit for bit.
    Shl,
    /// Arithmetic right shift (ints only). The count is masked with `& 63`
    /// exactly as for [`Insn::Shl`].
    Shr,

    // ---- comparisons (push 1 or 0) ----
    /// Equal.
    CmpEq,
    /// Not equal.
    CmpNe,
    /// Less than.
    CmpLt,
    /// Less or equal.
    CmpLe,
    /// Greater than.
    CmpGt,
    /// Greater or equal.
    CmpGe,

    // ---- conversions ----
    /// Int to double.
    I2D,
    /// Double to int (truncating).
    D2I,

    // ---- control flow (absolute target pc) ----
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump if falsy.
    JumpIfZero(u32),
    /// Pop; jump if truthy.
    JumpIfNonZero(u32),

    // ---- objects ----
    /// Allocate an instance of the class; fields start null/zeroed; push
    /// the reference.
    New(ClassId),
    /// Pop a reference; push field `n` of the object.
    GetField(u16),
    /// Pop a value then a reference; store the value into field `n`.
    PutField(u16),
    /// Pop a reference; push a reference to a shallow copy (a heap→heap
    /// taint copy, one of the two classes the client instruments).
    CloneObj,

    // ---- arrays ----
    /// Pop a length; push a reference to a new zeroed array.
    NewArr,
    /// Pop index then array ref; push the element.
    ArrLoad,
    /// Pop value, index, array ref; store the element.
    ArrStore,
    /// Pop an array ref; push its length.
    ArrLen,
    /// Pop count, dst-offset, dst ref, src-offset, src ref; copy elements
    /// (`System.arraycopy` — the other instrumented heap→heap class).
    ArrCopy,

    // ---- strings (immutable heap objects) ----
    /// Pop two string refs; push their concatenation (derives a new value,
    /// so on the client this triggers offloading when an operand is
    /// tainted — the paper's Figure 11 line 6).
    StrConcat,
    /// Pop index then string ref; push the char code (a heap→stack read of
    /// string *content* — the paper's Figure 10 line 3 trigger).
    StrCharAt,
    /// Pop a string ref; push its length. Deliberately *untainted*: the
    /// placeholder has the same length as the cor, so length reveals
    /// nothing and must not trigger offloading (§5.1 notes length is not
    /// protected).
    StrLen,
    /// Pop end, start, string ref; push the substring (content-derived).
    StrSub,
    /// Pop needle ref then haystack ref; push first index or -1
    /// (content-dependent).
    StrIndexOf,
    /// Pop two string refs; push 1 if contents equal (content-dependent).
    StrEq,
    /// Pop an int; push its decimal string representation.
    StrFromInt,
    /// Pop a char code; push a one-char string. The code must be a valid
    /// Unicode scalar value: negative codes, surrogates
    /// (`0xD800..=0xDFFF`), and codes above `0x10FFFF` trap with
    /// [`crate::VmError::BadStringOp`] instead of being silently replaced —
    /// a replacement character would let the interpreter and a compiled
    /// tier (or two endpoints re-executing the same instruction) disagree
    /// about the produced string without anyone noticing.
    StrFromChar,

    // ---- calls ----
    /// Call a function; pops its arguments (last argument on top).
    Call(FuncId),
    /// Call an imported native; the operand count is supplied here because
    /// natives have no declared arity in the image.
    CallNative(NativeId, u8),
    /// Return the top of stack to the caller (or halt if in the entry
    /// frame).
    Ret,
    /// Return null.
    RetVoid,

    // ---- synchronization ----
    /// Pop a reference; acquire its monitor. Acquiring a monitor whose
    /// ownership rests with the remote endpoint suspends execution (the
    /// paper's third DSM-sync cause, observed in the github login).
    MonitorEnter,
    /// Pop a reference; release its monitor.
    MonitorExit,
    /// Pop a reference; a background (non-migrating) thread acquires its
    /// monitor at the current endpoint. Models another thread of the app
    /// holding a lock — the precondition for the lock-transfer DSM sync.
    PinLock,

    // ---- misc ----
    /// Do nothing (1 cycle; also a convenient label anchor).
    Nop,
    /// Stop the machine; the top of stack (or null) is the program result.
    Halt,
}

impl Insn {
    /// Base execution cost in interpreter cycles, before any taint
    /// instrumentation surcharge.
    ///
    /// The absolute numbers matter only relative to each other and to
    /// [`tinman_taint::TaintCosts`]; together with a device's
    /// instructions-per-second rate they produce simulated time. Costs are
    /// dispatch-dominated (an interpreted instruction costs ~10 cycles
    /// before it does anything), which is what keeps taint instrumentation
    /// — a couple of cycles per data movement — in the 10-20% overhead
    /// range the paper measures, rather than doubling execution time.
    pub fn base_cost(&self) -> u64 {
        10 * match self {
            Insn::Nop | Insn::Pop | Insn::Dup | Insn::Swap => 1,
            Insn::ConstI(_) | Insn::ConstD(_) | Insn::ConstNull => 1,
            Insn::Load(_) | Insn::Store(_) => 1,
            Insn::ConstS(_) => 2,
            Insn::Add
            | Insn::Sub
            | Insn::Neg
            | Insn::BitAnd
            | Insn::BitOr
            | Insn::BitXor
            | Insn::Shl
            | Insn::Shr => 1,
            Insn::Mul => 2,
            Insn::Div | Insn::Rem => 4,
            Insn::CmpEq | Insn::CmpNe | Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe => 1,
            Insn::I2D | Insn::D2I => 1,
            Insn::Jump(_) | Insn::JumpIfZero(_) | Insn::JumpIfNonZero(_) => 1,
            Insn::New(_) => 8,
            Insn::GetField(_) | Insn::PutField(_) => 2,
            Insn::CloneObj => 12,
            Insn::NewArr => 8,
            Insn::ArrLoad | Insn::ArrStore => 2,
            Insn::ArrLen => 1,
            Insn::ArrCopy => 6, // plus per-element cost charged by the interpreter
            Insn::StrConcat => 8, // plus per-byte cost charged by the interpreter
            Insn::StrCharAt => 2,
            Insn::StrLen => 1,
            Insn::StrSub => 6,     // plus per-byte cost
            Insn::StrIndexOf => 6, // plus per-byte cost
            Insn::StrEq => 3,      // plus per-byte cost
            Insn::StrFromInt => 6,
            Insn::StrFromChar => 4,
            Insn::Call(_) => 10,
            Insn::CallNative(_, _) => 14,
            Insn::Ret | Insn::RetVoid => 6,
            Insn::MonitorEnter | Insn::MonitorExit | Insn::PinLock => 4,
            Insn::Halt => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_positive() {
        // A zero-cost instruction would let a loop run without advancing
        // simulated time.
        let samples = [
            Insn::Nop,
            Insn::ConstI(0),
            Insn::Add,
            Insn::Jump(0),
            Insn::New(ClassId(0)),
            Insn::StrConcat,
            Insn::Call(FuncId(0)),
            Insn::CallNative(NativeId(0), 0),
            Insn::Halt,
        ];
        for i in samples {
            assert!(i.base_cost() > 0, "{i:?} must cost at least one cycle");
        }
    }

    #[test]
    fn allocation_costs_more_than_arithmetic() {
        assert!(Insn::New(ClassId(0)).base_cost() > Insn::Add.base_cost());
        assert!(Insn::Call(FuncId(0)).base_cost() > Insn::Load(0).base_cost());
    }
}
