//! Machine state: heap + call stack + locks + counters.
//!
//! The [`Machine`] is the unit of migration: the DSM layer serializes (parts
//! of) it, ships it across the simulated network, and resumes it on the
//! other endpoint.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::frame::Frame;
use crate::heap::Heap;
use crate::value::{ObjId, Value};

/// Which endpoint a monitor's ownership currently rests with.
///
/// COMET establishes happens-before edges at synchronization operations;
/// entering a monitor whose ownership is on the other endpoint forces a DSM
/// sync (the paper's third observed sync cause).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockSite {
    /// The mobile device.
    Client,
    /// The trusted node.
    TrustedNode,
}

impl LockSite {
    /// The opposite endpoint.
    pub fn other(self) -> LockSite {
        match self {
            LockSite::Client => LockSite::TrustedNode,
            LockSite::TrustedNode => LockSite::Client,
        }
    }
}

/// Lifecycle of a machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineStatus {
    /// Ready to execute (or resume).
    Runnable,
    /// Halted normally; `result` holds the program value.
    Halted,
    /// Halted with a VM error.
    Faulted,
}

impl MachineStatus {
    /// Short name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            MachineStatus::Runnable => "runnable",
            MachineStatus::Halted => "halted",
            MachineStatus::Faulted => "faulted",
        }
    }
}

/// Execution counters, cumulative across runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Instructions retired.
    pub instrs: u64,
    /// Interpreter cycles charged (base cost + data-size surcharges +
    /// taint instrumentation).
    pub cycles: u64,
    /// `Call` instructions executed — the paper's "method invocations"
    /// metric for Table 3.
    pub method_invocations: u64,
    /// Native calls executed.
    pub native_calls: u64,
    /// Cycles spent on taint instrumentation alone.
    pub taint_cycles: u64,
    /// Instructions retired since the last move that touched tainted data
    /// (drives the trusted node's migrate-back-on-idle rule, §3.1 case 1).
    pub instrs_since_taint_use: u64,
}

/// A suspended or running VM thread with its heap.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Machine {
    /// The object heap.
    pub heap: Heap,
    /// The call stack; last entry is the active frame.
    pub frames: Vec<Frame>,
    /// Monitor table: object → (owning endpoint, recursion count).
    pub locks: HashMap<ObjId, (LockSite, u32)>,
    /// Monitors held by background threads that never migrate (a UI
    /// thread's lock). These do NOT follow the migrating thread; a remote
    /// `MonitorEnter` on one forces the lock-transfer sync the paper
    /// observes in the github login (§6.3's third sync cause).
    pub pinned_locks: HashSet<ObjId>,
    /// Lifecycle status.
    pub status: MachineStatus,
    /// The program result once halted.
    pub result: Value,
    /// Counters.
    pub stats: ExecStats,
}

impl Machine {
    /// A fresh machine with an empty heap and no frames. The interpreter
    /// pushes the entry frame on first run.
    pub fn new() -> Self {
        Machine {
            heap: Heap::new(),
            frames: Vec::new(),
            locks: HashMap::new(),
            pinned_locks: HashSet::new(),
            status: MachineStatus::Runnable,
            result: Value::Null,
            stats: ExecStats::default(),
        }
    }

    /// The active frame.
    pub fn top_frame(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// The active frame, mutably.
    pub fn top_frame_mut(&mut self) -> Option<&mut Frame> {
        self.frames.last_mut()
    }

    /// Call-stack depth.
    pub fn call_depth(&self) -> usize {
        self.frames.len()
    }

    /// True if the machine can execute.
    pub fn is_runnable(&self) -> bool {
        self.status == MachineStatus::Runnable
    }

    /// Ownership site of `obj`'s monitor, if the monitor exists.
    pub fn lock_site(&self, obj: ObjId) -> Option<LockSite> {
        self.locks.get(&obj).map(|&(site, _)| site)
    }

    /// Transfers every monitor owned by `from` to `to`, except pinned
    /// monitors (held by non-migrating background threads) — performed as
    /// part of a DSM sync when execution migrates.
    pub fn transfer_locks(&mut self, from: LockSite, to: LockSite) {
        for (obj, (site, _)) in self.locks.iter_mut() {
            if *site == from && !self.pinned_locks.contains(obj) {
                *site = to;
            }
        }
    }

    /// Transfers monitors including pinned ones, unpinning them — the
    /// lock-transfer sync handing a background thread's monitor to the
    /// endpoint that needs it (COMET's happens-before establishment).
    pub fn transfer_all_locks(&mut self, from: LockSite, to: LockSite) {
        for (obj, (site, _)) in self.locks.iter_mut() {
            if *site == from {
                *site = to;
                self.pinned_locks.remove(obj);
            }
        }
    }

    /// True if any frame holds tainted data in a stack or local slot.
    pub fn any_stack_taint(&self) -> bool {
        self.frames.iter().any(Frame::any_tainted)
    }

    /// Scans the entire machine (heap payloads; stack slots hold only
    /// primitives and references, so heap scanning is exhaustive for
    /// strings) for plaintext residue of `needle`. This is the §5.1
    /// attacker's memory dump search.
    pub fn scan_residue(&self, needle: &str) -> Vec<ObjId> {
        self.heap.scan_for_bytes(needle)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FuncId;
    use tinman_taint::{Label, TaintSet};

    #[test]
    fn fresh_machine_is_runnable_and_empty() {
        let m = Machine::new();
        assert!(m.is_runnable());
        assert_eq!(m.call_depth(), 0);
        assert!(m.top_frame().is_none());
    }

    #[test]
    fn lock_transfer() {
        let mut m = Machine::new();
        m.locks.insert(ObjId(1), (LockSite::Client, 1));
        m.locks.insert(ObjId(2), (LockSite::TrustedNode, 2));
        m.transfer_locks(LockSite::Client, LockSite::TrustedNode);
        assert_eq!(m.lock_site(ObjId(1)), Some(LockSite::TrustedNode));
        assert_eq!(m.lock_site(ObjId(2)), Some(LockSite::TrustedNode));
        assert_eq!(m.lock_site(ObjId(3)), None);
    }

    #[test]
    fn lock_site_other() {
        assert_eq!(LockSite::Client.other(), LockSite::TrustedNode);
        assert_eq!(LockSite::TrustedNode.other(), LockSite::Client);
    }

    #[test]
    fn stack_taint_detection_spans_frames() {
        let mut m = Machine::new();
        m.frames.push(Frame::new(FuncId(0), "a", 0));
        m.frames.push(Frame::new(FuncId(1), "b", 1));
        assert!(!m.any_stack_taint());
        m.frames[0].push(Value::Int(1), Label::new(5).unwrap().as_set());
        assert!(m.any_stack_taint());
        m.frames[0].pop().unwrap();
        m.frames[1].set_local(0, Value::Int(0), Label::new(1).unwrap().as_set()).unwrap();
        assert!(m.any_stack_taint());
        m.frames[1].set_local(0, Value::Int(0), TaintSet::EMPTY).unwrap();
        assert!(!m.any_stack_taint());
    }

    #[test]
    fn residue_scan_delegates_to_heap() {
        let mut m = Machine::new();
        m.heap.alloc_str("the-cor-value");
        assert_eq!(m.scan_residue("cor-value").len(), 1);
    }

    #[test]
    fn machine_serializes_round_trip() {
        let mut m = Machine::new();
        m.heap.alloc_str("state");
        m.frames.push(Frame::new(FuncId(0), "main", 3));
        m.locks.insert(ObjId(0), (LockSite::Client, 1));
        let json = serde_json::to_string(&m).unwrap();
        let back: Machine = serde_json::from_str(&json).unwrap();
        assert_eq!(back.heap.len(), 1);
        assert_eq!(back.call_depth(), 1);
        assert_eq!(back.lock_site(ObjId(0)), Some(LockSite::Client));
    }
}
