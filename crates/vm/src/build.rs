//! Program construction.
//!
//! [`ProgramBuilder`] assembles an [`AppImage`] in memory; [`FnBuilder`]
//! provides a tiny assembler with forward-referencing labels so the app
//! crate can express control flow without hand-computing instruction
//! offsets.

use std::collections::HashMap;

use crate::insn::Insn;
use crate::program::{AppImage, ClassDef, ClassId, FuncId, Function, NativeId, StrIdx};

/// A forward-referencing jump label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LabelId(usize);

/// Builds one function's instruction stream.
pub struct FnBuilder {
    name: String,
    n_args: u16,
    n_locals: u16,
    code: Vec<Insn>,
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs awaiting a bound target.
    fixups: Vec<(usize, LabelId)>,
}

impl FnBuilder {
    fn new(name: &str, n_args: u16, n_locals: u16) -> Self {
        assert!(n_locals >= n_args, "locals must include argument slots");
        FnBuilder {
            name: name.to_owned(),
            n_args,
            n_locals,
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Appends a raw instruction.
    pub fn op(&mut self, insn: Insn) -> &mut Self {
        self.code.push(insn);
        self
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> LabelId {
        self.labels.push(None);
        LabelId(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: LabelId) -> &mut Self {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len() as u32);
        self
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: LabelId) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.op(Insn::Jump(u32::MAX))
    }

    /// Emits a pop-and-jump-if-falsy to `label`.
    pub fn jump_if_zero(&mut self, label: LabelId) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.op(Insn::JumpIfZero(u32::MAX))
    }

    /// Emits a pop-and-jump-if-truthy to `label`.
    pub fn jump_if_nonzero(&mut self, label: LabelId) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.op(Insn::JumpIfNonZero(u32::MAX))
    }

    // -- common idiom helpers (thin wrappers keeping call sites readable) --

    /// Pushes an int constant.
    pub fn const_i(&mut self, v: i64) -> &mut Self {
        self.op(Insn::ConstI(v))
    }

    /// Pushes local `n`.
    pub fn load(&mut self, n: u16) -> &mut Self {
        self.op(Insn::Load(n))
    }

    /// Pops into local `n`.
    pub fn store(&mut self, n: u16) -> &mut Self {
        self.op(Insn::Store(n))
    }

    /// Emits `local += delta` for an int local.
    pub fn inc_local(&mut self, n: u16, delta: i64) -> &mut Self {
        self.load(n).const_i(delta).op(Insn::Add).store(n)
    }

    /// Emits a counted loop running `body` with the counter in local
    /// `counter`, from 0 while `counter < limit_local`.
    pub fn for_loop(
        &mut self,
        counter: u16,
        limit_local: u16,
        body: impl FnOnce(&mut FnBuilder),
    ) -> &mut Self {
        self.const_i(0).store(counter);
        let top = self.label();
        let done = self.label();
        self.bind(top);
        self.load(counter).load(limit_local).op(Insn::CmpLt);
        self.jump_if_zero(done);
        body(self);
        self.inc_local(counter, 1);
        self.jump(top);
        self.bind(done);
        self
    }

    fn finish(mut self) -> Function {
        for (at, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0].expect("unbound label at build time");
            self.code[at] = match self.code[at] {
                Insn::Jump(_) => Insn::Jump(target),
                Insn::JumpIfZero(_) => Insn::JumpIfZero(target),
                Insn::JumpIfNonZero(_) => Insn::JumpIfNonZero(target),
                other => unreachable!("fixup on non-jump {other:?}"),
            };
        }
        Function { name: self.name, n_args: self.n_args, n_locals: self.n_locals, code: self.code }
    }
}

/// Builds a complete [`AppImage`].
pub struct ProgramBuilder {
    name: String,
    functions: Vec<Function>,
    func_ids: HashMap<String, FuncId>,
    classes: Vec<ClassDef>,
    strings: Vec<String>,
    string_ids: HashMap<String, StrIdx>,
    natives: Vec<String>,
    native_ids: HashMap<String, NativeId>,
}

impl ProgramBuilder {
    /// Starts a new program named `name`.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_owned(),
            functions: Vec::new(),
            func_ids: HashMap::new(),
            classes: Vec::new(),
            strings: Vec::new(),
            string_ids: HashMap::new(),
            natives: Vec::new(),
            native_ids: HashMap::new(),
        }
    }

    /// Pre-declares a function so mutually recursive code can reference it
    /// before its body exists. The body must be supplied later via
    /// [`ProgramBuilder::define`] with the same name, arg and local counts.
    pub fn declare(&mut self, name: &str, n_args: u16, n_locals: u16) -> FuncId {
        if let Some(&id) = self.func_ids.get(name) {
            return id;
        }
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(Function { name: name.to_owned(), n_args, n_locals, code: Vec::new() });
        self.func_ids.insert(name.to_owned(), id);
        id
    }

    /// Defines (or fills in a declared) function.
    pub fn define(
        &mut self,
        name: &str,
        n_args: u16,
        n_locals: u16,
        body: impl FnOnce(&mut FnBuilder, &mut ProgramBuilder),
    ) -> FuncId {
        let id = self.declare(name, n_args, n_locals);
        let mut fb = FnBuilder::new(name, n_args, n_locals);
        body(&mut fb, self);
        let func = fb.finish();
        assert_eq!(func.n_args, self.functions[id.0 as usize].n_args, "arity changed");
        self.functions[id.0 as usize] = func;
        id
    }

    /// Interns a constant string, returning its pool index.
    pub fn string(&mut self, s: &str) -> StrIdx {
        if let Some(&idx) = self.string_ids.get(s) {
            return idx;
        }
        let idx = StrIdx(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.string_ids.insert(s.to_owned(), idx);
        idx
    }

    /// Declares a class and returns its id.
    pub fn class(&mut self, name: &str, fields: &[&str]) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassDef {
            name: name.to_owned(),
            fields: fields.iter().map(|s| (*s).to_owned()).collect(),
        });
        id
    }

    /// Imports a native by name, returning its table id.
    pub fn native(&mut self, name: &str) -> NativeId {
        if let Some(&id) = self.native_ids.get(name) {
            return id;
        }
        let id = NativeId(self.natives.len() as u32);
        self.natives.push(name.to_owned());
        self.native_ids.insert(name.to_owned(), id);
        id
    }

    /// Finishes the image with `entry` as the entry point.
    pub fn build(self, entry: FuncId) -> AppImage {
        assert!(
            (entry.0 as usize) < self.functions.len(),
            "entry function {} out of range",
            entry.0
        );
        AppImage {
            name: self.name,
            functions: self.functions,
            classes: self.classes,
            strings: self.strings,
            natives: self.natives,
            entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, ExecConfig, ExecEvent, NullHost};
    use crate::machine::Machine;
    use crate::value::Value;
    use tinman_taint::TaintEngine;

    fn run_image(image: &AppImage) -> Value {
        let mut m = Machine::new();
        let mut host = NullHost;
        let mut engine = TaintEngine::none();
        match run(&mut m, image, &mut host, &mut engine, ExecConfig::client()).unwrap() {
            ExecEvent::Halted(v) => v,
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut p = ProgramBuilder::new("t");
        let main = p.define("main", 0, 0, |b, _| {
            b.const_i(6).const_i(7).op(Insn::Mul).op(Insn::Halt);
        });
        assert_eq!(run_image(&p.build(main)), Value::Int(42));
    }

    #[test]
    fn labels_and_loops() {
        // Sum 0..10 = 45.
        let mut p = ProgramBuilder::new("t");
        let main = p.define("main", 0, 3, |b, _| {
            b.const_i(10).store(0); // limit
            b.const_i(0).store(2); // acc
            b.for_loop(1, 0, |b| {
                b.load(2).load(1).op(Insn::Add).store(2);
            });
            b.load(2).op(Insn::Halt);
        });
        assert_eq!(run_image(&p.build(main)), Value::Int(45));
    }

    #[test]
    fn calls_pass_args_in_order() {
        let mut p = ProgramBuilder::new("t");
        let sub = p.define("sub", 2, 2, |b, _| {
            b.load(0).load(1).op(Insn::Sub).op(Insn::Ret);
        });
        let main = p.define("main", 0, 0, |b, _| {
            b.const_i(10).const_i(3).op(Insn::Call(sub)).op(Insn::Halt);
        });
        assert_eq!(run_image(&p.build(main)), Value::Int(7));
    }

    #[test]
    fn recursion_via_declare() {
        // fib(10) = 55
        let mut p = ProgramBuilder::new("t");
        let fib = p.declare("fib", 1, 1);
        p.define("fib", 1, 1, |b, _| {
            let recurse = b.label();
            b.load(0).const_i(2).op(Insn::CmpLt);
            b.jump_if_zero(recurse);
            b.load(0).op(Insn::Ret);
            b.bind(recurse);
            b.load(0).const_i(1).op(Insn::Sub).op(Insn::Call(fib));
            b.load(0).const_i(2).op(Insn::Sub).op(Insn::Call(fib));
            b.op(Insn::Add).op(Insn::Ret);
        });
        let main = p.define("main", 0, 0, |b, _| {
            b.const_i(10).op(Insn::Call(fib)).op(Insn::Halt);
        });
        assert_eq!(run_image(&p.build(main)), Value::Int(55));
    }

    #[test]
    fn string_pool_dedup() {
        let mut p = ProgramBuilder::new("t");
        let a = p.string("x");
        let b = p.string("x");
        let c = p.string("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn native_import_dedup() {
        let mut p = ProgramBuilder::new("t");
        assert_eq!(p.native("log"), p.native("log"));
        assert_ne!(p.native("log"), p.native("send"));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_build() {
        let mut p = ProgramBuilder::new("t");
        p.define("main", 0, 0, |b, _| {
            let l = b.label();
            b.jump(l); // never bound
        });
    }

    #[test]
    fn string_ops_end_to_end() {
        let mut p = ProgramBuilder::new("t");
        let hello = p.string("hello ");
        let world = p.string("world");
        let main = p.define("main", 0, 0, |b, _| {
            b.op(Insn::ConstS(hello))
                .op(Insn::ConstS(world))
                .op(Insn::StrConcat)
                .op(Insn::StrLen)
                .op(Insn::Halt);
        });
        assert_eq!(run_image(&p.build(main)), Value::Int(11));
    }
}
