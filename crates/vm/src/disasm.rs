//! A disassembler: prints an [`AppImage`] back in the [`crate::asm`] text
//! format (round-trippable modulo label names, which are synthesized as
//! `L<pc>`).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::insn::Insn;
use crate::program::{AppImage, Function};

/// Disassembles a whole image.
pub fn disassemble(image: &AppImage) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; image: {} ({} bytes, hash {})",
        image.name,
        image.image_bytes(),
        &image.hash_hex()[..16]
    );
    for c in &image.classes {
        let _ = writeln!(out, ".class {} {}", c.name, c.fields.join(" "));
    }
    for (i, s) in image.strings.iter().enumerate() {
        let _ = writeln!(out, ".string s{i} \"{}\"", s.escape_default());
    }
    for (i, n) in image.natives.iter().enumerate() {
        let _ = writeln!(out, ".native n{i} \"{n}\"");
    }
    if let Some(entry) = image.function(image.entry) {
        let _ = writeln!(out, ".entry {}", entry.name);
    }
    for f in &image.functions {
        out.push('\n');
        out.push_str(&disassemble_function(image, f));
    }
    out
}

/// Disassembles one function.
pub fn disassemble_function(image: &AppImage, f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".func {} args={} locals={}", f.name, f.n_args, f.n_locals);

    // Collect every jump target so labels print before their instruction.
    let targets: BTreeSet<u32> = f
        .code
        .iter()
        .filter_map(|i| match i {
            Insn::Jump(t) | Insn::JumpIfZero(t) | Insn::JumpIfNonZero(t) => Some(*t),
            _ => None,
        })
        .collect();

    for (pc, insn) in f.code.iter().enumerate() {
        if targets.contains(&(pc as u32)) {
            let _ = writeln!(out, "L{pc}:");
        }
        let _ = writeln!(out, "  {}", mnemonic(image, insn));
    }
    // A label may point one past the last instruction (loop exits).
    if targets.contains(&(f.code.len() as u32)) {
        let _ = writeln!(out, "L{}:", f.code.len());
    }
    out.push_str(".end\n");
    out
}

fn mnemonic(image: &AppImage, insn: &Insn) -> String {
    match insn {
        Insn::Nop => "nop".into(),
        Insn::Halt => "halt".into(),
        Insn::Dup => "dup".into(),
        Insn::Pop => "pop".into(),
        Insn::Swap => "swap".into(),
        Insn::Add => "add".into(),
        Insn::Sub => "sub".into(),
        Insn::Mul => "mul".into(),
        Insn::Div => "div".into(),
        Insn::Rem => "rem".into(),
        Insn::Neg => "neg".into(),
        Insn::BitAnd => "and".into(),
        Insn::BitOr => "or".into(),
        Insn::BitXor => "xor".into(),
        Insn::Shl => "shl".into(),
        Insn::Shr => "shr".into(),
        Insn::CmpEq => "eq".into(),
        Insn::CmpNe => "ne".into(),
        Insn::CmpLt => "lt".into(),
        Insn::CmpLe => "le".into(),
        Insn::CmpGt => "gt".into(),
        Insn::CmpGe => "ge".into(),
        Insn::I2D => "i2d".into(),
        Insn::D2I => "d2i".into(),
        Insn::Ret => "ret".into(),
        Insn::RetVoid => "ret_void".into(),
        Insn::CloneObj => "clone".into(),
        Insn::NewArr => "new_arr".into(),
        Insn::ArrLoad => "arr_load".into(),
        Insn::ArrStore => "arr_store".into(),
        Insn::ArrLen => "arr_len".into(),
        Insn::ArrCopy => "arr_copy".into(),
        Insn::StrConcat => "concat".into(),
        Insn::StrCharAt => "char_at".into(),
        Insn::StrLen => "str_len".into(),
        Insn::StrSub => "substr".into(),
        Insn::StrIndexOf => "index_of".into(),
        Insn::StrEq => "str_eq".into(),
        Insn::StrFromInt => "str_from_int".into(),
        Insn::StrFromChar => "str_from_char".into(),
        Insn::MonitorEnter => "monitor_enter".into(),
        Insn::MonitorExit => "monitor_exit".into(),
        Insn::PinLock => "pin_lock".into(),
        Insn::ConstNull => "const_null".into(),
        Insn::ConstI(v) => format!("const_i {v}"),
        Insn::ConstD(v) => format!("const_d {v}"),
        Insn::ConstS(idx) => {
            let preview = image
                .string(*idx)
                .map(|s| s.chars().take(18).collect::<String>())
                .unwrap_or_default();
            format!("const_s s{}    ; \"{}\"", idx.0, preview.escape_default())
        }
        Insn::Load(n) => format!("load {n}"),
        Insn::Store(n) => format!("store {n}"),
        Insn::GetField(n) => format!("get_field {n}"),
        Insn::PutField(n) => format!("put_field {n}"),
        Insn::New(c) => {
            let name = image.class(*c).map(|d| d.name.as_str()).unwrap_or("?").to_owned();
            format!("new {name}")
        }
        Insn::Call(f) => {
            let name = image.function(*f).map(|d| d.name.as_str()).unwrap_or("?").to_owned();
            format!("call {name}")
        }
        Insn::CallNative(n, argc) => {
            let name = image.native(*n).unwrap_or("?").to_owned();
            format!("call_native n{}  {argc}    ; \"{name}\"", n.0)
        }
        Insn::Jump(t) => format!("jmp L{t}"),
        Insn::JumpIfZero(t) => format!("jz L{t}"),
        Insn::JumpIfNonZero(t) => format!("jnz L{t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn disassembly_mentions_everything() {
        let img = assemble(
            "demo",
            r#"
            .class Point x y
            .string hi "hello"
            .native log "sys.log"
            .func main args=0 locals=1
              const_s hi
              call_native log 1
              pop
              const_i 3
              store 0
            top:
              load 0
              jz done
              load 0
              const_i 1
              sub
              store 0
              jmp top
            done:
              new Point
              pop
              const_i 0
              halt
            .end
            "#,
        )
        .unwrap();
        let text = disassemble(&img);
        for needle in [
            ".class Point x y",
            ".string s0",
            ".native n0",
            ".func main",
            "jz L",
            "jmp L",
            "new Point",
            "call_native n0",
            "halt",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn labels_print_before_their_targets() {
        let img =
            assemble("t", ".func main args=0 locals=0\ntop:\n  const_i 0\n  jz top\n  halt\n.end")
                .unwrap();
        let text = disassemble(&img);
        let label_pos = text.find("L0:").expect("label printed");
        let jump_pos = text.find("jz L0").expect("jump printed");
        assert!(label_pos < jump_pos);
    }
}
