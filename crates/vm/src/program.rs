//! Program images — the analogue of Android dex files.
//!
//! An [`AppImage`] is an immutable, serializable bundle of functions,
//! classes, a string pool, and a native-import table. The trusted node
//! identifies an app by the SHA-256 hash of its image ([`AppImage::hash`]),
//! exactly as TinMan identifies an app by the hash of its dex file for the
//! app↔cor access-control binding (§3.4).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::insn::Insn;

/// Index into an image's string pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StrIdx(pub u32);

/// Index of a function within an image.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Index of a class definition within an image.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClassId(pub u32);

/// Index into an image's native-import table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NativeId(pub u32);

impl fmt::Debug for StrIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "str:{}", self.0)
    }
}
impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn:{}", self.0)
    }
}
impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class:{}", self.0)
    }
}
impl fmt::Debug for NativeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "native:{}", self.0)
    }
}

/// A class definition: a name and an ordered list of field names.
///
/// Fields are accessed by index; names exist for diagnostics and reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Class name (diagnostics only).
    pub name: String,
    /// Field names, in slot order.
    pub fields: Vec<String>,
}

impl ClassDef {
    /// Number of field slots instances of this class carry.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }
}

/// A function body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (diagnostics, reports, offload accounting).
    pub name: String,
    /// Number of arguments, copied into the first locals.
    pub n_args: u16,
    /// Total local slots (including arguments).
    pub n_locals: u16,
    /// Instruction sequence.
    pub code: Vec<Insn>,
}

/// An immutable program image.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppImage {
    /// Application name, e.g. `"bankdroid"`.
    pub name: String,
    /// All functions; `FuncId` indexes this vector.
    pub functions: Vec<Function>,
    /// All class definitions; `ClassId` indexes this vector.
    pub classes: Vec<ClassDef>,
    /// Constant string pool; `StrIdx` indexes this vector.
    pub strings: Vec<String>,
    /// Imported native names; `NativeId` indexes this vector.
    pub natives: Vec<String>,
    /// The entry function.
    pub entry: FuncId,
}

impl AppImage {
    /// Looks up a function.
    pub fn function(&self, id: FuncId) -> Option<&Function> {
        self.functions.get(id.0 as usize)
    }

    /// Looks up a class definition.
    pub fn class(&self, id: ClassId) -> Option<&ClassDef> {
        self.classes.get(id.0 as usize)
    }

    /// Looks up a pooled string.
    pub fn string(&self, idx: StrIdx) -> Option<&str> {
        self.strings.get(idx.0 as usize).map(String::as_str)
    }

    /// Looks up a native-import name.
    pub fn native(&self, id: NativeId) -> Option<&str> {
        self.natives.get(id.0 as usize).map(String::as_str)
    }

    /// Finds a function id by name.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Total instruction count across all functions — a proxy for the dex
    /// file's code size used when accounting the one-time app upload to the
    /// trusted node (§6.2's warm-up transfer).
    pub fn code_len(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Approximate serialized size in bytes, used to cost the one-time
    /// image upload (the paper reports ~2 MB and ~8 s for the PayPal dex).
    pub fn image_bytes(&self) -> u64 {
        // Each instruction serializes to a handful of bytes; strings count
        // verbatim. A fixed per-entry overhead approximates framing.
        let code = self.code_len() as u64 * 6;
        let strings: u64 = self.strings.iter().map(|s| s.len() as u64 + 4).sum();
        let natives: u64 = self.natives.iter().map(|s| s.len() as u64 + 4).sum();
        let classes: u64 = self
            .classes
            .iter()
            .map(|c| c.name.len() as u64 + c.fields.iter().map(|f| f.len() as u64 + 2).sum::<u64>())
            .sum();
        code + strings + natives + classes + 64
    }

    /// The SHA-256 hash of the image — the trusted node's app identity for
    /// the app↔cor binding and the malware-database lookup (§3.4).
    ///
    /// Hashing is done over the canonical JSON serialization, so any change
    /// to code, strings, classes or imports changes the identity.
    pub fn hash(&self) -> [u8; 32] {
        use sha2::{Digest, Sha256};
        let json = serde_json::to_vec(self).expect("AppImage serialization cannot fail");
        let mut hasher = Sha256::new();
        hasher.update(&json);
        hasher.finalize()
    }

    /// The image hash as lowercase hex, for logs and policy files.
    pub fn hash_hex(&self) -> String {
        self.hash().iter().map(|b| format!("{b:02x}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_image() -> AppImage {
        AppImage {
            name: "tiny".into(),
            functions: vec![Function {
                name: "main".into(),
                n_args: 0,
                n_locals: 1,
                code: vec![Insn::ConstI(1), Insn::Halt],
            }],
            classes: vec![ClassDef { name: "Point".into(), fields: vec!["x".into(), "y".into()] }],
            strings: vec!["hello".into()],
            natives: vec!["log".into()],
            entry: FuncId(0),
        }
    }

    #[test]
    fn lookups() {
        let img = tiny_image();
        assert_eq!(img.function(FuncId(0)).unwrap().name, "main");
        assert!(img.function(FuncId(9)).is_none());
        assert_eq!(img.class(ClassId(0)).unwrap().field_count(), 2);
        assert_eq!(img.string(StrIdx(0)), Some("hello"));
        assert_eq!(img.native(NativeId(0)), Some("log"));
        assert_eq!(img.find_function("main"), Some(FuncId(0)));
        assert_eq!(img.find_function("nope"), None);
    }

    #[test]
    fn hash_is_stable_and_tamper_evident() {
        let a = tiny_image();
        let b = tiny_image();
        assert_eq!(a.hash(), b.hash());
        let mut c = tiny_image();
        c.functions[0].code[0] = Insn::ConstI(2);
        assert_ne!(a.hash(), c.hash(), "changing code must change the identity");
        assert_eq!(a.hash_hex().len(), 64);
    }

    #[test]
    fn image_bytes_grow_with_content() {
        let a = tiny_image();
        let mut b = tiny_image();
        b.strings.push("x".repeat(1000));
        assert!(b.image_bytes() > a.image_bytes() + 1000);
    }
}
