//! Runtime values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of an object on the [`crate::Heap`].
///
/// Object ids are allocation-ordered and never reused; the VM has no garbage
/// collector (app runs in this reproduction are short and bounded), which
/// also means ids are stable across DSM synchronization — the property the
/// offloading engine relies on to address objects from either endpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjId(pub u32);

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A VM value: either a primitive (held directly in stack slots and fields)
/// or a reference to a heap object.
///
/// Mirroring the JVM, only primitives and references exist as values;
/// strings, arrays and records are always behind a reference. Note that —
/// exactly as the paper points out in §3.5 — *a reference to a tainted
/// object is not itself tainted*: taint lives on the heap object, and
/// copying a `Ref` moves no tainted data.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// The null reference.
    Null,
    /// A 64-bit integer (models Java's int/long/char/boolean).
    Int(i64),
    /// A 64-bit float (models Java's float/double).
    Double(f64),
    /// A reference to a heap object.
    Ref(ObjId),
}

impl Value {
    /// Human-readable type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Ref(_) => "ref",
        }
    }

    /// The integer payload, or a type error description.
    pub fn as_int(&self) -> Result<i64, &'static str> {
        match self {
            Value::Int(i) => Ok(*i),
            _ => Err(self.type_name()),
        }
    }

    /// The float payload, or a type error description. Ints widen.
    pub fn as_double(&self) -> Result<f64, &'static str> {
        match self {
            Value::Double(d) => Ok(*d),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(self.type_name()),
        }
    }

    /// The reference payload, or a type error description.
    pub fn as_ref_id(&self) -> Result<ObjId, &'static str> {
        match self {
            Value::Ref(id) => Ok(*id),
            _ => Err(self.type_name()),
        }
    }

    /// True if the value is a reference (or null).
    pub fn is_ref_like(&self) -> bool {
        matches!(self, Value::Ref(_) | Value::Null)
    }

    /// Truthiness used by conditional jumps: zero ints, zero doubles and
    /// null are false; everything else is true.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Double(d) => *d != 0.0,
            Value::Ref(_) => true,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}f"),
            Value::Ref(id) => write!(f, "{id:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(d: f64) -> Value {
        Value::Double(d)
    }
}

impl From<ObjId> for Value {
    fn from(id: ObjId) -> Value {
        Value::Ref(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Ok(3));
        assert_eq!(Value::Double(2.5).as_double(), Ok(2.5));
        assert_eq!(Value::Int(2).as_double(), Ok(2.0));
        assert_eq!(Value::Ref(ObjId(7)).as_ref_id(), Ok(ObjId(7)));
        assert!(Value::Null.as_int().is_err());
        assert!(Value::Int(1).as_ref_id().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(!Value::Double(0.0).is_truthy());
        assert!(Value::Double(0.1).is_truthy());
        assert!(Value::Ref(ObjId(0)).is_truthy());
    }

    #[test]
    fn ref_like() {
        assert!(Value::Null.is_ref_like());
        assert!(Value::Ref(ObjId(1)).is_ref_like());
        assert!(!Value::Int(1).is_ref_like());
    }
}
