//! Call frames.

use serde::{Deserialize, Serialize};
use tinman_taint::TaintSet;

use crate::error::VmError;
use crate::program::FuncId;
use crate::value::Value;

/// One activation record: locals, operand stack, and their shadow taint
/// labels.
///
/// Shadow labels exist in every configuration but only the *full* taint
/// engine ever writes non-empty values into them — the asymmetric client
/// engine guarantees tainted data never reaches a stack slot (offloading
/// intervenes first), and the baseline engine tracks nothing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// The function this frame executes.
    pub func: FuncId,
    /// Next instruction index.
    pub pc: usize,
    /// Local variable slots (arguments first).
    pub locals: Vec<Value>,
    /// Shadow taint for each local slot.
    pub local_taint: Vec<TaintSet>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Shadow taint for each operand-stack slot (kept in lockstep).
    pub stack_taint: Vec<TaintSet>,
    /// Name of the function (diagnostics without image lookups).
    pub func_name: String,
}

impl Frame {
    /// Creates a frame with `n_locals` zeroed locals.
    pub fn new(func: FuncId, func_name: impl Into<String>, n_locals: u16) -> Self {
        Frame {
            func,
            pc: 0,
            locals: vec![Value::Null; n_locals as usize],
            local_taint: vec![TaintSet::EMPTY; n_locals as usize],
            stack: Vec::new(),
            stack_taint: Vec::new(),
            func_name: func_name.into(),
        }
    }

    /// Pushes a value with its taint.
    pub fn push(&mut self, v: Value, t: TaintSet) {
        self.stack.push(v);
        self.stack_taint.push(t);
    }

    /// Pops a value with its taint.
    pub fn pop(&mut self) -> Result<(Value, TaintSet), VmError> {
        match (self.stack.pop(), self.stack_taint.pop()) {
            (Some(v), Some(t)) => Ok((v, t)),
            _ => Err(VmError::StackUnderflow { func: self.func_name.clone(), pc: self.pc }),
        }
    }

    /// Peeks `depth` slots below the top (0 = top) without popping.
    pub fn peek(&self, depth: usize) -> Result<(Value, TaintSet), VmError> {
        let len = self.stack.len();
        if depth >= len {
            return Err(VmError::StackUnderflow { func: self.func_name.clone(), pc: self.pc });
        }
        Ok((self.stack[len - 1 - depth], self.stack_taint[len - 1 - depth]))
    }

    /// Reads a local slot with its taint.
    pub fn local(&self, index: u16) -> Result<(Value, TaintSet), VmError> {
        let i = index as usize;
        if i >= self.locals.len() {
            return Err(VmError::BadLocal { func: self.func_name.clone(), pc: self.pc, index });
        }
        Ok((self.locals[i], self.local_taint[i]))
    }

    /// Writes a local slot with its taint.
    pub fn set_local(&mut self, index: u16, v: Value, t: TaintSet) -> Result<(), VmError> {
        let i = index as usize;
        if i >= self.locals.len() {
            return Err(VmError::BadLocal { func: self.func_name.clone(), pc: self.pc, index });
        }
        self.locals[i] = v;
        self.local_taint[i] = t;
        Ok(())
    }

    /// Current operand-stack depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// True if any stack slot or local carries taint (used to verify the
    /// client-side invariant that tainted data never rests on the stack).
    pub fn any_tainted(&self) -> bool {
        self.stack_taint.iter().chain(self.local_taint.iter()).any(|t| t.is_tainted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_taint::Label;

    fn frame() -> Frame {
        Frame::new(FuncId(0), "test", 2)
    }

    #[test]
    fn push_pop_round_trip() {
        let mut f = frame();
        let t = Label::new(1).unwrap().as_set();
        f.push(Value::Int(42), t);
        assert_eq!(f.depth(), 1);
        let (v, vt) = f.pop().unwrap();
        assert_eq!(v, Value::Int(42));
        assert_eq!(vt, t);
        assert!(matches!(f.pop(), Err(VmError::StackUnderflow { .. })));
    }

    #[test]
    fn peek_depths() {
        let mut f = frame();
        f.push(Value::Int(1), TaintSet::EMPTY);
        f.push(Value::Int(2), TaintSet::EMPTY);
        assert_eq!(f.peek(0).unwrap().0, Value::Int(2));
        assert_eq!(f.peek(1).unwrap().0, Value::Int(1));
        assert!(f.peek(2).is_err());
        assert_eq!(f.depth(), 2, "peek must not pop");
    }

    #[test]
    fn locals_bounds() {
        let mut f = frame();
        f.set_local(0, Value::Int(9), TaintSet::EMPTY).unwrap();
        assert_eq!(f.local(0).unwrap().0, Value::Int(9));
        assert!(matches!(f.local(2), Err(VmError::BadLocal { .. })));
        assert!(matches!(
            f.set_local(2, Value::Null, TaintSet::EMPTY),
            Err(VmError::BadLocal { .. })
        ));
    }

    #[test]
    fn any_tainted_detects_shadow_labels() {
        let mut f = frame();
        assert!(!f.any_tainted());
        f.push(Value::Int(1), Label::new(0).unwrap().as_set());
        assert!(f.any_tainted());
        f.pop().unwrap();
        f.set_local(1, Value::Int(2), Label::new(3).unwrap().as_set()).unwrap();
        assert!(f.any_tainted());
    }
}
