//! Durable trusted-node state.
//!
//! A real trusted node restarts: its cor store (including derived cors
//! minted mid-session) and its policy rules must survive. §3.6 likewise
//! mentions the client persisting taint labels to disk. This module
//! provides JSON snapshots for the node-side state — the *node's own*
//! storage, so plaintexts appear in it by design (the node is the one
//! place plaintext is allowed to live).

use serde::{Deserialize, Serialize};
use tinman_sim::SplitMix64;

use crate::policy::PolicyRule;
use crate::store::{CorId, CorRecord, CorStore};

/// A serializable snapshot of a [`CorStore`].
#[derive(Serialize, Deserialize)]
pub struct StoreSnapshot {
    records: Vec<CorRecord>,
    next_id: u8,
    start_id: u8,
    end_id: u8,
    rng_seed: u64,
}

/// A serializable snapshot of the per-cor policy rules.
#[derive(Serialize, Deserialize, Default)]
pub struct PolicySnapshot {
    /// `(cor, rule)` pairs.
    pub rules: Vec<(CorId, PolicyRule)>,
    /// Revoked device names.
    pub revoked_devices: Vec<String>,
}

/// An error restoring a snapshot.
#[derive(Debug)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "persist error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

impl CorStore {
    /// Serializes the store (plaintexts included — this is the trusted
    /// node's own storage). Fully fallible: serialization problems become
    /// a [`PersistError`], never a panic — the vault layer calls this on
    /// every commit path and a panic there would take a trusted node down
    /// with cor state unflushed.
    pub fn to_json(&self) -> Result<String, PersistError> {
        let snapshot = StoreSnapshot {
            records: self.export_records(),
            next_id: self.next_id(),
            start_id: self.label_range().0,
            end_id: self.label_range().1,
            rng_seed: 0, // the placeholder generator is re-seeded on load
        };
        serde_json::to_string_pretty(&snapshot).map_err(|e| PersistError(e.to_string()))
    }

    /// Restores a store from [`CorStore::to_json`] output. A fresh
    /// placeholder-generator seed is supplied by the caller (placeholders
    /// of existing records are preserved verbatim; only future mints use
    /// the new seed).
    pub fn from_json(json: &str, reseed: u64) -> Result<CorStore, PersistError> {
        let snapshot: StoreSnapshot =
            serde_json::from_str(json).map_err(|e| PersistError(e.to_string()))?;
        let mut store = CorStore::with_label_range(reseed, snapshot.start_id, snapshot.end_id)
            .map_err(|e| PersistError(e.to_string()))?;
        store.restore_records(snapshot.records, snapshot.next_id)?;
        let _ = SplitMix64::new(snapshot.rng_seed); // field kept for format stability
        Ok(store)
    }
}

impl crate::policy::PolicyEngine {
    /// Serializes the rules and revocations (usage counters are
    /// deliberately not persisted: rate limits reset on restart, the
    /// conservative direction).
    pub fn to_snapshot(&self) -> PolicySnapshot {
        PolicySnapshot {
            rules: self.rules_for_persist(),
            revoked_devices: self.revoked_for_persist(),
        }
    }

    /// Restores rules and revocations from a snapshot.
    pub fn from_snapshot(snapshot: PolicySnapshot) -> Self {
        let mut engine = Self::new();
        for (cor, rule) in snapshot.rules {
            engine.set_rule(cor, rule);
        }
        for device in snapshot.revoked_devices {
            engine.revoke_device(&device);
        }
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AccessRequest, PolicyDecision, PolicyEngine};
    use tinman_sim::SimTime;

    #[test]
    fn store_round_trips_with_derived_cors() {
        let mut store = CorStore::with_label_range(7, 8, 24).unwrap();
        let a = store.register("work-password", "Work", &["corp.example"]).unwrap();
        let d = store.register_derived("derived-hash-value", a.taint()).unwrap();

        let json = store.to_json().unwrap();
        let restored = CorStore::from_json(&json, 999).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.plaintext(a), Some("work-password"));
        assert_eq!(restored.plaintext(d), Some("derived-hash-value"));
        assert_eq!(restored.placeholder(a), store.placeholder(a));
        assert_eq!(restored.find_by_plaintext("derived-hash-value"), Some(d));
        assert!(restored.get(d).unwrap().derived);
        // Allocation continues where it left off, in range.
        let next = {
            let mut r = restored;
            r.register("new-after-restore", "New", &[]).unwrap()
        };
        assert_eq!(next, CorId::new(10).unwrap());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(CorStore::from_json("{not json", 1).is_err());
        assert!(CorStore::from_json(
            "{\"records\":[],\"next_id\":0,\"start_id\":9,\"end_id\":3,\"rng_seed\":0}",
            1
        )
        .is_err());
    }

    /// A snapshot cut off mid-write (the exact shape a torn disk leaves
    /// behind) must be a checked error, not a panic or a partial store.
    #[test]
    fn truncated_json_is_an_error() {
        let mut store = CorStore::with_label_range(3, 0, 8).unwrap();
        store.register("pw", "d", &["x.com"]).unwrap();
        let json = store.to_json().unwrap();
        for cut in [1, json.len() / 3, json.len() - 1] {
            let err = CorStore::from_json(&json[..cut], 1);
            assert!(err.is_err(), "truncation at {cut} accepted");
        }
    }

    /// Two records claiming the same cor id is a corrupt snapshot: the
    /// placeholder↔plaintext binding would be ambiguous, which is a
    /// security failure, so restore refuses outright.
    #[test]
    fn duplicate_cor_ids_are_rejected() {
        let rec = "{\"id\":2,\"plaintext\":\"pw\",\"placeholder\":\"xx\",\
                   \"description\":\"d\",\"whitelist\":[],\"derived\":false}";
        let json = format!(
            "{{\"records\":[{rec},{rec}],\"next_id\":3,\"start_id\":0,\"end_id\":8,\"rng_seed\":0}}"
        );
        let err = match CorStore::from_json(&json, 1) {
            Ok(_) => panic!("duplicate ids accepted"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("duplicate cor id"), "got: {err}");
    }

    /// `next_id` below/above the range, or not past the highest restored
    /// record, would let the store re-issue a live label after restart.
    #[test]
    fn bad_next_id_is_rejected() {
        let rec = "{\"id\":5,\"plaintext\":\"pw\",\"placeholder\":\"xx\",\
                   \"description\":\"d\",\"whitelist\":[],\"derived\":false}";
        for (next_id, range) in [(1u8, (4u8, 8u8)), (9, (4, 8)), (5, (4, 8)), (3, (4, 8))] {
            let json = format!(
                "{{\"records\":[{rec}],\"next_id\":{next_id},\"start_id\":{},\"end_id\":{},\
                 \"rng_seed\":0}}",
                range.0, range.1
            );
            assert!(CorStore::from_json(&json, 1).is_err(), "next_id {next_id} accepted");
        }
        // The boundary case that is legal: next_id == end (range full).
        let json = format!(
            "{{\"records\":[{rec}],\"next_id\":8,\"start_id\":4,\"end_id\":8,\"rng_seed\":0}}"
        );
        let full = CorStore::from_json(&json, 1).unwrap();
        assert_eq!(full.next_id(), 8);
    }

    /// The vault replays committed records through `install_record`; the
    /// same corruption classes must be checked errors there too.
    #[test]
    fn install_record_validates_like_restore() {
        let mut store = CorStore::with_label_range(11, 4, 8).unwrap();
        let rec = |id: u8| CorRecord {
            id: CorId::new(id).unwrap(),
            plaintext: format!("pw{id}"),
            placeholder: format!("xx{id}"),
            description: "d".into(),
            whitelist: vec![],
            derived: false,
        };
        store.install_record(rec(4), 5).unwrap();
        assert_eq!(store.plaintext(CorId::new(4).unwrap()), Some("pw4"));
        assert!(store.install_record(rec(4), 5).is_err(), "duplicate id");
        assert!(store.install_record(rec(2), 5).is_err(), "outside range");
        assert!(store.install_record(rec(5), 5).is_err(), "next_id not past the record");
        assert!(store.install_record(rec(5), 9).is_err(), "next_id outside range");
        store.install_record(rec(5), 6).unwrap();
        // Allocation continues where the replay left off.
        assert_eq!(store.register("fresh", "d", &[]).unwrap(), CorId::new(6).unwrap());
    }

    #[test]
    fn policy_round_trips_rules_and_revocations() {
        let mut engine = PolicyEngine::new();
        engine.set_rule(
            CorId::new(2).unwrap(),
            crate::policy::PolicyRule {
                bound_app_hash: Some([9u8; 32]),
                domain_whitelist: vec!["site.com".into()],
                ..Default::default()
            },
        );
        engine.revoke_device("stolen-phone");

        let snapshot = engine.to_snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: PolicySnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = PolicyEngine::from_snapshot(back);

        assert!(restored.is_revoked("stolen-phone"));
        let req = AccessRequest {
            cor: CorId::new(2).unwrap(),
            app_hash: [1u8; 32], // wrong hash
            dest_domain: None,
            device: "phone-1".into(),
            now: SimTime::ZERO,
        };
        assert_eq!(restored.check(&req, &[]), PolicyDecision::DeniedAppMismatch);
    }

    #[test]
    fn rate_counters_reset_on_restore() {
        let mut engine = PolicyEngine::new();
        engine.set_rule(
            CorId::new(0).unwrap(),
            crate::policy::PolicyRule {
                domain_whitelist: vec!["s.com".into()],
                max_uses_per_day: Some(1),
                ..Default::default()
            },
        );
        let req = AccessRequest {
            cor: CorId::new(0).unwrap(),
            app_hash: [0u8; 32],
            dest_domain: Some("s.com".into()),
            device: "d".into(),
            now: SimTime::ZERO,
        };
        assert!(engine.check(&req, &[]).is_allowed());
        assert!(!engine.check(&req, &[]).is_allowed());
        // After restart the counter is gone but the rule remains.
        let mut restored = PolicyEngine::from_snapshot(engine.to_snapshot());
        assert!(restored.check(&req, &[]).is_allowed());
        assert!(!restored.check(&req, &[]).is_allowed());
    }
}
