#![warn(missing_docs)]
//! Confidential records (cors) and the trusted node's security policy.
//!
//! A *cor* (COnfidential Record) is the paper's central abstraction
//! (Table 1): a secret such as a password or card number whose plaintext
//! exists **only on the trusted node**. The mobile device holds a
//! same-length placeholder, tainted with the cor's label.
//!
//! This crate provides:
//! * [`store`] — the node-side [`CorStore`] (plaintexts, derived cors,
//!   placeholder minting) and the client-side [`PlaceholderDirectory`]
//!   (descriptions + placeholders, no plaintext, the source of the cor
//!   selection widget's list);
//! * [`policy`] — the §3.4 enforcement: app-hash↔cor binding, domain
//!   whitelists with authentication-endpoint narrowing, time windows,
//!   per-day rate limits, revocation, and the malware hash database;
//! * [`audit`] — the append-only access log (timestamp, app hash, cor id,
//!   domain, decision) the node keeps for §3.4/§4.2 auditing.
//!
//! [`CorStore`]: store::CorStore
//! [`PlaceholderDirectory`]: store::PlaceholderDirectory

pub mod anomaly;
pub mod audit;
pub mod persist;
pub mod policy;
pub mod store;

pub use anomaly::{analyze, AnomalyConfig, Warning};
pub use audit::{AuditEntry, AuditLog};
pub use persist::{PersistError, PolicySnapshot, StoreSnapshot};
pub use policy::{AccessRequest, MalwareDb, PolicyDecision, PolicyEngine, PolicyRule};
pub use store::{CorError, CorId, CorRecord, CorStore, PlaceholderDirectory};
