//! Audit-log anomaly detection.
//!
//! §3.4: "all of the cor access activities on the trusted node are logged
//! for auditing … any abnormal activity will be reported to the user", and
//! §5.4 proposes "more effective dynamic analysis on the trusted node,
//! which can detect user's abnormal behavior and give some warnings". This
//! module is that analysis: a set of detectors run over the [`AuditLog`]
//! producing [`Warning`]s the node would push to the user.
//!
//! Detectors (all conservative — they flag, never block; blocking is the
//! policy engine's job):
//!
//! * **denials** — every policy denial is user-visible;
//! * **burst** — more than `max_per_window` accesses to one cor inside
//!   `window`;
//! * **novel domain** — a cor sent to a domain it had never been sent to
//!   in the log's history;
//! * **novel app** — a cor accessed by an app hash never seen touching it
//!   before;
//! * **off-hours** — access outside the user's historical activity hours
//!   (learned from the log itself, once enough history exists).

use serde::{Deserialize, Serialize};
use tinman_sim::SimDuration;

use crate::audit::AuditLog;
use crate::store::CorId;

/// One warning the trusted node raises to the user.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Warning {
    /// A policy denial occurred (always reported).
    Denied {
        /// The cor involved.
        cor: CorId,
        /// The denial, as recorded.
        detail: String,
    },
    /// Too many accesses to one cor in a short window.
    Burst {
        /// The cor involved.
        cor: CorId,
        /// Accesses observed inside the window.
        count: usize,
        /// The window length.
        window: SimDuration,
    },
    /// A cor was sent to a domain it had never been sent to before.
    NovelDomain {
        /// The cor involved.
        cor: CorId,
        /// The first-seen destination.
        domain: String,
    },
    /// A cor was accessed by an app hash that never touched it before.
    NovelApp {
        /// The cor involved.
        cor: CorId,
        /// Hex prefix of the new app hash.
        app_hash_prefix: String,
    },
    /// Access at an hour of day the user has no history of being active.
    OffHours {
        /// The cor involved.
        cor: CorId,
        /// The hour of the simulated day (0-23).
        hour: u8,
    },
}

/// Detector configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// Burst window length.
    pub window: SimDuration,
    /// Maximum accesses per cor inside the window before flagging.
    pub max_per_window: usize,
    /// Minimum history (entries) before the off-hours detector activates.
    pub min_history_for_hours: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            window: SimDuration::from_secs(3600),
            max_per_window: 10,
            min_history_for_hours: 20,
        }
    }
}

const SECS_PER_DAY: f64 = 86_400.0;

fn hour_of(t: tinman_sim::SimTime) -> u8 {
    ((t.as_secs_f64() % SECS_PER_DAY) / 3600.0).floor() as u8
}

/// Runs every detector over `log`; returns warnings oldest-first.
pub fn analyze(log: &AuditLog, config: &AnomalyConfig) -> Vec<Warning> {
    let mut warnings = Vec::new();
    let entries = log.entries();

    // Learned activity hours (from allowed accesses only).
    let mut active_hours = [0usize; 24];
    let mut history_len = 0usize;

    for (i, e) in entries.iter().enumerate() {
        // 1. Denials.
        if e.is_abnormal() {
            warnings.push(Warning::Denied { cor: e.cor, detail: format!("{:?}", e.decision) });
        }

        // 2. Burst: count same-cor accesses within the trailing window.
        let window_start = e.time.as_nanos().saturating_sub(config.window.as_nanos());
        let count = entries[..=i]
            .iter()
            .rev()
            .take_while(|p| p.time.as_nanos() >= window_start)
            .filter(|p| p.cor == e.cor)
            .count();
        if count == config.max_per_window + 1 {
            // Flag once, at the first crossing.
            warnings.push(Warning::Burst { cor: e.cor, count, window: config.window });
        }

        // 3. Novel domain: a send to a domain this cor never went to.
        if let Some(domain) = &e.domain {
            let seen_before = entries[..i]
                .iter()
                .any(|p| p.cor == e.cor && p.domain.as_deref() == Some(domain.as_str()));
            if !seen_before && i > 0 {
                let cor_has_history = entries[..i].iter().any(|p| p.cor == e.cor);
                if cor_has_history {
                    warnings.push(Warning::NovelDomain { cor: e.cor, domain: domain.clone() });
                }
            }
        }

        // 4. Novel app: an app hash that never touched this cor.
        let app_seen =
            entries[..i].iter().any(|p| p.cor == e.cor && p.app_hash_hex == e.app_hash_hex);
        if !app_seen && entries[..i].iter().any(|p| p.cor == e.cor) {
            warnings.push(Warning::NovelApp {
                cor: e.cor,
                app_hash_prefix: e.app_hash_hex.chars().take(12).collect(),
            });
        }

        // 5. Off-hours, once enough history accumulated.
        if history_len >= config.min_history_for_hours {
            let h = hour_of(e.time) as usize;
            if active_hours[h] == 0 {
                warnings.push(Warning::OffHours { cor: e.cor, hour: h as u8 });
            }
        }
        if !e.is_abnormal() {
            active_hours[hour_of(e.time) as usize] += 1;
            history_len += 1;
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEntry;
    use crate::policy::PolicyDecision;
    use tinman_sim::SimTime;

    fn entry(
        cor: u8,
        secs: u64,
        domain: Option<&str>,
        app: &str,
        decision: PolicyDecision,
    ) -> AuditEntry {
        AuditEntry {
            time: SimTime::ZERO + SimDuration::from_secs(secs),
            app_hash_hex: app.to_owned(),
            cor: CorId::new(cor).unwrap(),
            domain: domain.map(str::to_owned),
            decision,
            device: "phone-1".into(),
        }
    }

    fn allowed(cor: u8, secs: u64, domain: &str) -> AuditEntry {
        entry(cor, secs, Some(domain), "appA", PolicyDecision::Allow)
    }

    #[test]
    fn quiet_log_is_quiet() {
        let mut log = AuditLog::new();
        log.record(allowed(0, 36_000, "bank.com"));
        log.record(allowed(0, 40_000, "bank.com"));
        let w = analyze(&log, &AnomalyConfig::default());
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn denials_always_warn() {
        let mut log = AuditLog::new();
        log.record(entry(
            0,
            10,
            Some("evil.com"),
            "appA",
            PolicyDecision::DeniedDomain { domain: "evil.com".into() },
        ));
        let w = analyze(&log, &AnomalyConfig::default());
        assert!(matches!(w[0], Warning::Denied { .. }));
    }

    #[test]
    fn burst_flags_once_at_crossing() {
        let mut log = AuditLog::new();
        for i in 0..15 {
            log.record(allowed(0, 36_000 + i * 60, "bank.com"));
        }
        let w = analyze(&log, &AnomalyConfig::default());
        let bursts: Vec<_> = w.iter().filter(|x| matches!(x, Warning::Burst { .. })).collect();
        assert_eq!(bursts.len(), 1, "{w:?}");
    }

    #[test]
    fn spread_out_accesses_do_not_burst() {
        let mut log = AuditLog::new();
        for i in 0..15 {
            log.record(allowed(0, 36_000 + i * 7200, "bank.com")); // 2h apart
        }
        let w = analyze(&log, &AnomalyConfig::default());
        assert!(!w.iter().any(|x| matches!(x, Warning::Burst { .. })));
    }

    #[test]
    fn novel_domain_flags_second_destination() {
        let mut log = AuditLog::new();
        log.record(allowed(0, 100, "bank.com"));
        log.record(allowed(0, 200, "bank.com"));
        log.record(allowed(0, 300, "cdn.bank.com")); // new destination
        let w = analyze(&log, &AnomalyConfig::default());
        assert!(w
            .iter()
            .any(|x| matches!(x, Warning::NovelDomain { domain, .. } if domain == "cdn.bank.com")));
    }

    #[test]
    fn novel_app_flags_new_hash() {
        let mut log = AuditLog::new();
        log.record(entry(0, 100, Some("bank.com"), "appA", PolicyDecision::Allow));
        log.record(entry(0, 200, Some("bank.com"), "appB", PolicyDecision::Allow));
        let w = analyze(&log, &AnomalyConfig::default());
        assert!(w.iter().any(
            |x| matches!(x, Warning::NovelApp { app_hash_prefix, .. } if app_hash_prefix == "appB")
        ));
    }

    #[test]
    fn off_hours_needs_history_then_flags() {
        let mut log = AuditLog::new();
        // Build 25 entries of daytime (10:00) history across days.
        for day in 0..25u64 {
            log.record(allowed(0, day * 86_400 + 10 * 3600, "bank.com"));
        }
        // Then a 3 AM access.
        log.record(allowed(0, 25 * 86_400 + 3 * 3600, "bank.com"));
        let w = analyze(&log, &AnomalyConfig::default());
        assert!(w.iter().any(|x| matches!(x, Warning::OffHours { hour: 3, .. })), "{w:?}");
    }

    #[test]
    fn off_hours_quiet_without_history() {
        let mut log = AuditLog::new();
        log.record(allowed(0, 3 * 3600, "bank.com")); // 3 AM but no history
        let w = analyze(&log, &AnomalyConfig::default());
        assert!(!w.iter().any(|x| matches!(x, Warning::OffHours { .. })));
    }
}
