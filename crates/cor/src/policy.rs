//! The trusted node's access-control policy (§3.4).
//!
//! Two bindings restrict how offloaded code may use a cor:
//!
//! 1. **app ↔ cor** — a cor may be bound to the hash of the only app image
//!    allowed to access it (defeats phishing apps: a fake Facebook app has
//!    a different dex hash);
//! 2. **cor ↔ domain** — a cor may only be *sent* to whitelisted domains,
//!    optionally narrowed to the site's dedicated authentication endpoints
//!    (defeats the post-password-as-comment attack: `facebook.com` content
//!    servers are not `auth.facebook.com`).
//!
//! On top of the bindings: per-device revocation (stolen-phone response),
//! time-of-day windows and per-day rate limits (§4.2's card rules), and a
//! malware hash database consulted before any offloaded image runs.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};
use tinman_sim::SimTime;

use crate::store::CorId;

/// A per-cor policy rule set. Absent fields mean "unrestricted".
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Only this app image hash may access the cor.
    pub bound_app_hash: Option<[u8; 32]>,
    /// Only these domains may receive the cor (checked against the resolved
    /// destination's domain). Empty = use the cor record's own whitelist.
    pub domain_whitelist: Vec<String>,
    /// If set, the whitelist is narrowed to these dedicated authentication
    /// endpoints (the §3.4 auth-IP narrowing).
    pub auth_endpoints: Vec<String>,
    /// Allowed send window as hours of the simulated day `[start, end)`,
    /// e.g. `(10, 22)` for "10:00 to 22:00" (§4.2 rule 2).
    pub time_window_hours: Option<(u8, u8)>,
    /// Maximum sends per simulated day (§4.2 rule 3).
    pub max_uses_per_day: Option<u32>,
}

/// One access request the policy engine evaluates.
#[derive(Clone, Debug)]
pub struct AccessRequest {
    /// Which cor.
    pub cor: CorId,
    /// Hash of the requesting app image.
    pub app_hash: [u8; 32],
    /// Destination domain when the request is a network send; `None` for
    /// pure computation (hashing a password never leaves the node).
    pub dest_domain: Option<String>,
    /// Requesting device identity (for revocation).
    pub device: String,
    /// Simulated time of the request.
    pub now: SimTime,
}

/// The engine's verdict.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyDecision {
    /// Access granted.
    Allow,
    /// The app hash does not match the cor's binding (phishing app).
    DeniedAppMismatch,
    /// The destination domain is not whitelisted for this cor.
    DeniedDomain {
        /// The rejected destination.
        domain: String,
    },
    /// The destination is in the domain but not a dedicated auth endpoint.
    DeniedNotAuthEndpoint {
        /// The rejected destination.
        domain: String,
    },
    /// Outside the allowed time window.
    DeniedTimeWindow,
    /// Daily usage limit exhausted.
    DeniedRateLimit,
    /// The requesting device's permissions were revoked (stolen phone).
    DeniedRevoked,
    /// The requesting app image is known malware.
    DeniedMalware,
}

impl PolicyDecision {
    /// True when access proceeds.
    pub fn is_allowed(&self) -> bool {
        *self == PolicyDecision::Allow
    }
}

/// The §3.4 malware hash database ("currently we only apply a relatively
/// small database with around 1,000 malware").
#[derive(Clone, Debug, Default)]
pub struct MalwareDb {
    hashes: HashSet<[u8; 32]>,
}

impl MalwareDb {
    /// An empty database.
    pub fn new() -> Self {
        MalwareDb::default()
    }

    /// Adds a known-malware image hash.
    pub fn add(&mut self, hash: [u8; 32]) {
        self.hashes.insert(hash);
    }

    /// True if `hash` is known malware.
    pub fn contains(&self, hash: &[u8; 32]) -> bool {
        self.hashes.contains(hash)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }
}

/// Evaluates [`AccessRequest`]s against per-cor rules, revocations and the
/// malware database, and tracks daily usage for rate limiting.
#[derive(Clone, Debug, Default)]
pub struct PolicyEngine {
    rules: HashMap<CorId, PolicyRule>,
    revoked_devices: HashSet<String>,
    malware: MalwareDb,
    /// (cor, day-index) -> sends so far.
    usage: HashMap<(CorId, u64), u32>,
}

const SECS_PER_DAY: f64 = 86_400.0;

impl PolicyEngine {
    /// An engine with no rules (everything allowed except malware /
    /// revoked devices, of which there are none yet).
    pub fn new() -> Self {
        PolicyEngine::default()
    }

    /// Installs (replacing) the rule for a cor.
    pub fn set_rule(&mut self, cor: CorId, rule: PolicyRule) {
        self.rules.insert(cor, rule);
    }

    /// The rule for a cor, if any.
    pub fn rule(&self, cor: CorId) -> Option<&PolicyRule> {
        self.rules.get(&cor)
    }

    /// Revokes all cor access for a device — the user's stolen-phone
    /// response (§3.4).
    pub fn revoke_device(&mut self, device: &str) {
        self.revoked_devices.insert(device.to_owned());
    }

    /// Restores a previously revoked device.
    pub fn unrevoke_device(&mut self, device: &str) {
        self.revoked_devices.remove(device);
    }

    /// True if the device is revoked.
    pub fn is_revoked(&self, device: &str) -> bool {
        self.revoked_devices.contains(device)
    }

    /// Mutable access to the malware database.
    pub fn malware_db_mut(&mut self) -> &mut MalwareDb {
        &mut self.malware
    }

    /// The malware database.
    pub fn malware_db(&self) -> &MalwareDb {
        &self.malware
    }

    // ---- persistence hooks (crate-internal; see `persist`) ----

    pub(crate) fn rules_for_persist(&self) -> Vec<(CorId, PolicyRule)> {
        let mut v: Vec<(CorId, PolicyRule)> =
            self.rules.iter().map(|(k, r)| (*k, r.clone())).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    pub(crate) fn revoked_for_persist(&self) -> Vec<String> {
        let mut v: Vec<String> = self.revoked_devices.iter().cloned().collect();
        v.sort();
        v
    }

    /// Evaluates a request. On `Allow` for a send request, the daily usage
    /// counter advances.
    ///
    /// `fallback_whitelist` is the cor record's own whitelist (Table 1),
    /// used when the rule specifies none.
    pub fn check(&mut self, req: &AccessRequest, fallback_whitelist: &[String]) -> PolicyDecision {
        if self.revoked_devices.contains(&req.device) {
            return PolicyDecision::DeniedRevoked;
        }
        if self.malware.contains(&req.app_hash) {
            return PolicyDecision::DeniedMalware;
        }
        let rule = self.rules.get(&req.cor).cloned().unwrap_or_default();
        if let Some(bound) = rule.bound_app_hash {
            if bound != req.app_hash {
                return PolicyDecision::DeniedAppMismatch;
            }
        }
        // The remaining rules apply to *sending* the cor off the node.
        let Some(domain) = &req.dest_domain else {
            return PolicyDecision::Allow;
        };
        let whitelist: &[String] = if rule.domain_whitelist.is_empty() {
            fallback_whitelist
        } else {
            &rule.domain_whitelist
        };
        let in_domain = whitelist.iter().any(|d| domain == d || domain.ends_with(&format!(".{d}")));
        if !in_domain {
            return PolicyDecision::DeniedDomain { domain: domain.clone() };
        }
        if !rule.auth_endpoints.is_empty() && !rule.auth_endpoints.iter().any(|d| d == domain) {
            return PolicyDecision::DeniedNotAuthEndpoint { domain: domain.clone() };
        }
        if let Some((start, end)) = rule.time_window_hours {
            let hour = ((req.now.as_secs_f64() % SECS_PER_DAY) / 3600.0).floor() as u8;
            let inside = if start <= end {
                hour >= start && hour < end
            } else {
                hour >= start || hour < end
            };
            if !inside {
                return PolicyDecision::DeniedTimeWindow;
            }
        }
        if let Some(limit) = rule.max_uses_per_day {
            let day = (req.now.as_secs_f64() / SECS_PER_DAY) as u64;
            let count = self.usage.entry((req.cor, day)).or_insert(0);
            if *count >= limit {
                return PolicyDecision::DeniedRateLimit;
            }
            *count += 1;
        }
        PolicyDecision::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_sim::{SimDuration, SimTime};

    fn at_hour(h: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(h * 3600)
    }

    fn req(cor: CorId, app: u8, domain: Option<&str>, now: SimTime) -> AccessRequest {
        AccessRequest {
            cor,
            app_hash: [app; 32],
            dest_domain: domain.map(str::to_owned),
            device: "phone-1".into(),
            now,
        }
    }

    #[test]
    fn default_rule_allows_computation() {
        let mut e = PolicyEngine::new();
        let d = e.check(&req(CorId::new(0).unwrap(), 1, None, SimTime::ZERO), &[]);
        assert!(d.is_allowed());
    }

    #[test]
    fn app_binding_blocks_phishing_app() {
        let mut e = PolicyEngine::new();
        e.set_rule(
            CorId::new(0).unwrap(),
            PolicyRule { bound_app_hash: Some([1u8; 32]), ..Default::default() },
        );
        assert!(e.check(&req(CorId::new(0).unwrap(), 1, None, SimTime::ZERO), &[]).is_allowed());
        assert_eq!(
            e.check(&req(CorId::new(0).unwrap(), 2, None, SimTime::ZERO), &[]),
            PolicyDecision::DeniedAppMismatch
        );
    }

    #[test]
    fn domain_whitelist_with_subdomains() {
        let mut e = PolicyEngine::new();
        let wl = vec!["citibank.com".to_owned()];
        assert!(e
            .check(&req(CorId::new(0).unwrap(), 1, Some("citibank.com"), SimTime::ZERO), &wl)
            .is_allowed());
        assert!(e
            .check(&req(CorId::new(0).unwrap(), 1, Some("auth.citibank.com"), SimTime::ZERO), &wl)
            .is_allowed());
        assert_eq!(
            e.check(&req(CorId::new(0).unwrap(), 1, Some("evil.com"), SimTime::ZERO), &wl),
            PolicyDecision::DeniedDomain { domain: "evil.com".into() }
        );
        assert_eq!(
            e.check(&req(CorId::new(0).unwrap(), 1, Some("notcitibank.com"), SimTime::ZERO), &wl),
            PolicyDecision::DeniedDomain { domain: "notcitibank.com".into() },
            "suffix matching must not over-match"
        );
    }

    #[test]
    fn rule_whitelist_overrides_fallback() {
        let mut e = PolicyEngine::new();
        e.set_rule(
            CorId::new(0).unwrap(),
            PolicyRule { domain_whitelist: vec!["only.com".into()], ..Default::default() },
        );
        let fallback = vec!["other.com".to_owned()];
        assert!(e
            .check(&req(CorId::new(0).unwrap(), 1, Some("only.com"), SimTime::ZERO), &fallback)
            .is_allowed());
        assert!(!e
            .check(&req(CorId::new(0).unwrap(), 1, Some("other.com"), SimTime::ZERO), &fallback)
            .is_allowed());
    }

    #[test]
    fn auth_endpoint_narrowing_blocks_comment_post_attack() {
        // §3.4: password bound to facebook.com but narrowed to the auth
        // endpoint — posting it as a comment to www.facebook.com is denied.
        let mut e = PolicyEngine::new();
        e.set_rule(
            CorId::new(0).unwrap(),
            PolicyRule {
                domain_whitelist: vec!["facebook.com".into()],
                auth_endpoints: vec!["auth.facebook.com".into()],
                ..Default::default()
            },
        );
        assert!(e
            .check(&req(CorId::new(0).unwrap(), 1, Some("auth.facebook.com"), SimTime::ZERO), &[])
            .is_allowed());
        assert_eq!(
            e.check(&req(CorId::new(0).unwrap(), 1, Some("www.facebook.com"), SimTime::ZERO), &[]),
            PolicyDecision::DeniedNotAuthEndpoint { domain: "www.facebook.com".into() }
        );
    }

    #[test]
    fn time_window_enforced() {
        let mut e = PolicyEngine::new();
        e.set_rule(
            CorId::new(0).unwrap(),
            PolicyRule {
                domain_whitelist: vec!["shop.com".into()],
                time_window_hours: Some((10, 22)),
                ..Default::default()
            },
        );
        assert!(e
            .check(&req(CorId::new(0).unwrap(), 1, Some("shop.com"), at_hour(12)), &[])
            .is_allowed());
        assert_eq!(
            e.check(&req(CorId::new(0).unwrap(), 1, Some("shop.com"), at_hour(23)), &[]),
            PolicyDecision::DeniedTimeWindow
        );
        assert_eq!(
            e.check(&req(CorId::new(0).unwrap(), 1, Some("shop.com"), at_hour(3)), &[]),
            PolicyDecision::DeniedTimeWindow
        );
    }

    #[test]
    fn wrapping_time_window() {
        let mut e = PolicyEngine::new();
        e.set_rule(
            CorId::new(0).unwrap(),
            PolicyRule {
                domain_whitelist: vec!["s.com".into()],
                time_window_hours: Some((22, 6)), // overnight window
                ..Default::default()
            },
        );
        assert!(e
            .check(&req(CorId::new(0).unwrap(), 1, Some("s.com"), at_hour(23)), &[])
            .is_allowed());
        assert!(e
            .check(&req(CorId::new(0).unwrap(), 1, Some("s.com"), at_hour(5)), &[])
            .is_allowed());
        assert!(!e
            .check(&req(CorId::new(0).unwrap(), 1, Some("s.com"), at_hour(12)), &[])
            .is_allowed());
    }

    #[test]
    fn rate_limit_resets_daily() {
        let mut e = PolicyEngine::new();
        e.set_rule(
            CorId::new(0).unwrap(),
            PolicyRule {
                domain_whitelist: vec!["shop.com".into()],
                max_uses_per_day: Some(2),
                ..Default::default()
            },
        );
        let r = |t| req(CorId::new(0).unwrap(), 1, Some("shop.com"), t);
        assert!(e.check(&r(at_hour(1)), &[]).is_allowed());
        assert!(e.check(&r(at_hour(2)), &[]).is_allowed());
        assert_eq!(e.check(&r(at_hour(3)), &[]), PolicyDecision::DeniedRateLimit);
        // Next simulated day: the counter resets.
        assert!(e.check(&r(at_hour(25)), &[]).is_allowed());
    }

    #[test]
    fn revocation_blocks_everything() {
        let mut e = PolicyEngine::new();
        e.revoke_device("phone-1");
        assert_eq!(
            e.check(&req(CorId::new(0).unwrap(), 1, None, SimTime::ZERO), &[]),
            PolicyDecision::DeniedRevoked
        );
        e.unrevoke_device("phone-1");
        assert!(e.check(&req(CorId::new(0).unwrap(), 1, None, SimTime::ZERO), &[]).is_allowed());
    }

    #[test]
    fn malware_db_blocks_known_images() {
        let mut e = PolicyEngine::new();
        e.malware_db_mut().add([66u8; 32]);
        assert_eq!(
            e.check(&req(CorId::new(0).unwrap(), 66, None, SimTime::ZERO), &[]),
            PolicyDecision::DeniedMalware
        );
        assert_eq!(e.malware_db().len(), 1);
    }

    #[test]
    fn denied_requests_do_not_consume_rate_budget() {
        let mut e = PolicyEngine::new();
        e.set_rule(
            CorId::new(0).unwrap(),
            PolicyRule {
                domain_whitelist: vec!["ok.com".into()],
                max_uses_per_day: Some(1),
                ..Default::default()
            },
        );
        // A denied-by-domain request must not consume the budget.
        assert!(!e
            .check(&req(CorId::new(0).unwrap(), 1, Some("bad.com"), at_hour(1)), &[])
            .is_allowed());
        assert!(e
            .check(&req(CorId::new(0).unwrap(), 1, Some("ok.com"), at_hour(1)), &[])
            .is_allowed());
    }
}
