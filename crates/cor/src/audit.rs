//! The trusted node's audit log.
//!
//! "All of the cor access activities on the trusted node are logged for
//! auditing. Each record includes timestamp, application hash, cor ID and
//! network domain. Any abnormal activity will be reported to the user."
//! (§3.4)

use serde::{Deserialize, Serialize};
use tinman_sim::SimTime;

use crate::policy::PolicyDecision;
use crate::store::CorId;

/// One audit record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// When the access happened (simulated time).
    pub time: SimTime,
    /// Hex of the requesting app image hash.
    pub app_hash_hex: String,
    /// Which cor.
    pub cor: CorId,
    /// Destination domain for sends, `None` for computation.
    pub domain: Option<String>,
    /// The policy verdict.
    pub decision: PolicyDecision,
    /// Requesting device.
    pub device: String,
}

impl AuditEntry {
    /// True if this entry records a denial — the "abnormal activity" the
    /// node reports to the user.
    pub fn is_abnormal(&self) -> bool {
        !self.decision.is_allowed()
    }
}

/// Append-only audit log.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends an entry.
    pub fn record(&mut self, entry: AuditEntry) {
        self.entries.push(entry);
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Entries recording denials.
    pub fn abnormal(&self) -> Vec<&AuditEntry> {
        self.entries.iter().filter(|e| e.is_abnormal()).collect()
    }

    /// Entries touching one cor.
    pub fn for_cor(&self, cor: CorId) -> Vec<&AuditEntry> {
        self.entries.iter().filter(|e| e.cor == cor).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Machine-readable export (JSON lines), for the user's audit review.
    pub fn export_jsonl(&self) -> String {
        self.entries
            .iter()
            .map(|e| serde_json::to_string(e).expect("audit entries serialize"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(cor: u8, decision: PolicyDecision) -> AuditEntry {
        AuditEntry {
            time: SimTime::ZERO,
            app_hash_hex: "ab".repeat(32),
            cor: CorId::new(cor).unwrap(),
            domain: Some("bank.com".into()),
            decision,
            device: "phone-1".into(),
        }
    }

    #[test]
    fn records_accumulate_in_order() {
        let mut log = AuditLog::new();
        log.record(entry(0, PolicyDecision::Allow));
        log.record(entry(1, PolicyDecision::DeniedRevoked));
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[0].cor, CorId::new(0).unwrap());
    }

    #[test]
    fn abnormal_filter() {
        let mut log = AuditLog::new();
        log.record(entry(0, PolicyDecision::Allow));
        log.record(entry(0, PolicyDecision::DeniedAppMismatch));
        log.record(entry(1, PolicyDecision::DeniedDomain { domain: "evil.com".into() }));
        assert_eq!(log.abnormal().len(), 2);
    }

    #[test]
    fn per_cor_filter() {
        let mut log = AuditLog::new();
        log.record(entry(0, PolicyDecision::Allow));
        log.record(entry(1, PolicyDecision::Allow));
        log.record(entry(0, PolicyDecision::Allow));
        assert_eq!(log.for_cor(CorId::new(0).unwrap()).len(), 2);
        assert_eq!(log.for_cor(CorId::new(9).unwrap()).len(), 0);
    }

    #[test]
    fn jsonl_export_is_one_line_per_entry() {
        let mut log = AuditLog::new();
        log.record(entry(0, PolicyDecision::Allow));
        log.record(entry(1, PolicyDecision::DeniedRateLimit));
        let out = log.export_jsonl();
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("DeniedRateLimit"));
    }
}
