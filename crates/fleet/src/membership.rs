//! Live membership: the per-node lifecycle state machine and its pure
//! replay from a chaos plan.
//!
//! Every node walks one of two lifecycles:
//!
//! ```text
//! planned:   Serving → Draining → Evacuated → Decommissioned
//! unplanned: Serving → Down → CatchingUp → Serving
//! ```
//!
//! A *Draining* node still admits sessions — but checkpoints them at the
//! first DSM sync point and hands the serialized guest to an attested
//! peer (live migration), scrubbing its own heap. *Down*, *Evacuated*,
//! and *Decommissioned* nodes admit nothing. A *CatchingUp* node admits,
//! but the session pays the vault anti-entropy cost (to the acked
//! watermark) against its penalty deadline before serving — the
//! stale-replica refusal applied to rejoins.
//!
//! Like the breaker/guard/tenant schedules, membership is a **pure
//! replay**: [`MembershipSchedule::state_at`] is a pure function of
//! (plan, node, session id), computed identically by every worker, so
//! membership keeps the determinism contract.

use tinman_chaos::{ChaosEvent, ChaosPlan};

use crate::failure::FleetError;
use crate::region::RegionMap;

/// Session ids a region's nodes spend *CatchingUp* after a
/// [`ChaosEvent::RegionOutage`] window closes.
pub const CATCHUP_SESSIONS: u64 = 2;

/// A node's membership state for one session id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MembershipState {
    /// Fully in rotation.
    Serving,
    /// Rejoining after an outage: admits sessions, but each pays vault
    /// catch-up to the acked watermark before serving.
    CatchingUp,
    /// Planned exit in progress: admits sessions and live-migrates them
    /// off at the first DSM sync point.
    Draining,
    /// Unplanned outage: unreachable; sessions in flight when it fell
    /// die mid-offload and must migrate from their checkpoint.
    Down,
    /// Drained clean: heap scrubbed, zero residue, admits nothing.
    Evacuated,
    /// Removed from the fleet; terminal.
    Decommissioned,
}

impl MembershipState {
    /// Stable lowercase name (obs labels, report rows).
    pub fn as_str(self) -> &'static str {
        match self {
            MembershipState::Serving => "serving",
            MembershipState::CatchingUp => "catching_up",
            MembershipState::Draining => "draining",
            MembershipState::Down => "down",
            MembershipState::Evacuated => "evacuated",
            MembershipState::Decommissioned => "decommissioned",
        }
    }

    /// True when a session may *start* on a node in this state. Draining
    /// admits (and then migrates); CatchingUp admits (after paying
    /// catch-up); the rest refuse at placement.
    pub fn can_start(self) -> bool {
        matches!(
            self,
            MembershipState::Serving | MembershipState::CatchingUp | MembershipState::Draining
        )
    }
}

/// The membership timeline of every node, replayed from the chaos plan.
/// Built once per fleet run; `state_at` folds the (few) membership
/// events on demand — worst state wins when windows overlap.
#[derive(Clone, Debug)]
pub struct MembershipSchedule {
    events: Vec<ChaosEvent>,
    nodes: usize,
    regions: RegionMap,
}

impl MembershipSchedule {
    /// Extracts the membership families from `plan` and validates them
    /// against the fleet's shape: node indices against `nodes` (the
    /// plan's own `validate` already covers these, re-checked here since
    /// the pool may have clamped), region indices against the region
    /// map ([`FleetError::BadRegion`] — the plan cannot check these, it
    /// does not know the region count).
    pub fn build(
        plan: &ChaosPlan,
        nodes: usize,
        regions: RegionMap,
    ) -> Result<MembershipSchedule, FleetError> {
        let events: Vec<ChaosEvent> = plan
            .events
            .iter()
            .filter(|ev| {
                matches!(
                    ev,
                    ChaosEvent::NodeDrain { .. }
                        | ChaosEvent::RegionOutage { .. }
                        | ChaosEvent::RollingUpgrade { .. }
                        | ChaosEvent::RejoinFlap { .. }
                )
            })
            .cloned()
            .collect();
        for ev in &events {
            match *ev {
                ChaosEvent::NodeDrain { node, .. } | ChaosEvent::RejoinFlap { node, .. }
                    if node >= nodes =>
                {
                    return Err(FleetError::NoSuchNode(crate::pool::NoSuchNode {
                        node,
                        pool_len: nodes,
                    }));
                }
                ChaosEvent::RegionOutage { region, .. } if region >= regions.regions() => {
                    return Err(FleetError::BadRegion { region, regions: regions.regions() });
                }
                _ => {}
            }
        }
        Ok(MembershipSchedule { events, nodes, regions })
    }

    /// True when the plan schedules any membership change at all — the
    /// signal that flips the fleet report into region mode.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// The region map the schedule was built against.
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// Node `node`'s membership state for session id `session`. Pure:
    /// identical on every worker for the same inputs. Overlapping events
    /// resolve to the worst state (Decommissioned > Evacuated > Down >
    /// Draining > CatchingUp > Serving).
    pub fn state_at(&self, node: usize, session: u64) -> MembershipState {
        let mut state = MembershipState::Serving;
        let mut worst = |s: MembershipState| {
            if s > state {
                state = s;
            }
        };
        for ev in &self.events {
            match *ev {
                ChaosEvent::NodeDrain { node: n, from_session, until_session } if n == node => {
                    // Drain window, then as many sessions Evacuated as
                    // the drain lasted, then gone for good.
                    if session >= from_session && session < until_session {
                        worst(MembershipState::Draining);
                    } else if session >= until_session {
                        let width = until_session - from_session;
                        if session < until_session.saturating_add(width) {
                            worst(MembershipState::Evacuated);
                        } else {
                            worst(MembershipState::Decommissioned);
                        }
                    }
                }
                ChaosEvent::RegionOutage { region, from_session, until_session }
                    if self.regions.region_of(node) == region =>
                {
                    if session >= from_session && session < until_session {
                        worst(MembershipState::Down);
                    } else if session >= until_session
                        && session < until_session.saturating_add(CATCHUP_SESSIONS)
                    {
                        worst(MembershipState::CatchingUp);
                    }
                }
                ChaosEvent::RollingUpgrade { wave_sessions, from_session } => {
                    // Node i drains during wave i, catches up during
                    // wave i+1, serves again after.
                    let start = from_session.saturating_add(node as u64 * wave_sessions);
                    let end = start.saturating_add(wave_sessions);
                    if session >= start && session < end {
                        worst(MembershipState::Draining);
                    } else if session >= end && session < end.saturating_add(wave_sessions) {
                        worst(MembershipState::CatchingUp);
                    }
                }
                ChaosEvent::RejoinFlap {
                    node: n,
                    period_sessions,
                    from_session,
                    until_session,
                } if n == node && session >= from_session && session < until_session => {
                    // Alternating periods, the first one Down, each
                    // rejoin period CatchingUp (a flapper never gets
                    // back to clean Serving inside its window).
                    let period = (session - from_session) / period_sessions;
                    if period.is_multiple_of(2) {
                        worst(MembershipState::Down);
                    } else {
                        worst(MembershipState::CatchingUp);
                    }
                }
                _ => {}
            }
        }
        state
    }

    /// True when a session placed on `node` at id `session` would be in
    /// flight exactly as the node leaves a startable state: the previous
    /// session id could start, this one cannot, and the state is `Down`
    /// (a crash, not a drain — drains checkpoint voluntarily). The
    /// executor turns this into a mid-offload death and a checkpoint
    /// migration.
    pub fn in_flight_death(&self, node: usize, session: u64) -> bool {
        session > 0
            && self.state_at(node, session) == MembershipState::Down
            && self.state_at(node, session - 1).can_start()
    }

    /// Number of pool shards the schedule covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_chaos::ChaosPlan;

    fn schedule(events: Vec<ChaosEvent>, nodes: usize, regions: u32) -> MembershipSchedule {
        let mut plan = ChaosPlan::empty();
        plan.events = events;
        MembershipSchedule::build(&plan, nodes, RegionMap::new(regions, nodes).unwrap()).unwrap()
    }

    #[test]
    fn states_order_by_severity_and_name_stably() {
        assert!(MembershipState::Decommissioned > MembershipState::Evacuated);
        assert!(MembershipState::Evacuated > MembershipState::Down);
        assert!(MembershipState::Down > MembershipState::Draining);
        assert!(MembershipState::Draining > MembershipState::CatchingUp);
        assert!(MembershipState::CatchingUp > MembershipState::Serving);
        for s in [
            MembershipState::Serving,
            MembershipState::CatchingUp,
            MembershipState::Draining,
            MembershipState::Down,
            MembershipState::Evacuated,
            MembershipState::Decommissioned,
        ] {
            assert!(!s.as_str().is_empty());
        }
        assert!(MembershipState::Draining.can_start());
        assert!(MembershipState::CatchingUp.can_start());
        assert!(!MembershipState::Down.can_start());
        assert!(!MembershipState::Evacuated.can_start());
        assert!(!MembershipState::Decommissioned.can_start());
    }

    #[test]
    fn node_drain_walks_the_planned_lifecycle() {
        let s = schedule(
            vec![ChaosEvent::NodeDrain { node: 1, from_session: 2, until_session: 5 }],
            4,
            1,
        );
        assert_eq!(s.state_at(1, 1), MembershipState::Serving);
        assert_eq!(s.state_at(1, 2), MembershipState::Draining);
        assert_eq!(s.state_at(1, 4), MembershipState::Draining);
        assert_eq!(s.state_at(1, 5), MembershipState::Evacuated);
        assert_eq!(s.state_at(1, 7), MembershipState::Evacuated);
        assert_eq!(s.state_at(1, 8), MembershipState::Decommissioned);
        // Other nodes untouched.
        assert_eq!(s.state_at(0, 3), MembershipState::Serving);
        assert!(s.has_events());
    }

    #[test]
    fn region_outage_downs_the_whole_region_then_catches_up() {
        let s = schedule(
            vec![ChaosEvent::RegionOutage { region: 0, from_session: 4, until_session: 8 }],
            4,
            2,
        );
        // Region 0 = nodes 0 and 2 under round-robin.
        for node in [0, 2] {
            assert_eq!(s.state_at(node, 3), MembershipState::Serving);
            assert_eq!(s.state_at(node, 4), MembershipState::Down);
            assert_eq!(s.state_at(node, 7), MembershipState::Down);
            assert_eq!(s.state_at(node, 8), MembershipState::CatchingUp);
            assert_eq!(s.state_at(node, 8 + CATCHUP_SESSIONS - 1), MembershipState::CatchingUp);
            assert_eq!(s.state_at(node, 8 + CATCHUP_SESSIONS), MembershipState::Serving);
        }
        // Region 1 never notices.
        for node in [1, 3] {
            for sess in 0..12 {
                assert_eq!(s.state_at(node, sess), MembershipState::Serving);
            }
        }
        // The transition session is an in-flight death on region 0 only.
        assert!(s.in_flight_death(0, 4));
        assert!(s.in_flight_death(2, 4));
        assert!(!s.in_flight_death(0, 5), "already down at 4");
        assert!(!s.in_flight_death(1, 4));
    }

    #[test]
    fn rolling_upgrade_staggers_one_node_per_wave() {
        let s =
            schedule(vec![ChaosEvent::RollingUpgrade { wave_sessions: 3, from_session: 2 }], 4, 1);
        // Node 0: drains [2,5), catches up [5,8), serves after.
        assert_eq!(s.state_at(0, 1), MembershipState::Serving);
        assert_eq!(s.state_at(0, 2), MembershipState::Draining);
        assert_eq!(s.state_at(0, 5), MembershipState::CatchingUp);
        assert_eq!(s.state_at(0, 8), MembershipState::Serving);
        // Node 2: drains [8,11).
        assert_eq!(s.state_at(2, 7), MembershipState::Serving);
        assert_eq!(s.state_at(2, 8), MembershipState::Draining);
        assert_eq!(s.state_at(2, 11), MembershipState::CatchingUp);
        // Never more than one node draining at once.
        for sess in 0..20 {
            let draining =
                (0..4).filter(|&n| s.state_at(n, sess) == MembershipState::Draining).count();
            assert!(draining <= 1, "session {sess}: {draining} nodes draining");
        }
    }

    #[test]
    fn rejoin_flap_alternates_down_and_catching_up() {
        let s = schedule(
            vec![ChaosEvent::RejoinFlap {
                node: 3,
                period_sessions: 2,
                from_session: 2,
                until_session: 10,
            }],
            4,
            1,
        );
        assert_eq!(s.state_at(3, 1), MembershipState::Serving);
        assert_eq!(s.state_at(3, 2), MembershipState::Down);
        assert_eq!(s.state_at(3, 3), MembershipState::Down);
        assert_eq!(s.state_at(3, 4), MembershipState::CatchingUp);
        assert_eq!(s.state_at(3, 5), MembershipState::CatchingUp);
        assert_eq!(s.state_at(3, 6), MembershipState::Down);
        assert_eq!(s.state_at(3, 10), MembershipState::Serving);
        assert!(s.in_flight_death(3, 2));
        assert!(s.in_flight_death(3, 6), "the second dive is in-flight again");
    }

    #[test]
    fn overlapping_events_resolve_to_the_worst_state() {
        let s = schedule(
            vec![
                ChaosEvent::NodeDrain { node: 0, from_session: 0, until_session: 6 },
                ChaosEvent::RegionOutage { region: 0, from_session: 2, until_session: 4 },
            ],
            4,
            2,
        );
        assert_eq!(s.state_at(0, 1), MembershipState::Draining);
        assert_eq!(s.state_at(0, 2), MembershipState::Down, "outage beats drain");
        assert_eq!(s.state_at(0, 5), MembershipState::Draining, "drain resumes after");
    }

    #[test]
    fn build_rejects_bad_regions_and_nodes() {
        let mut plan = ChaosPlan::empty();
        plan.events =
            vec![ChaosEvent::RegionOutage { region: 3, from_session: 0, until_session: 4 }];
        let err = MembershipSchedule::build(&plan, 4, RegionMap::new(2, 4).unwrap()).unwrap_err();
        assert!(matches!(err, FleetError::BadRegion { region: 3, regions: 2 }));
        plan.events = vec![ChaosEvent::NodeDrain { node: 9, from_session: 0, until_session: 4 }];
        assert!(MembershipSchedule::build(&plan, 4, RegionMap::new(1, 4).unwrap()).is_err());
        // An empty plan builds a no-event schedule.
        let empty =
            MembershipSchedule::build(&ChaosPlan::empty(), 4, RegionMap::new(1, 4).unwrap())
                .unwrap();
        assert!(!empty.has_events());
        assert_eq!(empty.state_at(0, 0), MembershipState::Serving);
    }
}
