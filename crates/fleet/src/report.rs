//! Fleet-wide aggregation: throughput, latency percentiles, offload
//! totals, and per-node utilization, with a JSON export.
//!
//! The report splits into a **simulated** subset (a pure function of the
//! fleet config — identical for any worker count) and wall-clock fields
//! (`wall_secs`, `wall_throughput`), which measure the host machine.
//! [`FleetReport::simulated_value`] serializes only the former; the
//! determinism tests compare those byte-for-byte across worker counts.

use serde_json::Value;
use tinman_sim::SimDuration;

use crate::pool::NodePool;
use crate::session::SessionOutcome;
use crate::spec::FleetConfig;

/// Latency distribution over the successful sessions (simulated time,
/// backoff included).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median (nearest-rank).
    pub p50: SimDuration,
    /// 95th percentile (nearest-rank).
    pub p95: SimDuration,
    /// 99th percentile (nearest-rank).
    pub p99: SimDuration,
}

impl LatencyStats {
    /// Folds an ascending-sorted latency slice into `{mean, p50, p95,
    /// p99}` using nearest-rank percentiles. An empty slice yields all
    /// zeros. Callers must pre-sort; this does not check.
    pub fn from_sorted(sorted: &[SimDuration]) -> LatencyStats {
        if sorted.is_empty() {
            return LatencyStats {
                mean: SimDuration::ZERO,
                p50: SimDuration::ZERO,
                p95: SimDuration::ZERO,
                p99: SimDuration::ZERO,
            };
        }
        let total: u64 = sorted.iter().map(|d| d.as_nanos()).sum();
        let nearest = |q: u64| {
            // Nearest-rank: the ceil(q/100 * n)-th smallest, 1-indexed.
            let n = sorted.len() as u64;
            let rank = (q * n).div_ceil(100).max(1);
            sorted[(rank - 1) as usize]
        };
        LatencyStats {
            mean: SimDuration::from_nanos(total / sorted.len() as u64),
            p50: nearest(50),
            p95: nearest(95),
            p99: nearest(99),
        }
    }
}

/// One trusted node's share of the run.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// Shard index.
    pub node: usize,
    /// Host name.
    pub name: String,
    /// Health at the end of the run.
    pub health: &'static str,
    /// Sessions this node served to completion.
    pub sessions: u64,
    /// Total simulated busy time (sum of served-session latencies).
    pub busy: SimDuration,
    /// `busy / sim_makespan`: 1.0 for the busiest node.
    pub utilization: f64,
    /// Sessions (on the session-id axis) this node's circuit breaker
    /// spent Closed. Zero outside chaos runs.
    pub breaker_closed: u64,
    /// Sessions the breaker spent Open (placements skipped).
    pub breaker_open: u64,
    /// Sessions the breaker spent HalfOpen (probing).
    pub breaker_half_open: u64,
}

/// The aggregated result of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Sessions driven.
    pub sessions: u64,
    /// Sessions that completed their workload successfully.
    pub ok: u64,
    /// Sessions that exhausted every placement.
    pub failed: u64,
    /// Placements retried fleet-wide (`attempts - sessions` for the
    /// sessions that eventually ran somewhere).
    pub failovers: u64,
    /// Placements tried fleet-wide.
    pub attempts: u64,
    /// Sessions that failed at least one placement but still completed.
    pub success_after_retry: u64,
    /// Checkpoint/replay resumptions fleet-wide (chaos runs only).
    pub replays: u64,
    /// Sessions that degraded to a placeholder-only fail-closed outcome.
    pub fail_closed: u64,
    /// Unique payload-replacement deliveries origin servers accepted.
    pub deliveries: u64,
    /// Re-sent deliveries origin-server dedup suppressed (exactly-once
    /// evidence: `deliveries` counts each payload once no matter how many
    /// replays re-sent it).
    pub duplicate_deliveries: u64,
    /// Cor bytes found on device hosts by post-run residue scans. The
    /// fail-closed invariant demands zero; reported so tests can check.
    pub residue_violations: u64,
    /// Vault recoveries the durability audits ran, fleet-wide.
    pub vault_recoveries: u64,
    /// Torn WAL tails those recoveries truncated away.
    pub torn_tail_repairs: u64,
    /// Lost-cor incidents (recovered store diverged from its
    /// committed-prefix reference). Acceptance bar: zero.
    pub lost_cors: u64,
    /// Sessions served from a stale vault replica. Acceptance bar: zero —
    /// cor-aware failover catches replicas up or fails closed instead.
    pub stale_serves: u64,
    /// LSNs anti-entropy replayed to lagging replicas, fleet-wide.
    pub vault_catchup_lsns: u64,
    /// Session secrets found in vault durable bytes (node side; expected
    /// positive under chaos — the scan has to actually bite).
    pub wal_plaintexts: u64,
    /// Session secrets found in vault bytes *and* on a device surface.
    /// Acceptance bar: zero.
    pub wal_device_leaks: u64,
    /// Sessions the tenant declassification policy engine refused before
    /// any attempt ran (tenancy runs only; each failed closed with
    /// reason `policy_denied`).
    pub policy_denials: u64,
    /// Sealed vault blobs a foreign tenant's keyring authenticated.
    /// Acceptance bar: zero — tenant key hierarchies are disjoint.
    pub cross_tenant_residue: u64,
    /// Placements refused because the node failed the taint-engine
    /// attestation challenge (tenancy runs only).
    pub unattested_refusals: u64,
    /// Sessions that paid a mid-session tenant key rotation (re-sealed
    /// their vault bytes under the new epoch).
    pub tenant_key_rotations: u64,
    /// Mid-session mobility handoffs applied fleet-wide (topology runs
    /// only — zero on flat fleets).
    pub handoffs: u64,
    /// Untrusted-wire segments whose source the NAT gateways rewrote.
    pub nat_rewrites: u64,
    /// NAT bindings transparently re-punched after handoffs.
    pub nat_rebinds: u64,
    /// DNS lookups that failed closed inside outage windows.
    pub dns_faults: u64,
    /// Segments dropped by routing (router down / firewall deny) —
    /// every one a fail-closed refusal, never a leak.
    pub route_drops: u64,
    /// Live migrations fleet-wide: checkpointed hand-offs of in-flight
    /// guests from draining or dying nodes to peers (region runs only).
    pub migrations: u64,
    /// The subset of `migrations` triggered by planned drains.
    pub evacuations: u64,
    /// Sessions ultimately served outside their home region.
    pub region_failovers: u64,
    /// Cor bytes found on source-node heaps after migration scrubs.
    /// Acceptance bar: zero.
    pub migration_residue: u64,
    /// Sessions that failed closed with reason `no_region`: after a
    /// migration, no attested, caught-up, policy-admissible target
    /// existed inside the deadline.
    pub no_region_kills: u64,
    /// True when this run used regions or membership events; gates the
    /// region keys in [`FleetReport::simulated_value`] so flat runs keep
    /// byte-identical reports. Set by the scheduler, not `aggregate`.
    pub region_mode: bool,
    /// Guests the guard killed for exhausting a budget. Each kill scrubbed
    /// its node heap and failed the session closed.
    pub guest_kills: u64,
    /// Sessions guard admission shed with reason `overloaded` before any
    /// attempt ran.
    pub shed_sessions: u64,
    /// Guest kills by exhausted budget: `[fuel, heap, depth, dsm,
    /// deadline]` (the two DSM flavors share the `dsm` column).
    pub budget_exhaustions: [u64; 5],
    /// Client→node execution migrations, total.
    pub offloads: u64,
    /// Method invocations on trusted nodes, total.
    pub node_methods: u64,
    /// Method invocations on clients, total.
    pub client_methods: u64,
    /// DSM synchronizations, total.
    pub dsm_syncs: u64,
    /// Client battery energy, microjoules, total.
    pub energy_uj: u64,
    /// Client radio bytes sent, total.
    pub tx_bytes: u64,
    /// Client radio bytes received, total.
    pub rx_bytes: u64,
    /// Latency distribution over successful sessions.
    pub latency: LatencyStats,
    /// Shard count the config asked for — may exceed what the label
    /// space supports (see [`NodePool::max_nodes`]).
    pub nodes_requested: u64,
    /// Shard count the pool actually built. When this is below
    /// `nodes_requested`, the pool clamped (loudly — the scheduler logs
    /// it and emits a `pool_clamp` trace event).
    pub nodes_effective: u64,
    /// Per-shard breakdown, in shard order.
    pub per_node: Vec<NodeReport>,
    /// Simulated makespan: the busiest node's busy time.
    pub sim_makespan: SimDuration,
    /// `ok / sim_makespan` in sessions per simulated second.
    pub sim_throughput: f64,
    /// Worker threads used (wall-clock only).
    pub workers: usize,
    /// Host wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// `ok / wall_secs` in sessions per wall-clock second.
    pub wall_throughput: f64,
    /// Every session's outcome, sorted by session id.
    pub outcomes: Vec<SessionOutcome>,
}

impl FleetReport {
    /// Folds sorted outcomes into the aggregate. `outcomes` must already
    /// be sorted by session id (the scheduler guarantees it).
    pub fn aggregate(
        cfg: &FleetConfig,
        pool: &NodePool,
        outcomes: Vec<SessionOutcome>,
        wall_secs: f64,
    ) -> FleetReport {
        let ok = outcomes.iter().filter(|o| o.success).count() as u64;
        let failed = outcomes.len() as u64 - ok;
        let attempts: u64 = outcomes.iter().map(|o| u64::from(o.attempts)).sum();
        // Shed sessions never attempted at all (attempts == 0), so the
        // per-session failover count saturates rather than underflows.
        let failovers: u64 = outcomes.iter().map(|o| u64::from(o.attempts).saturating_sub(1)).sum();

        let mut node_sessions = vec![0u64; pool.len()];
        let mut node_busy = vec![SimDuration::ZERO; pool.len()];
        for o in outcomes.iter().filter(|o| o.success) {
            if let Some(n) = o.node {
                node_sessions[n] += 1;
                node_busy[n] += o.latency;
            }
        }
        let sim_makespan = node_busy.iter().copied().max().unwrap_or(SimDuration::ZERO);
        let per_node = (0..pool.len())
            .map(|n| {
                let shard = pool.shard(n);
                NodeReport {
                    node: n,
                    name: shard.name.clone(),
                    health: shard.health().as_str(),
                    sessions: node_sessions[n],
                    busy: node_busy[n],
                    utilization: if sim_makespan == SimDuration::ZERO {
                        0.0
                    } else {
                        node_busy[n].as_nanos() as f64 / sim_makespan.as_nanos() as f64
                    },
                    breaker_closed: 0,
                    breaker_open: 0,
                    breaker_half_open: 0,
                }
            })
            .collect();

        let mut ok_latencies: Vec<SimDuration> =
            outcomes.iter().filter(|o| o.success).map(|o| o.latency).collect();
        ok_latencies.sort_unstable();

        let sum = |f: fn(&SessionOutcome) -> u64| -> u64 { outcomes.iter().map(f).sum() };
        FleetReport {
            sessions: outcomes.len() as u64,
            ok,
            failed,
            failovers,
            attempts,
            success_after_retry: outcomes.iter().filter(|o| o.success && o.attempts > 1).count()
                as u64,
            replays: sum(|o| u64::from(o.replays)),
            fail_closed: outcomes.iter().filter(|o| o.fail_closed).count() as u64,
            deliveries: sum(|o| o.deliveries),
            duplicate_deliveries: sum(|o| o.duplicate_deliveries),
            residue_violations: sum(|o| o.residue_violations),
            vault_recoveries: sum(|o| o.vault_recoveries),
            torn_tail_repairs: sum(|o| o.torn_tail_repairs),
            lost_cors: sum(|o| o.lost_cors),
            stale_serves: sum(|o| o.stale_serves),
            vault_catchup_lsns: sum(|o| o.vault_catchup_lsns),
            wal_plaintexts: sum(|o| o.wal_plaintexts),
            wal_device_leaks: sum(|o| o.wal_device_leaks),
            policy_denials: sum(|o| o.policy_denials),
            cross_tenant_residue: sum(|o| o.cross_tenant_residue),
            unattested_refusals: sum(|o| o.unattested_refusals),
            tenant_key_rotations: sum(|o| o.tenant_key_rotations),
            handoffs: sum(|o| o.handoffs),
            nat_rewrites: sum(|o| o.nat_rewrites),
            nat_rebinds: sum(|o| o.nat_rebinds),
            dns_faults: sum(|o| o.dns_faults),
            route_drops: sum(|o| o.route_drops),
            migrations: sum(|o| o.migrations),
            evacuations: sum(|o| o.evacuations),
            region_failovers: sum(|o| o.region_failovers),
            migration_residue: sum(|o| o.migration_residue),
            no_region_kills: outcomes.iter().filter(|o| o.no_region).count() as u64,
            region_mode: false,
            guest_kills: outcomes.iter().filter(|o| o.guest_kill.is_some()).count() as u64,
            shed_sessions: outcomes.iter().filter(|o| o.shed).count() as u64,
            budget_exhaustions: {
                let col = |c: &str| -> u64 {
                    outcomes
                        .iter()
                        .filter(|o| o.guest_kill.is_some_and(|r| r.column() == c))
                        .count() as u64
                };
                [col("fuel"), col("heap"), col("depth"), col("dsm"), col("deadline")]
            },
            offloads: sum(|o| o.offloads),
            node_methods: sum(|o| o.node_methods),
            client_methods: sum(|o| o.client_methods),
            dsm_syncs: sum(|o| o.dsm_syncs),
            energy_uj: sum(|o| o.energy_uj),
            tx_bytes: sum(|o| o.tx_bytes),
            rx_bytes: sum(|o| o.rx_bytes),
            latency: LatencyStats::from_sorted(&ok_latencies),
            nodes_requested: pool.requested_nodes() as u64,
            nodes_effective: pool.len() as u64,
            per_node,
            sim_makespan,
            sim_throughput: if sim_makespan == SimDuration::ZERO {
                0.0
            } else {
                ok as f64 / sim_makespan.as_secs_f64()
            },
            workers: cfg.workers,
            wall_secs,
            wall_throughput: if wall_secs > 0.0 { ok as f64 / wall_secs } else { 0.0 },
            outcomes,
        }
    }

    /// The deterministic subset: everything that is a pure function of
    /// the fleet config. Two runs of the same config — at any worker
    /// count — serialize this to identical bytes.
    pub fn simulated_value(&self) -> Value {
        let mut map: Vec<(String, Value)> = Vec::new();
        let mut put = |k: &str, v: Value| map.push((k.to_owned(), v));
        put("sessions", Value::U64(self.sessions));
        put("ok", Value::U64(self.ok));
        put("failed", Value::U64(self.failed));
        put("failovers", Value::U64(self.failovers));
        put("attempts", Value::U64(self.attempts));
        put("success_after_retry", Value::U64(self.success_after_retry));
        put("replays", Value::U64(self.replays));
        put("fail_closed", Value::U64(self.fail_closed));
        put("deliveries", Value::U64(self.deliveries));
        put("duplicate_deliveries", Value::U64(self.duplicate_deliveries));
        put("residue_violations", Value::U64(self.residue_violations));
        put("vault_recoveries", Value::U64(self.vault_recoveries));
        put("torn_tail_repairs", Value::U64(self.torn_tail_repairs));
        put("lost_cors", Value::U64(self.lost_cors));
        put("stale_serves", Value::U64(self.stale_serves));
        put("vault_catchup_lsns", Value::U64(self.vault_catchup_lsns));
        put("wal_plaintexts", Value::U64(self.wal_plaintexts));
        put("wal_device_leaks", Value::U64(self.wal_device_leaks));
        put("policy_denials", Value::U64(self.policy_denials));
        put("cross_tenant_residue", Value::U64(self.cross_tenant_residue));
        put("unattested_refusals", Value::U64(self.unattested_refusals));
        put("tenant_key_rotations", Value::U64(self.tenant_key_rotations));
        put("handoffs", Value::U64(self.handoffs));
        put("nat_rewrites", Value::U64(self.nat_rewrites));
        put("nat_rebinds", Value::U64(self.nat_rebinds));
        put("dns_faults", Value::U64(self.dns_faults));
        put("route_drops", Value::U64(self.route_drops));
        put("guest_kills", Value::U64(self.guest_kills));
        put("shed_sessions", Value::U64(self.shed_sessions));
        put(
            "budget_exhaustions",
            Value::Map(
                ["fuel", "heap", "depth", "dsm", "deadline"]
                    .iter()
                    .zip(self.budget_exhaustions)
                    .map(|(k, v)| ((*k).to_owned(), Value::U64(v)))
                    .collect(),
            ),
        );
        // Region keys only exist in region mode: flat configs must keep
        // serializing to exactly the pre-region bytes (pinned by the
        // golden-report tests).
        if self.region_mode {
            put("migrations", Value::U64(self.migrations));
            put("evacuations", Value::U64(self.evacuations));
            put("region_failovers", Value::U64(self.region_failovers));
            put("migration_residue", Value::U64(self.migration_residue));
            put("no_region_kills", Value::U64(self.no_region_kills));
        }
        put("offloads", Value::U64(self.offloads));
        put("node_methods", Value::U64(self.node_methods));
        put("client_methods", Value::U64(self.client_methods));
        put("dsm_syncs", Value::U64(self.dsm_syncs));
        put("energy_uj", Value::U64(self.energy_uj));
        put("tx_bytes", Value::U64(self.tx_bytes));
        put("rx_bytes", Value::U64(self.rx_bytes));
        put(
            "latency_ns",
            Value::Map(vec![
                ("mean".to_owned(), Value::U64(self.latency.mean.as_nanos())),
                ("p50".to_owned(), Value::U64(self.latency.p50.as_nanos())),
                ("p95".to_owned(), Value::U64(self.latency.p95.as_nanos())),
                ("p99".to_owned(), Value::U64(self.latency.p99.as_nanos())),
            ]),
        );
        put("nodes_requested", Value::U64(self.nodes_requested));
        put("nodes_effective", Value::U64(self.nodes_effective));
        put(
            "per_node",
            Value::Seq(
                self.per_node
                    .iter()
                    .map(|n| {
                        Value::Map(vec![
                            ("node".to_owned(), Value::U64(n.node as u64)),
                            ("name".to_owned(), Value::Str(n.name.clone())),
                            ("health".to_owned(), Value::Str(n.health.to_owned())),
                            ("sessions".to_owned(), Value::U64(n.sessions)),
                            ("busy_ns".to_owned(), Value::U64(n.busy.as_nanos())),
                            ("utilization".to_owned(), Value::F64(n.utilization)),
                            ("breaker_closed".to_owned(), Value::U64(n.breaker_closed)),
                            ("breaker_open".to_owned(), Value::U64(n.breaker_open)),
                            ("breaker_half_open".to_owned(), Value::U64(n.breaker_half_open)),
                        ])
                    })
                    .collect(),
            ),
        );
        put("sim_makespan_ns", Value::U64(self.sim_makespan.as_nanos()));
        put("sim_throughput", Value::F64(self.sim_throughput));
        Value::Map(map)
    }

    /// The full report: the simulated subset plus the wall-clock fields.
    pub fn to_value(&self) -> Value {
        let mut map = match self.simulated_value() {
            Value::Map(m) => m,
            _ => unreachable!("simulated_value always builds a map"),
        };
        map.push(("workers".to_owned(), Value::U64(self.workers as u64)));
        map.push(("wall_secs".to_owned(), Value::F64(self.wall_secs)));
        map.push(("wall_throughput".to_owned(), Value::F64(self.wall_throughput)));
        Value::Map(map)
    }

    /// Pretty-printed JSON of [`Self::to_value`].
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).unwrap_or_else(|_| "{}".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FaultPlan;

    fn outcome(id: u64, node: usize, latency_ms: u64) -> SessionOutcome {
        SessionOutcome {
            id,
            node: Some(node),
            attempts: 1,
            success: true,
            latency: SimDuration::from_millis(latency_ms),
            offloads: 2,
            node_methods: 10,
            client_methods: 5,
            dsm_syncs: 3,
            energy_uj: 1000,
            tx_bytes: 200,
            rx_bytes: 400,
            replays: 0,
            fail_closed: false,
            deliveries: 1,
            duplicate_deliveries: 0,
            residue_violations: 0,
            vault_recoveries: 0,
            torn_tail_repairs: 0,
            lost_cors: 0,
            stale_serves: 0,
            vault_catchup_lsns: 0,
            wal_plaintexts: 0,
            wal_device_leaks: 0,
            policy_denials: 0,
            cross_tenant_residue: 0,
            unattested_refusals: 0,
            tenant_key_rotations: 0,
            guest_kill: None,
            shed: false,
            handoffs: 0,
            nat_rewrites: 0,
            nat_rebinds: 0,
            dns_faults: 0,
            route_drops: 0,
            migrations: 0,
            evacuations: 0,
            region_failovers: 0,
            migration_residue: 0,
            no_region: false,
        }
    }

    #[test]
    fn aggregate_totals_and_percentiles() {
        let cfg = FleetConfig::new(4, 2);
        let pool = NodePool::new(2, 4, &FaultPlan::default()).unwrap();
        let outcomes = vec![
            outcome(0, 0, 100),
            outcome(1, 1, 200),
            outcome(2, 0, 300),
            SessionOutcome::failed(3, 3, SimDuration::from_millis(250)),
        ];
        let r = FleetReport::aggregate(&cfg, &pool, outcomes, 0.5);
        assert_eq!(r.sessions, 4);
        assert_eq!(r.ok, 3);
        assert_eq!(r.failed, 1);
        assert_eq!(r.failovers, 2, "the failed session burned two failovers");
        assert_eq!(r.offloads, 6);
        assert_eq!(r.latency.mean, SimDuration::from_millis(200));
        assert_eq!(r.latency.p50, SimDuration::from_millis(200));
        assert_eq!(r.latency.p99, SimDuration::from_millis(300));
        // Node 0 served 100+300ms, node 1 served 200ms.
        assert_eq!(r.sim_makespan, SimDuration::from_millis(400));
        assert!((r.per_node[0].utilization - 1.0).abs() < 1e-9);
        assert!((r.per_node[1].utilization - 0.5).abs() < 1e-9);
        assert_eq!(r.wall_throughput, 6.0);
    }

    #[test]
    fn region_keys_appear_only_in_region_mode() {
        let cfg = FleetConfig::new(1, 1);
        let pool = NodePool::new(1, 1, &FaultPlan::default()).unwrap();
        let mut r = FleetReport::aggregate(&cfg, &pool, vec![outcome(0, 0, 50)], 0.1);
        let flat = serde_json::to_string(&r.simulated_value()).unwrap();
        assert!(!flat.contains("\"migrations\""), "flat reports carry no region keys");
        r.region_mode = true;
        let region = serde_json::to_string(&r.simulated_value()).unwrap();
        for key in [
            "migrations",
            "evacuations",
            "region_failovers",
            "migration_residue",
            "no_region_kills",
        ] {
            assert!(region.contains(&format!("\"{key}\"")), "region mode carries {key}");
        }
    }

    #[test]
    fn simulated_value_excludes_wall_clock() {
        let cfg = FleetConfig::new(1, 8);
        let pool = NodePool::new(1, 1, &FaultPlan::default()).unwrap();
        let a = FleetReport::aggregate(&cfg, &pool, vec![outcome(0, 0, 50)], 0.1);
        let b = FleetReport::aggregate(&cfg, &pool, vec![outcome(0, 0, 50)], 9.9);
        assert_eq!(
            serde_json::to_string(&a.simulated_value()).unwrap(),
            serde_json::to_string(&b.simulated_value()).unwrap(),
            "wall clock must not leak into the simulated subset"
        );
        assert_ne!(
            serde_json::to_string(&a.to_value()).unwrap(),
            serde_json::to_string(&b.to_value()).unwrap()
        );
    }
}
