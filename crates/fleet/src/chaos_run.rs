//! The chaos scheduler: runs a fleet under a [`ChaosPlan`] with
//! fail-closed session recovery.
//!
//! This is the clean scheduler ([`crate::sched`]) plus four mechanisms:
//!
//! 1. **Fault arming** — before each attempt the plan is projected onto
//!    the `(node, session)` pair ([`session_faults`]) and translated into
//!    the session world's own fault hooks (`NetChaos` on the wire,
//!    `SyncFault` on the DSM engine). The projection is pure, so worker
//!    interleaving cannot change what any session experiences.
//! 2. **Circuit breaking** — placement consults a precomputed
//!    [`BreakerSchedule`] view instead of raw health flips: an Open
//!    breaker skips the node (fast failover), a HalfOpen view lets a
//!    deterministic probe through.
//! 3. **Checkpoint/replay** — a crashed attempt leaves its last completed
//!    DSM sync boundary behind as a checkpoint; the replay on a replica
//!    re-runs the deterministic session and is *credited* the
//!    checkpointed prefix, so recovered latency reflects resuming, not
//!    restarting. The per-session [`DeliveryLedger`] keeps TCP payload
//!    replacement exactly-once toward the origin server across replays.
//! 4. **Fail-closed enforcement** — a session that exhausts its attempts
//!    or its deadline budget degrades to a placeholder-only failure, and
//!    *every* attempt (crashed or not) is residue-scanned so the "no cor
//!    bytes on a device host" invariant is checked, not assumed.
//! 5. **Cor-aware durability** — every attempt runs a hermetic
//!    [`crate::vault_audit`] (WAL replay, projected crash, recovery,
//!    byte-compare), and a lagging vault replica must anti-entropy
//!    catch up — charged against the deadline — before serving, or the
//!    session fails closed with reason `"stale_replica"`. A session is
//!    never served from a stale store.

use std::time::Instant;

use tinman_chaos::{
    session_faults, BreakerSchedule, BreakerState, ChaosEvent, ChaosPlan, DeliveryLedger,
    SessionFaults, VaultCrashKind,
};
use tinman_core::runtime::{Mode, TinmanRuntime};
use tinman_core::RuntimeError;
use tinman_dsm::{DsmError, SyncFault};
use tinman_guard::KillReason;
use tinman_net::{Handoff, NetChaos};
use tinman_obs::TraceEvent;
use tinman_sim::{LinkProfile, SimDuration, SimTime, SplitMix64};
use tinman_tenant::rotation_cost;
use tinman_vault::{catch_up_cost, catch_up_within};

use crate::failure::{backoff_delay, degraded_link, FleetError, NodeHealth};
use crate::hostile::{build_hostile_world, fleet_policy, GuardSchedule};
use crate::membership::{MembershipSchedule, MembershipState};
use crate::pool::NodePool;
use crate::region::RegionMap;
use crate::report::FleetReport;
use crate::retry::{migration_policy, RetryBudget};
use crate::sched::{run_worker_pool, surface_clamp, FleetObs};
use crate::session::{
    base_link, build_session_world_net, expect_success, outcome_from_report, session_inputs,
    SessionNet, SessionOutcome,
};
use crate::spec::{build_session_specs, FleetConfig, SessionSpec};
use crate::tenancy::TenantSchedule;
use crate::vault_audit::{audit_session_vault, audit_session_vault_sealed, VaultAudit};

/// Translates a session's projected faults into the hermetic world's own
/// hooks. The DSM fault is installed even when inert (no windows): that
/// keeps checkpoint recording on for every chaos session, so traced and
/// untraced runs see identical replay credits.
pub fn apply_session_faults(rt: &mut TinmanRuntime, faults: &SessionFaults) {
    let at = |d: SimDuration| SimTime::ZERO + d;
    rt.world.set_chaos(NetChaos {
        loss_pct: faults.loss_pct,
        corrupt_pct: faults.corrupt_pct,
        extra_delay: faults.delay,
        flap: faults.flap.map(|(from, until)| (at(from), at(until))),
        partitions: if faults.partitioned {
            vec![(rt.phone_host(), rt.node_host())]
        } else {
            Vec::new()
        },
        seed: faults.dice_seed,
    });
    // Routed-internet faults. Router/NAT/DNS arming is gated on the world
    // actually having a topology — arming them would otherwise *create*
    // one (`topo_mut` auto-enables), silently changing a flat session.
    if rt.world.topology_enabled() {
        if !faults.router_outages.is_empty() {
            rt.world.set_all_router_outages(
                faults.router_outages.iter().map(|&(f, u)| (at(f), at(u))).collect(),
            );
        }
        for &flush in &faults.nat_flushes {
            rt.world.schedule_nat_flush(at(flush));
        }
        if !faults.dns_outages.is_empty() {
            rt.world
                .set_dns_outages(faults.dns_outages.iter().map(|&(f, u)| (at(f), at(u))).collect());
        }
    }
    // Handoffs are meaningful on any world (they swap the radio profile);
    // on a routed world they additionally rebind the NAT.
    for h in &faults.handoffs {
        let link = if h.to_3g { LinkProfile::three_g() } else { LinkProfile::wifi() };
        rt.world.schedule_handoff(
            rt.phone_host(),
            Handoff { at: at(h.at), link, blackout: h.blackout, rebind_nat: true, to_subnet: None },
        );
    }
    let mut windows: Vec<(SimTime, SimTime)> = Vec::new();
    if let Some(crash) = faults.crash {
        windows.push((at(crash), SimTime::MAX));
    }
    for &(from, until) in &faults.sync_windows {
        windows.push((at(from), at(until)));
    }
    // A handoff blackout also blinds the DSM channel (DSM bytes ride the
    // same radio, but its transfers are charged outside `NetWorld`), so
    // each blackout is projected into a sync-timeout window: a sync that
    // lands inside it times out and the runtime's bounded re-sync retry
    // must carry the session across or fail it closed.
    for h in &faults.handoffs {
        if h.blackout > SimDuration::ZERO {
            windows.push((at(h.at), at(h.at + h.blackout)));
        }
    }
    rt.set_dsm_fault(SyncFault { windows });
}

/// One `chaos_inject` event per armed fault kind, on the session's track.
fn emit_fault_events(
    faults: &SessionFaults,
    node: usize,
    session: u64,
    penalty: SimDuration,
    obs: &FleetObs,
) {
    let t = SimTime::ZERO + penalty;
    let emit = |kind: &'static str| {
        obs.trace.emit_on(session, t, TraceEvent::ChaosInject { kind, node: node as u64, session });
    };
    if faults.crash.is_some() {
        emit("crash");
    }
    if faults.partitioned {
        emit("partition");
    }
    if !faults.sync_windows.is_empty() {
        emit("sync_timeout");
    }
    if faults.loss_pct > 0 {
        emit("packet_loss");
    }
    if faults.corrupt_pct > 0 {
        emit("packet_corrupt");
    }
    if faults.delay > SimDuration::ZERO {
        emit("packet_delay");
    }
    if faults.flap.is_some() {
        emit("link_flap");
    }
    if let Some(kind) = faults.vault_crash {
        emit(match kind {
            VaultCrashKind::MidCommit => "vault_mid_commit",
            VaultCrashKind::TornTail => "vault_torn_tail",
            VaultCrashKind::Compaction => "vault_compaction",
        });
    }
    if faults.replica_lag > 0 {
        emit("replica_lag");
    }
    if !faults.router_outages.is_empty() {
        emit("router_crash");
    }
    if !faults.nat_flushes.is_empty() {
        emit("nat_table_flush");
    }
    if !faults.dns_outages.is_empty() {
        emit("dns_outage");
    }
    if !faults.handoffs.is_empty() {
        emit("handoff_storm");
    }
}

fn emit_failover(
    obs: &FleetObs,
    session: u64,
    node: usize,
    i: usize,
    penalty: SimDuration,
    delay: SimDuration,
) {
    if !obs.trace.is_enabled() {
        return;
    }
    let t = SimTime::ZERO + penalty;
    obs.trace.emit_on(
        session,
        t,
        TraceEvent::FleetFailover { session, node: node as u64, attempt: i as u32 },
    );
    obs.trace.emit_on(
        session,
        t,
        TraceEvent::FleetBackoff { session, attempt: i as u32, delay_ns: delay.as_nanos() },
    );
}

/// Runs one session under the plan: walk the replica order, skip nodes
/// whose breaker is Open (or whose static health is Down), arm the
/// projected faults, run, and on a mid-session failure retry on the next
/// replica with a checkpoint credit — until success, attempt exhaustion,
/// or the deadline budget runs out. Exhaustion is a *fail-closed*
/// outcome: the device keeps only placeholders; no retry path ever
/// relaxes that.
///
/// With tenancy enabled ([`TenantSchedule::enabled`]) three more gates
/// apply, all deterministic replays: the declassification policy can
/// refuse the session before any attempt (`policy_denied`), unattested
/// nodes are skipped in the replica walk, and a mid-session key
/// rotation charges its re-seal cost against the deadline — a
/// compromised key that cannot afford the re-seal fails closed with
/// reason `revoked_key` rather than ever serving under the old epoch.
///
/// With a live [`MembershipSchedule`] the walk becomes region-aware:
/// placement follows [`RegionMap::order`] (home region first), nodes
/// outside a startable membership state are skipped, a *CatchingUp*
/// rejoiner charges vault anti-entropy to the acked watermark before
/// serving, and a *Draining* (or mid-outage dying) node checkpoints the
/// in-flight guest at a DSM sync point — the checkpoint is
/// fidelity-checked ([`tinman_core::NodeCheckpoint::restore`]), its
/// scrub receipt audited, and the session resumes on the next admissible
/// peer with the checkpoint instant as replay credit. A session that
/// migrates but finds no admissible target within its deadline fails
/// closed with reason `no_region`.
#[allow(clippy::too_many_arguments)]
pub fn execute_with_chaos(
    cfg: &FleetConfig,
    pool: &NodePool,
    spec: &SessionSpec,
    plan: &ChaosPlan,
    schedule: &BreakerSchedule,
    guard: &GuardSchedule,
    tenancy: &TenantSchedule,
    membership: &MembershipSchedule,
    obs: &FleetObs,
) -> SessionOutcome {
    // Load shedding: when the guard schedule says this session's budget
    // reservation does not fit its node, it is shed before any attempt —
    // a deterministic, breaker-style fail-closed outcome with reason
    // `overloaded`.
    if guard.shed(spec.id) {
        let node = pool.place(spec.placement_key());
        obs.metrics.incr("guard.sheds");
        obs.metrics.incr("chaos.fail_closed");
        if obs.trace.is_enabled() {
            obs.trace.emit_on(
                spec.id,
                SimTime::ZERO,
                TraceEvent::SessionShed {
                    session: spec.id,
                    node: node as u64,
                    reason: "overloaded",
                },
            );
            obs.trace.emit_on(
                spec.id,
                SimTime::ZERO,
                TraceEvent::FailClosed { session: spec.id, reason: "overloaded" },
            );
        }
        let mut out = SessionOutcome::failed(spec.id, 0, SimDuration::ZERO);
        out.fail_closed = true;
        out.shed = true;
        return out;
    }
    // Tenant declassification policy: a session the engine refused
    // fails closed before any placement — its cors never leave the
    // device toward the denied domain.
    if let Some(deny_reason) = tenancy.denial(spec.id) {
        obs.metrics.incr("tenant.policy_denials");
        obs.metrics.incr("chaos.fail_closed");
        if obs.trace.is_enabled() {
            obs.trace.emit_on(
                spec.id,
                SimTime::ZERO,
                TraceEvent::TenantPolicyDecision {
                    session: spec.id,
                    tenant: spec.tenant,
                    allowed: false,
                    reason: deny_reason,
                },
            );
            obs.trace.emit_on(
                spec.id,
                SimTime::ZERO,
                TraceEvent::FailClosed { session: spec.id, reason: "policy_denied" },
            );
        }
        let mut out = SessionOutcome::failed(spec.id, 0, SimDuration::ZERO);
        out.fail_closed = true;
        out.policy_denials = 1;
        return out;
    }
    // Region-salted placement: home-region nodes first, then foreign
    // regions in rotation. Identity order on a flat fleet.
    let regions = membership.regions();
    let order = regions.order(pool, spec.placement_key());
    let home = regions.home_region(spec.placement_key());
    let mut penalty = SimDuration::ZERO;
    let mut attempts = 0u32;
    let mut replays = 0u32;
    let mut ledger = DeliveryLedger::new();
    let mut residue_violations = 0u64;
    // Topology-layer availability columns, accumulated across attempts.
    let mut net_handoffs = 0u64;
    let mut net_nat_rewrites = 0u64;
    let mut net_nat_rebinds = 0u64;
    let mut net_dns_faults = 0u64;
    let mut net_route_drops = 0u64;
    // Durability-audit totals across attempts, folded into the outcome.
    let mut vault_totals = VaultAudit::default();
    let mut catchup_lsns = 0u64;
    let mut stale_blocked = false;
    // Session time already covered by completed DSM syncs on a failed
    // attempt — the replay resumes from this boundary.
    let mut credit = SimDuration::ZERO;
    let mut ran_before = false;
    let mut deadline_hit = false;
    let mut guest_kill: Option<KillReason> = None;
    // Tenancy state: the plan's key faults for this (tenant, session),
    // attestation-refusal count, and whether the rotation re-seal has
    // been paid (once per session).
    let tf = tenancy.faults(spec);
    let mut unattested_refusals = 0u64;
    let mut rotation_paid = false;
    let mut revoked_blocked = false;
    // Live-migration state: checkpointed hand-offs completed so far, how
    // many were planned evacuations, residue found by the migration
    // scrub audit, and the (source node, wire bytes) of a checkpoint
    // waiting to resume on the next admissible peer.
    let mut migrations = 0u64;
    let mut evacuations = 0u64;
    let mut migration_residue = 0u64;
    let mut migration_idx = 0u64;
    let mut pending_migration: Option<(usize, u64)> = None;

    for (i, &node) in order.iter().take(cfg.max_attempts as usize).enumerate() {
        if penalty > plan.deadline {
            deadline_hit = true;
            break;
        }
        attempts += 1;
        obs.metrics.incr("fleet.attempts");
        if i > 0 {
            obs.metrics.incr("fleet.failovers");
        }
        // A vanished shard (stale order naming a decommissioned index)
        // is a skipped attempt, never a panic.
        let shard = match pool.try_shard(node) {
            Ok(s) => s,
            Err(_) => {
                let delay = backoff_delay(cfg.backoff, i as u32);
                penalty += delay;
                obs.metrics.add("fleet.backoff_ns", delay.as_nanos());
                emit_failover(obs, spec.id, node, i, penalty, delay);
                continue;
            }
        };
        let health = shard.health();
        let breaker = schedule.view(node, spec.id);
        if !health.can_serve() || breaker == BreakerState::Open {
            if breaker == BreakerState::Open {
                obs.metrics.incr("chaos.breaker_skips");
            }
            let delay = backoff_delay(cfg.backoff, i as u32);
            penalty += delay;
            obs.metrics.add("fleet.backoff_ns", delay.as_nanos());
            emit_failover(obs, spec.id, node, i, penalty, delay);
            continue;
        }
        // Membership gate: a node outside a startable state admits
        // nothing — unless this is the exact session id the node fell
        // over on (`in_flight_death`): that session is already in flight
        // when the node dies mid-offload, so it runs, dies at its DSM
        // sync point, and migrates from its checkpoint.
        let mstate = membership.state_at(node, spec.id);
        let dying = membership.in_flight_death(node, spec.id);
        if !mstate.can_start() && !dying {
            obs.metrics.incr("fleet.region.membership_skips");
            let delay = backoff_delay(cfg.backoff, i as u32);
            penalty += delay;
            obs.metrics.add("fleet.backoff_ns", delay.as_nanos());
            emit_failover(obs, spec.id, node, i, penalty, delay);
            continue;
        }
        // Attestation gate: a node that cannot prove it runs the full
        // four-class taint engine is refused tenant plaintext placement
        // — the walk moves on to the next replica.
        if tenancy.enabled() && !tenancy.attested(node) {
            unattested_refusals += 1;
            obs.metrics.incr("tenant.unattested_refusals");
            let delay = backoff_delay(cfg.backoff, i as u32);
            penalty += delay;
            obs.metrics.add("fleet.backoff_ns", delay.as_nanos());
            if obs.trace.is_enabled() {
                obs.trace.emit_on(
                    spec.id,
                    SimTime::ZERO + penalty,
                    TraceEvent::AttestationRefused {
                        session: spec.id,
                        tenant: spec.tenant,
                        node: node as u64,
                    },
                );
            }
            emit_failover(obs, spec.id, node, i, penalty, delay);
            continue;
        }
        let faults = session_faults(plan, node, spec.id, spec.seed);
        let base = base_link(spec.link);
        let link = if health == NodeHealth::Degraded { degraded_link(&base) } else { base };
        if obs.trace.is_enabled() {
            obs.trace.emit_on(
                spec.id,
                SimTime::ZERO + penalty,
                TraceEvent::FleetPlacement { session: spec.id, node: node as u64 },
            );
            emit_fault_events(&faults, node, spec.id, penalty, obs);
        }
        // Admission control: wall-clock flow only, no simulated effect.
        let _permit = shard.acquire();
        let shard_labels = (shard.label_start, shard.label_end);
        // Routed sessions get bounded re-sync retries: a handoff blackout
        // mid-offload must be survivable, and exhaustion fails closed as
        // a guest kill. Flat sessions keep the historical zero-retry
        // behaviour byte-for-byte.
        let net =
            SessionNet { topology: cfg.topology, resync_retries: if cfg.topology { 3 } else { 0 } };
        let built = match faults.hostile_guest {
            Some(kind) => build_hostile_world(spec, kind, shard_labels, link, &obs.trace),
            None => build_session_world_net(spec, shard_labels, link, &obs.trace, net),
        };
        let mut world = match built {
            Ok(w) => w,
            Err(_) => {
                let delay = backoff_delay(cfg.backoff, i as u32);
                penalty += delay;
                obs.metrics.add("fleet.backoff_ns", delay.as_nanos());
                emit_failover(obs, spec.id, node, i, penalty, delay);
                continue;
            }
        };
        // On a hostile run every session — benign or not — executes under
        // the guard; hostile worlds arm it themselves.
        if guard.armed() && faults.hostile_guest.is_none() {
            world.rt.set_guard(fleet_policy());
        }
        // Cor-aware failover: when this node's vault replica lags the
        // primary, the session's cor writes (one LSN per secret) must be
        // covered before it is served. Anti-entropy replays the missing
        // LSNs, charged against the deadline budget; if the budget cannot
        // absorb the catch-up the session degrades fail-closed — it is
        // never served from a stale store.
        if faults.replica_lag > 0 {
            let needed = world.secrets.len() as u64;
            let missing = faults.replica_lag.min(needed);
            if missing > 0 {
                let cost = catch_up_cost(missing);
                if penalty + cost > plan.deadline {
                    obs.metrics.incr("vault.stale_blocked");
                    stale_blocked = true;
                    break;
                }
                penalty += cost;
                catchup_lsns += missing;
                obs.metrics.incr("vault.catch_ups");
                obs.metrics.add("vault.catchup_lsns", missing);
                if obs.trace.is_enabled() {
                    obs.trace.emit_on(
                        spec.id,
                        SimTime::ZERO + penalty,
                        TraceEvent::VaultCatchUp {
                            session: spec.id,
                            node: node as u64,
                            lsns: missing,
                            cost_ns: cost.as_nanos(),
                        },
                    );
                }
            }
        }
        // Membership catch-up: a rejoining node (post-outage or
        // post-upgrade) must cover this session's cor writes to the
        // acked watermark before serving — the stale-replica refusal
        // applied to rejoins. The cost is admitted against the remaining
        // deadline budget or the session fails closed; a rejoiner is
        // never served stale.
        if mstate == MembershipState::CatchingUp {
            let lsns = world.secrets.len() as u64;
            let mut budget = RetryBudget::new(plan.deadline.saturating_sub(penalty));
            match catch_up_within(lsns, &mut budget) {
                Some(cost) => {
                    penalty += cost;
                    catchup_lsns += lsns;
                    obs.metrics.incr("fleet.region.rejoin_catch_ups");
                    obs.metrics.add("vault.catchup_lsns", lsns);
                    if obs.trace.is_enabled() {
                        obs.trace.emit_on(
                            spec.id,
                            SimTime::ZERO + penalty,
                            TraceEvent::VaultCatchUp {
                                session: spec.id,
                                node: node as u64,
                                lsns,
                                cost_ns: cost.as_nanos(),
                            },
                        );
                    }
                }
                None => {
                    obs.metrics.incr("vault.stale_blocked");
                    stale_blocked = true;
                    break;
                }
            }
        }
        // A draining node admits the session but checkpoints it at the
        // first DSM sync past a seeded offset (live migration); a node
        // dying mid-outage does the same involuntarily — its "crash"
        // leaves the DSM-checkpointed state behind for the hand-off.
        if mstate == MembershipState::Draining || dying {
            let dice = SplitMix64::new(
                plan.seed ^ spec.seed ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
            .next_u64();
            let offset = SimDuration::from_millis(1)
                + SimDuration::from_nanos(dice % SimDuration::from_millis(400).as_nanos());
            world.rt.set_drain_at(SimTime::ZERO + offset, world.secrets.clone());
        }
        // Mid-session tenant key rotation: re-sealing this session's
        // vault bytes under the new epoch costs simulated time, charged
        // against the deadline like a replica catch-up. When the budget
        // cannot absorb the re-seal the session fails closed — with
        // reason `revoked_key` if the rotation was forced by a key
        // compromise (the old epoch is revoked; nothing may be served
        // under it), plain `deadline` otherwise.
        if tenancy.enabled() && tf.rotates && !rotation_paid {
            let cost = rotation_cost(world.secrets.len() as u64);
            if penalty + cost > plan.deadline {
                if tf.compromised {
                    obs.metrics.incr("tenant.revoked_blocked");
                    revoked_blocked = true;
                } else {
                    deadline_hit = true;
                }
                break;
            }
            rotation_paid = true;
            penalty += cost;
            obs.metrics.incr("tenant.key_rotations");
            if obs.trace.is_enabled() {
                obs.trace.emit_on(
                    spec.id,
                    SimTime::ZERO + penalty,
                    TraceEvent::TenantKeyRotation {
                        session: spec.id,
                        tenant: spec.tenant,
                        epoch: u64::from(tf.epoch),
                        forced: tf.compromised,
                    },
                );
            }
        }
        apply_session_faults(&mut world.rt, &faults);
        // A checkpoint shipped from a drained/dying source lands here:
        // this node is the migration target, and the replay below resumes
        // from the checkpoint instant (the `credit`).
        if let Some((from_node, bytes)) = pending_migration.take() {
            obs.metrics.incr("fleet.region.migrations_resumed");
            if obs.trace.is_enabled() {
                obs.trace.emit_on(
                    spec.id,
                    SimTime::ZERO + penalty,
                    TraceEvent::Migration {
                        session: spec.id,
                        from_node: from_node as u64,
                        to_node: node as u64,
                        bytes,
                        resume_ns: credit.as_nanos(),
                    },
                );
            }
        }
        if ran_before {
            replays += 1;
            obs.metrics.incr("chaos.replays");
            if obs.trace.is_enabled() {
                obs.trace.emit_on(
                    spec.id,
                    SimTime::ZERO + penalty,
                    TraceEvent::SessionReplay {
                        session: spec.id,
                        node: node as u64,
                        attempt: attempts,
                        resume_ns: credit.as_nanos(),
                    },
                );
            }
        }
        ran_before = true;
        let run = world.rt.run_app(&world.app, Mode::TinMan, &session_inputs());
        // Topology availability columns: what the wire actually did this
        // attempt (all zero on flat worlds).
        let topo = world.rt.world.topology_stats();
        net_handoffs += topo.handoffs;
        net_nat_rewrites += topo.nat_rewrites;
        net_nat_rebinds += topo.nat_rebinds;
        net_dns_faults += topo.dns_failures;
        net_route_drops += topo.route_drops + topo.firewall_drops;
        if world.rt.world.topology_enabled() {
            obs.metrics.add("net.handoff.count", topo.handoffs);
            obs.metrics.add("net.topology.nat_rewrites", topo.nat_rewrites);
            obs.metrics.add("net.topology.dns_failures", topo.dns_failures);
            obs.metrics.add("net.topology.route_drops", topo.route_drops + topo.firewall_drops);
        }
        // Exactly-once accounting: the k-th payload replacement of a
        // deterministic session is byte-identical on every replay, so the
        // origin's (session, seq) dedup reduces to prefix bookkeeping.
        let (_, suppressed) = ledger.record_attempt(world.rt.world.injected_count());
        if suppressed > 0 {
            obs.metrics.add("chaos.dedup_suppressed", suppressed);
            if obs.trace.is_enabled() {
                obs.trace.emit_on(
                    spec.id,
                    SimTime::ZERO + penalty,
                    TraceEvent::DeliveryDedup { session: spec.id, duplicates: suppressed },
                );
            }
        }
        // The invariant is checked on *every* attempt: a crash mid-run
        // must not have left cor plaintext anywhere on the device host.
        for secret in &world.secrets {
            let hits = world.rt.scan_residue(secret).len() as u64;
            if hits > 0 {
                residue_violations += hits;
                obs.metrics.add("chaos.residue_violations", hits);
            }
        }
        // Durability audit on every attempt that was not guard-killed:
        // replay the node's cor writes through a real WAL, inject the
        // projected crash, recover, and byte-compare against the
        // committed-prefix reference. A killed guest's fail-closed
        // teardown discards its cor writes along with its scrubbed heap —
        // nothing durable may survive the kill, so there is nothing to
        // audit (and `wal_plaintexts` stays zero for killed sessions).
        if !matches!(&run, Err(RuntimeError::GuestKilled { .. })) {
            // With tenancy on, the audit runs sealed: the log carries
            // ciphertext under the owning tenant's current-epoch WAL
            // key, and the foreign keyring doubles as the cross-tenant
            // residue probe.
            let audit = if tenancy.enabled() {
                let seal = tenancy.seal_context(spec, tf.epoch);
                audit_session_vault_sealed(
                    &world.rt,
                    &world.secrets,
                    faults.vault_crash,
                    faults.dice_seed,
                    &seal,
                )
            } else {
                audit_session_vault(&world.rt, &world.secrets, faults.vault_crash, faults.dice_seed)
            };
            vault_totals.recoveries += audit.recoveries;
            vault_totals.torn_repairs += audit.torn_repairs;
            vault_totals.lost_cors += audit.lost_cors;
            vault_totals.duplicates += audit.duplicates;
            vault_totals.wal_plaintexts += audit.wal_plaintexts;
            vault_totals.wal_device_leaks += audit.wal_device_leaks;
            vault_totals.cross_tenant_hits += audit.cross_tenant_hits;
            obs.metrics.add("tenant.cross_tenant_residue", audit.cross_tenant_hits);
            obs.metrics.add("vault.recoveries", audit.recoveries);
            obs.metrics.add("vault.torn_repairs", audit.torn_repairs);
            obs.metrics.add("vault.lost_cors", audit.lost_cors);
            obs.metrics.add("vault.appends", audit.appends);
            obs.metrics.add("vault.fsyncs", audit.fsyncs);
            obs.metrics.add("vault.wal_device_leaks", audit.wal_device_leaks);
            if obs.trace.is_enabled() {
                obs.trace.emit_on(
                    spec.id,
                    SimTime::ZERO + penalty,
                    TraceEvent::VaultRecovery {
                        session: spec.id,
                        node: node as u64,
                        applied_lsn: audit.applied_lsn,
                        torn_repaired: audit.torn_repairs > 0,
                        duplicates: audit.duplicates,
                    },
                );
            }
        }
        match run {
            Ok(report) if expect_success(&report, world.workload).is_ok() => {
                // The replay re-simulated the checkpointed prefix; credit
                // it back so latency reflects resume-from-checkpoint.
                let effective = penalty + (report.latency - credit);
                obs.metrics.observe("fleet.session_latency_ns", effective.as_nanos());
                if attempts > 1 {
                    obs.metrics.incr("chaos.success_after_retry");
                }
                let mut out = outcome_from_report(spec, node, attempts, penalty, &report);
                out.latency = effective;
                out.replays = replays;
                out.deliveries = ledger.unique();
                out.duplicate_deliveries = ledger.suppressed();
                out.residue_violations = residue_violations;
                out.vault_recoveries = vault_totals.recoveries;
                out.torn_tail_repairs = vault_totals.torn_repairs;
                out.lost_cors = vault_totals.lost_cors;
                out.vault_catchup_lsns = catchup_lsns;
                out.wal_plaintexts = vault_totals.wal_plaintexts;
                out.wal_device_leaks = vault_totals.wal_device_leaks;
                out.cross_tenant_residue = vault_totals.cross_tenant_hits;
                out.unattested_refusals = unattested_refusals;
                out.tenant_key_rotations = u64::from(rotation_paid);
                out.handoffs = net_handoffs;
                out.nat_rewrites = net_nat_rewrites;
                out.nat_rebinds = net_nat_rebinds;
                out.dns_faults = net_dns_faults;
                out.route_drops = net_route_drops;
                out.migrations = migrations;
                out.evacuations = evacuations;
                out.migration_residue = migration_residue;
                // Served outside the home region: a region failover.
                if !regions.flat() && regions.region_of(node) != home {
                    out.region_failovers = 1;
                    obs.metrics.incr("fleet.region.failovers");
                }
                return out;
            }
            Err(RuntimeError::GuestKilled { reason }) => {
                // A guard kill is deterministic: replaying the same guest
                // on a replica dies the same way, so the kill is terminal
                // and the session fails closed immediately.
                guest_kill = Some(reason);
                obs.metrics.incr("guard.kills");
                obs.metrics.incr(match reason.column() {
                    "fuel" => "guard.fuel_exhausted",
                    "heap" => "guard.heap_exhausted",
                    "depth" => "guard.depth_exhausted",
                    "dsm" => "guard.dsm_exhausted",
                    _ => "guard.deadline_exhausted",
                });
                // The watchdog scrubbed the node heap before returning;
                // verify, counting any surviving cor bytes as violations.
                for secret in &world.secrets {
                    let hits = world.rt.scan_node_residue(secret).len() as u64;
                    if hits > 0 {
                        residue_violations += hits;
                        obs.metrics.add("chaos.residue_violations", hits);
                    }
                }
                penalty += world.rt.clock().now().since(SimTime::ZERO);
                break;
            }
            Err(RuntimeError::NodeDraining { .. }) => {
                // Live migration: the node checkpointed the guest at its
                // DSM sync point and scrubbed its own heap. Audit the
                // scrub receipt and re-scan the node surface (residue is
                // a reportable violation, never assumed zero), prove the
                // serialized state is faithful by round-tripping it, and
                // carry the checkpoint instant as the replay credit for
                // the next admissible peer.
                migrations += 1;
                obs.metrics.incr("fleet.region.migrations");
                if mstate == MembershipState::Draining {
                    evacuations += 1;
                    obs.metrics.incr("fleet.region.evacuations");
                }
                let t_fail = world.rt.clock().now().since(SimTime::ZERO);
                if let Some(cp) = world.rt.take_node_checkpoint() {
                    let mut hits = cp.scrub.residue;
                    for secret in &world.secrets {
                        hits += world.rt.scan_node_residue(secret).len() as u64;
                    }
                    if hits > 0 {
                        migration_residue += hits;
                        obs.metrics.add("fleet.region.migration_residue", hits);
                    }
                    match cp.restore() {
                        Ok(_) => {
                            credit = credit.max(cp.taken_at().since(SimTime::ZERO));
                            pending_migration = Some((node, cp.wire_bytes()));
                        }
                        Err(_) => {
                            // An unfaithful checkpoint is abandoned: the
                            // replay restarts from scratch, never resumes
                            // from guesswork.
                            obs.metrics.incr("fleet.region.checkpoint_corrupt");
                        }
                    }
                }
                // Shipping the checkpoint pays the unified migration
                // backoff (seeded jitter over the failover curve),
                // charged against the same penalty deadline as every
                // other retry.
                let delay = migration_policy(cfg.backoff, plan.seed ^ spec.seed.rotate_left(23))
                    .delay(migration_idx);
                migration_idx += 1;
                penalty += t_fail + delay;
                obs.metrics.add("fleet.backoff_ns", delay.as_nanos());
                emit_failover(obs, spec.id, node, i, penalty, delay);
            }
            other => {
                if matches!(&other, Err(RuntimeError::Dsm(DsmError::SyncTimeout { .. }))) {
                    obs.metrics.incr("chaos.crashes");
                }
                // Where the attempt died on its own timeline: that much
                // simulated time was genuinely burned.
                let t_fail = world.rt.clock().now().since(SimTime::ZERO);
                if let Some(cp) = world.rt.dsm_checkpoint() {
                    credit = credit.max(cp.since(SimTime::ZERO));
                }
                let delay = backoff_delay(cfg.backoff, i as u32);
                penalty += t_fail + delay;
                obs.metrics.add("fleet.backoff_ns", delay.as_nanos());
                emit_failover(obs, spec.id, node, i, penalty, delay);
            }
        }
    }

    let reason = if guest_kill.is_some() {
        "guest_killed"
    } else if stale_blocked {
        "stale_replica"
    } else if revoked_blocked {
        "revoked_key"
    } else if migrations > 0 {
        // The session was checkpointed off a draining or dying node but
        // no attested, caught-up, policy-admissible peer could take it
        // within the deadline: region evacuation fails closed.
        "no_region"
    } else if deadline_hit {
        "deadline"
    } else if unattested_refusals > 0 && !ran_before {
        // Every replica this session could reach failed the attestation
        // challenge; it never ran anywhere.
        "unattested"
    } else {
        "attempts_exhausted"
    };
    obs.metrics.incr("chaos.fail_closed");
    if obs.trace.is_enabled() {
        obs.trace.emit_on(
            spec.id,
            SimTime::ZERO + penalty,
            TraceEvent::FailClosed { session: spec.id, reason },
        );
    }
    let mut out = SessionOutcome::failed(spec.id, attempts, penalty);
    out.fail_closed = true;
    out.replays = replays;
    out.deliveries = ledger.unique();
    out.duplicate_deliveries = ledger.suppressed();
    out.residue_violations = residue_violations;
    out.vault_recoveries = vault_totals.recoveries;
    out.torn_tail_repairs = vault_totals.torn_repairs;
    out.lost_cors = vault_totals.lost_cors;
    out.vault_catchup_lsns = catchup_lsns;
    out.wal_plaintexts = vault_totals.wal_plaintexts;
    out.wal_device_leaks = vault_totals.wal_device_leaks;
    out.cross_tenant_residue = vault_totals.cross_tenant_hits;
    out.unattested_refusals = unattested_refusals;
    out.tenant_key_rotations = u64::from(rotation_paid);
    out.guest_kill = guest_kill;
    out.handoffs = net_handoffs;
    out.nat_rewrites = net_nat_rewrites;
    out.nat_rebinds = net_nat_rebinds;
    out.dns_faults = net_dns_faults;
    out.route_drops = net_route_drops;
    out.migrations = migrations;
    out.evacuations = evacuations;
    out.migration_residue = migration_residue;
    if reason == "no_region" {
        out.no_region = true;
        obs.metrics.incr("fleet.region.no_region_kills");
    }
    out
}

/// [`crate::run_fleet_obs`] under a chaos plan: validates the plan against
/// the (post-clamp) pool, precomputes the deterministic breaker schedule,
/// runs every session through [`execute_with_chaos`], and folds breaker
/// time-in-state into the per-node report rows.
pub fn run_fleet_chaos(
    cfg: &FleetConfig,
    plan: &ChaosPlan,
    obs: &FleetObs,
) -> Result<FleetReport, FleetError> {
    // `cfg.handoff` layers a standing Wi-Fi ↔ 3G storm (the canned
    // "handoff" scenario's parameters) on top of whatever the plan
    // carries, so benches can demand mobility without authoring a plan.
    let mut plan = plan.clone();
    if cfg.handoff {
        plan.events.push(ChaosEvent::HandoffStorm {
            count: 2,
            every: SimDuration::from_millis(700),
            blackout: SimDuration::from_millis(150),
        });
    }
    // `cfg.drain` layers a standing drain of node 0 the same way, so
    // benches can demand live migration without authoring a plan.
    if cfg.drain {
        plan.events.push(ChaosEvent::NodeDrain {
            node: 0,
            from_session: 0,
            until_session: u64::MAX,
        });
    }
    let plan = &plan;
    let specs = build_session_specs(cfg);
    let pool = NodePool::new(cfg.nodes, cfg.node_capacity, &cfg.faults)?;
    plan.validate(pool.len())?;
    surface_clamp(&pool, obs);
    let schedule = BreakerSchedule::build(plan, pool.len(), cfg.sessions as u64);
    let guard = GuardSchedule::build(cfg, &pool, plan, &specs);
    let tenancy = TenantSchedule::build(cfg, pool.len(), plan, &specs);
    let regions = RegionMap::new(cfg.regions, pool.len())?;
    let membership = MembershipSchedule::build(plan, pool.len(), regions)?;
    if obs.trace.is_enabled() {
        for node in 0..pool.len() {
            for (session, from, to) in schedule.transitions(node) {
                obs.trace.emit_on(
                    session,
                    SimTime::ZERO,
                    TraceEvent::BreakerTransition {
                        node: node as u64,
                        session,
                        from: from.as_str(),
                        to: to.as_str(),
                    },
                );
            }
        }
        // Membership transitions, replayed on the session-id axis the
        // same way the breaker's are.
        if membership.has_events() {
            for node in 0..pool.len() {
                let mut prev = MembershipState::Serving;
                for session in 0..cfg.sessions as u64 {
                    let state = membership.state_at(node, session);
                    if state != prev {
                        obs.trace.emit_on(
                            session,
                            SimTime::ZERO,
                            TraceEvent::MembershipTransition {
                                node: node as u64,
                                session,
                                from: prev.as_str(),
                                to: state.as_str(),
                            },
                        );
                        prev = state;
                    }
                }
            }
        }
    }
    let attempts_start = obs.metrics.get("fleet.attempts");
    let failovers_start = obs.metrics.get("fleet.failovers");
    let start = Instant::now();

    let mut outcomes = run_worker_pool(cfg.workers, cfg.queue_depth, specs, |spec| {
        execute_with_chaos(cfg, &pool, &spec, plan, &schedule, &guard, &tenancy, &membership, obs)
    });

    let wall_secs = start.elapsed().as_secs_f64();
    outcomes.sort_by_key(|o| o.id);
    let mut report = FleetReport::aggregate(cfg, &pool, outcomes, wall_secs);
    report.attempts = obs.metrics.get("fleet.attempts") - attempts_start;
    report.failovers = obs.metrics.get("fleet.failovers") - failovers_start;
    // Region mode (the five extra report keys) switches on only when
    // something regional actually happened or was asked for — flat runs
    // keep byte-identical reports.
    report.region_mode = cfg.regions > 1 || cfg.drain || membership.has_events();
    for node in 0..pool.len() {
        let (closed, open, half_open) = schedule.time_in_state(node);
        let row = &mut report.per_node[node];
        row.breaker_closed = closed;
        row.breaker_open = open;
        row.breaker_half_open = half_open;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_chaos::ChaosEvent;

    fn chaos_cfg(sessions: usize, nodes: usize) -> FleetConfig {
        let mut cfg = FleetConfig::new(sessions, 2);
        cfg.nodes = nodes;
        cfg
    }

    #[test]
    fn empty_plan_matches_clean_scheduler_counts() {
        let cfg = chaos_cfg(6, 2);
        let plan = ChaosPlan::empty();
        let chaos = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
        let clean = crate::sched::run_fleet(&cfg).expect("runs");
        assert_eq!(chaos.ok, clean.ok);
        assert_eq!(chaos.failed, 0);
        assert_eq!(chaos.replays, 0);
        assert_eq!(chaos.fail_closed, 0);
        assert_eq!(chaos.duplicate_deliveries, 0);
        assert_eq!(chaos.residue_violations, 0);
        assert_eq!(chaos.offloads, clean.offloads);
        assert_eq!(chaos.dsm_syncs, clean.dsm_syncs);
        assert!(chaos.deliveries > 0, "payload replacements happen and are counted");
    }

    #[test]
    fn bad_plan_is_rejected_before_running() {
        let cfg = chaos_cfg(2, 2);
        let mut plan = ChaosPlan::empty();
        plan.events =
            vec![ChaosEvent::NodeCrash { node: 9, at: SimDuration::ZERO, from_session: 0 }];
        let err = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).unwrap_err();
        assert!(matches!(err, FleetError::ChaosPlan(_)));
        let mut cfg_bad = chaos_cfg(2, 2);
        cfg_bad.faults.down_nodes = vec![5];
        let err = run_fleet_chaos(&cfg_bad, &ChaosPlan::empty(), &FleetObs::default()).unwrap_err();
        assert!(matches!(err, FleetError::FaultPlan(_)));
    }

    #[test]
    fn hostile_plan_kills_sheds_and_stays_clean() {
        let cfg = chaos_cfg(8, 2);
        let plan = ChaosPlan::canned("hostile-guest").expect("canned plan");
        let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
        assert!(report.guest_kills > 0, "hostile guests are killed");
        assert!(report.shed_sessions > 0, "full-ceiling asks overflow node headroom");
        assert_eq!(report.ok, 0, "every session in an all-hostile plan fails");
        assert_eq!(report.fail_closed, report.sessions);
        assert_eq!(
            report.guest_kills + report.shed_sessions,
            report.sessions,
            "each session is either admitted-and-killed or shed"
        );
        assert_eq!(
            report.budget_exhaustions.iter().sum::<u64>(),
            report.guest_kills,
            "every kill lands in exactly one exhaustion column"
        );
        assert_eq!(report.residue_violations, 0, "kills scrub node heaps");
        assert_eq!(report.wal_plaintexts, 0, "killed sessions leave nothing durable");
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.fail_closed && !o.success && (o.guest_kill.is_some() ^ o.shed)));
    }

    #[test]
    fn handoff_plan_is_byte_identical_across_worker_counts() {
        // The acceptance bar: a login fleet with mid-offload Wi-Fi ↔ 3G
        // handoffs produces byte-identical simulated aggregates at 1, 4,
        // and 8 workers, with the handoffs actually exercised.
        let plan = ChaosPlan::canned("handoff").expect("canned plan");
        let mut reference: Option<(String, FleetReport)> = None;
        for workers in [1usize, 4, 8] {
            let mut cfg = chaos_cfg(8, 2);
            cfg.workers = workers;
            cfg.topology = true;
            let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
            let bytes = serde_json::to_string(&report.simulated_value()).unwrap();
            assert!(report.handoffs > 0, "handoff storm fires at {workers} workers");
            assert!(report.nat_rebinds > 0, "NAT bindings re-punch after handoff");
            assert_eq!(report.residue_violations, 0, "handoffs never leave node residue");
            assert!(report.ok > 0, "sessions re-sync and complete across the blackout");
            match &reference {
                None => reference = Some((bytes, report)),
                Some((ref_bytes, _)) => {
                    assert_eq!(&bytes, ref_bytes, "simulated aggregate diverged at {workers}")
                }
            }
        }
    }

    #[test]
    fn nat_traversal_plan_completes_or_fails_closed() {
        // Router crash + NAT table flush + DNS outage: every session
        // either completes (payload replacement traversing the rewritten
        // path) or fails closed — never a leak, never residue.
        let mut cfg = chaos_cfg(8, 2);
        cfg.topology = true;
        let plan = ChaosPlan::canned("nat-traversal").expect("canned plan");
        let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
        assert!(report.nat_rewrites > 0, "phone traffic traverses the NAT gateway");
        assert_eq!(report.residue_violations, 0);
        assert_eq!(report.wal_device_leaks, 0, "vault bytes never reach a device surface");
        assert!(report.dns_faults > 0, "the brownout tail meets the dead resolver");
        assert!(report.outcomes.iter().all(|o| o.success || o.fail_closed));
        assert_eq!(report.ok + report.fail_closed, report.sessions);
    }

    #[test]
    fn flat_fleet_ignores_topology_faults_and_reports_zero_columns() {
        // Without `topology`, router/NAT/DNS families are inert and the
        // availability columns stay zero — the flat report is unchanged.
        let cfg = chaos_cfg(6, 2);
        let plan = ChaosPlan::canned("nat-traversal").expect("canned plan");
        let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
        let clean = run_fleet_chaos(&cfg, &ChaosPlan::empty(), &FleetObs::default()).expect("runs");
        assert_eq!(report.handoffs, 0);
        assert_eq!(report.nat_rewrites, 0);
        assert_eq!(report.nat_rebinds, 0);
        assert_eq!(report.dns_faults, 0);
        assert_eq!(report.route_drops, 0);
        assert_eq!(report.ok, clean.ok, "flat fleets are untouched by topology families");
    }

    #[test]
    fn handoff_flag_layers_storm_onto_empty_plan() {
        let mut cfg = chaos_cfg(4, 2);
        cfg.topology = true;
        cfg.handoff = true;
        let report =
            run_fleet_chaos(&cfg, &ChaosPlan::empty(), &FleetObs::default()).expect("runs");
        assert!(report.handoffs > 0, "--handoff injects the standing storm");
        assert_eq!(report.residue_violations, 0);
    }

    #[test]
    fn standing_drain_live_migrates_and_stays_clean() {
        let mut cfg = chaos_cfg(8, 2);
        cfg.drain = true;
        let report =
            run_fleet_chaos(&cfg, &ChaosPlan::empty(), &FleetObs::default()).expect("runs");
        assert!(report.migrations > 0, "draining node 0 checkpoints in-flight guests");
        assert!(report.evacuations > 0, "a planned drain counts as evacuation");
        assert_eq!(report.migration_residue, 0, "source heaps scrub clean on hand-off");
        assert_eq!(report.residue_violations, 0);
        assert_eq!(report.lost_cors, 0);
        assert_eq!(report.ok + report.fail_closed, report.sessions);
        assert!(report.ok > 0, "migrated sessions resume and complete on the peer");
        assert!(report.region_mode, "--drain flips the report into region mode");
        let value = serde_json::to_string(&report.simulated_value()).unwrap();
        assert!(value.contains("\"migrations\""), "region block present: {value}");
    }

    #[test]
    fn flat_configs_stay_byte_identical_without_membership_events() {
        // The compatibility clause: regions = 1, no drain, no membership
        // events → no region keys, and the report is the clean chaos
        // report byte for byte.
        let cfg = chaos_cfg(6, 2);
        let plan = ChaosPlan::canned("crash-primary").expect("canned plan");
        let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
        assert!(!report.region_mode);
        assert_eq!(report.migrations, 0);
        let value = serde_json::to_string(&report.simulated_value()).unwrap();
        assert!(!value.contains("\"migrations\""), "no region keys on a flat run: {value}");
    }

    #[test]
    fn partitioned_pool_fails_closed_without_leaks() {
        let cfg = chaos_cfg(4, 2);
        let mut plan = ChaosPlan::empty();
        plan.events = (0..2)
            .map(|node| ChaosEvent::Partition { node, from_session: 0, until_session: u64::MAX })
            .collect();
        let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
        assert_eq!(report.ok, 0);
        assert_eq!(report.fail_closed, report.sessions);
        assert_eq!(report.residue_violations, 0, "fail-closed sessions never leak cor bytes");
        assert!(report.outcomes.iter().all(|o| o.fail_closed && !o.success));
    }
}
