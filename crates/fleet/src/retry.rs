//! The fleet's retry surface: one deterministic backoff/budget policy
//! shared by failover, DSM re-sync, vault catch-up, and live migration.
//!
//! The actual machinery lives in `tinman-sim` ([`RetryPolicy`],
//! [`RetryBudget`], [`BackoffShape`]) so the core runtime and the vault
//! can use it without depending on the fleet. This module re-exports it
//! under the fleet's namespace and adds the fleet-specific constructors:
//!
//! - [`failover_policy`](crate::failure::failover_policy) — the
//!   historical failover curve (`base * 2^attempt`, exponent clamped at
//!   16, capped at [`MAX_BACKOFF`](crate::failure::MAX_BACKOFF)), no
//!   jitter, byte-identical to the pre-policy reports.
//! - [`migration_policy`] — the same curve with seeded deterministic
//!   jitter for migration shipping: retransmits of a checkpoint should
//!   not synchronize across a draining region, but the jitter must stay
//!   a pure function of the fleet seed so reports are byte-identical
//!   across worker counts.

pub use tinman_sim::{BackoffShape, RetryBudget, RetryPolicy};

pub use crate::failure::failover_policy;

use tinman_sim::SimDuration;

/// The backoff policy charged against a session's penalty deadline while
/// shipping a migration checkpoint: the failover curve plus seeded
/// jitter (up to 25% extra per attempt). Deterministic — `seed` must
/// derive from the fleet seed and session id only.
pub fn migration_policy(base: SimDuration, seed: u64) -> RetryPolicy {
    failover_policy(base).with_jitter(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_policy_is_the_failover_curve_plus_bounded_jitter() {
        let base = SimDuration::from_millis(250);
        let bare = failover_policy(base);
        let jittered = migration_policy(base, 42);
        for attempt in 0..8 {
            let b = bare.delay(attempt);
            let j = jittered.delay(attempt);
            assert!(j >= b, "jitter only adds");
            assert!(j.as_nanos() <= b.as_nanos() + b.as_nanos() / 4, "at most 25% extra");
            assert_eq!(j, migration_policy(base, 42).delay(attempt), "pure in the seed");
        }
        assert_ne!(
            (0..8).map(|a| migration_policy(base, 1).delay(a)).collect::<Vec<_>>(),
            (0..8).map(|a| migration_policy(base, 2).delay(a)).collect::<Vec<_>>(),
            "different seeds give different jitter streams"
        );
    }
}
