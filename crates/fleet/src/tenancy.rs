//! Fleet-side tenancy: deterministic per-session tenant decisions.
//!
//! Like the chaos `BreakerSchedule` and the guard's `GuardSchedule`,
//! everything tenant-related the executor consults is precomputed here
//! as a pure replay over the session-id axis, so a fleet run with
//! tenancy enabled stays byte-identical across worker counts:
//!
//! - **Policy verdicts** — each session's workload targets one
//!   destination domain; the [`tinman_tenant::TenantPolicyEngine`]
//!   (configured from [`FleetConfig::tenant_deny`] /
//!   [`FleetConfig::tenant_window`]) decides in session-id order
//!   whether that tenant's data may flow there. Denied sessions fail
//!   closed before any attempt runs.
//! - **Attestation** — each node runs the full taint engine unless the
//!   config lists it in [`FleetConfig::unattested_nodes`] (those run
//!   the asymmetric engine). Its quote is checked once; unattested
//!   nodes are refused tenant plaintext placement for every session.
//! - **Key epochs** — [`tinman_chaos::tenant_faults`] projects the
//!   plan's rotation/compromise events onto each (tenant, session), and
//!   [`TenantSchedule::keyring`] derives the sealing keyring for any
//!   (tenant, epoch) from the fleet master seed.

use tinman_chaos::{tenant_faults, ChaosPlan, TenantFaults};
use tinman_taint::EngineKind;
use tinman_tenant::{
    attest_kind, DeclassWindow, TenantId, TenantKeyring, TenantPolicy, TenantPolicyEngine,
};

use crate::spec::{FleetConfig, SessionSpec, WorkloadKind};
use tinman_apps::logins::LoginAppSpec;

/// The destination domain a session's workload declassifies toward —
/// the domain its cors are whitelisted for and its origin server lives
/// on. This is what the tenant policy layer evaluates.
pub fn workload_domain(workload: WorkloadKind) -> &'static str {
    match workload {
        WorkloadKind::Login(idx) => {
            let apps = LoginAppSpec::table3();
            apps[idx % apps.len()].domain
        }
        WorkloadKind::Bankdroid => "citibank.com",
        WorkloadKind::BrowserCheckout => "shop.com",
    }
}

/// The keyrings a sealed durability audit needs: the owning tenant's
/// (which must open everything) and a foreign one (which must open
/// nothing — any hit is cross-tenant residue).
#[derive(Clone, Debug)]
pub struct TenantSealContext {
    /// The keyring that sealed this session's vault bytes.
    pub owner: TenantKeyring,
    /// A keyring the sealed bytes must be opaque to: the next tenant's
    /// same-epoch keyring when the fleet has more than one tenant, the
    /// owner's next epoch otherwise.
    pub foreign: TenantKeyring,
}

/// Deterministic tenant decisions for one fleet run: a pure function of
/// `(config, plan, specs)`, replayed in session-id order at build time.
#[derive(Clone, Debug)]
pub struct TenantSchedule {
    enabled: bool,
    tenants: u64,
    master: u64,
    /// Denial reason per denied session id, session-id order preserved
    /// by construction (only consulted per id).
    denied: Vec<(u64, &'static str)>,
    /// Per-node attestation result.
    attested: Vec<bool>,
    plan: ChaosPlan,
}

impl TenantSchedule {
    /// Builds the schedule. With `cfg.tenants == 0` the schedule is
    /// disabled: nothing is denied, every node passes, and the executor
    /// takes none of its tenancy branches — runs stay byte-identical to
    /// the pre-tenancy fleet.
    pub fn build(
        cfg: &FleetConfig,
        nodes: usize,
        plan: &ChaosPlan,
        specs: &[SessionSpec],
    ) -> TenantSchedule {
        let enabled = cfg.tenants > 0;
        let tenants = cfg.tenants as u64;
        let mut denied = Vec::new();
        if enabled {
            let mut engine = TenantPolicyEngine::new();
            let policy = TenantPolicy {
                allow_domains: Vec::new(),
                deny_domains: cfg.tenant_deny.clone(),
                declass_window: cfg
                    .tenant_window
                    .map(|(window, max)| DeclassWindow { window, max }),
            };
            for t in 0..tenants {
                engine.set_policy(TenantId::new(t), policy.clone());
            }
            for spec in specs {
                let verdict = engine.check(
                    TenantId::new(spec.tenant),
                    workload_domain(spec.workload),
                    spec.id,
                );
                if !verdict.is_allowed() {
                    denied.push((spec.id, verdict.reason()));
                }
            }
        }
        let attested = (0..nodes)
            .map(|n| {
                let kind = if cfg.unattested_nodes.contains(&n) {
                    EngineKind::Asymmetric
                } else {
                    EngineKind::Full
                };
                !enabled || attest_kind(kind)
            })
            .collect();
        TenantSchedule { enabled, tenants, master: cfg.seed, denied, attested, plan: plan.clone() }
    }

    /// True when tenancy is on and the executor must consult the
    /// schedule.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of tenants the fleet round-robins over (0 when disabled).
    pub fn tenants(&self) -> u64 {
        self.tenants
    }

    /// The denial reason for a session whose declassification the
    /// policy engine refused, if any.
    pub fn denial(&self, session: u64) -> Option<&'static str> {
        self.denied.iter().find(|(id, _)| *id == session).map(|(_, r)| *r)
    }

    /// How many sessions the policy layer denies.
    pub fn denial_count(&self) -> usize {
        self.denied.len()
    }

    /// True when `node` proved it runs the full four-class taint engine
    /// (always true with tenancy disabled).
    pub fn attested(&self, node: usize) -> bool {
        self.attested.get(node).copied().unwrap_or(false)
    }

    /// The plan's tenant-key faults projected onto one session.
    pub fn faults(&self, spec: &SessionSpec) -> TenantFaults {
        tenant_faults(&self.plan, self.tenants, spec.tenant, spec.id)
    }

    /// The keyring `tenant` seals under at `epoch`, derived from the
    /// fleet master seed.
    pub fn keyring(&self, tenant: u64, epoch: u32) -> TenantKeyring {
        TenantKeyring::derive(self.master, TenantId::new(tenant), epoch)
    }

    /// The owner + foreign keyring pair for a session's sealed
    /// durability audit. The foreign ring is another tenant's when one
    /// exists, the owner's next (not-yet-current) epoch otherwise —
    /// either way it must fail to authenticate anything the owner
    /// sealed.
    pub fn seal_context(&self, spec: &SessionSpec, epoch: u32) -> TenantSealContext {
        let owner = self.keyring(spec.tenant, epoch);
        let foreign = if self.tenants > 1 {
            self.keyring((spec.tenant + 1) % self.tenants, epoch)
        } else {
            self.keyring(spec.tenant, epoch + 1)
        };
        TenantSealContext { owner, foreign }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_session_specs;
    use tinman_tenant::KeyPurpose;

    #[test]
    fn disabled_schedule_denies_nothing_and_attests_everything() {
        let mut cfg = FleetConfig::new(8, 1);
        cfg.unattested_nodes = vec![0, 1, 2, 3];
        let specs = build_session_specs(&cfg);
        let sched = TenantSchedule::build(&cfg, 4, &ChaosPlan::empty(), &specs);
        assert!(!sched.enabled());
        assert_eq!(sched.denial_count(), 0);
        assert!((0..4).all(|n| sched.attested(n)), "attestation only gates tenancy");
    }

    #[test]
    fn deny_list_denies_matching_workloads_only() {
        let mut cfg = FleetConfig::new(12, 1);
        cfg.tenants = 2;
        cfg.tenant_deny = vec!["shop.com".into()];
        let specs = build_session_specs(&cfg);
        let sched = TenantSchedule::build(&cfg, 4, &ChaosPlan::empty(), &specs);
        assert!(sched.enabled());
        let checkout: Vec<u64> = specs
            .iter()
            .filter(|s| s.workload == WorkloadKind::BrowserCheckout)
            .map(|s| s.id)
            .collect();
        assert!(!checkout.is_empty());
        for id in &checkout {
            assert_eq!(sched.denial(*id), Some("tenant_deny"));
        }
        assert_eq!(sched.denial_count(), checkout.len(), "only checkout targets shop.com");
    }

    #[test]
    fn unattested_nodes_fail_the_gate_when_tenancy_is_on() {
        let mut cfg = FleetConfig::new(4, 1);
        cfg.tenants = 2;
        cfg.unattested_nodes = vec![1];
        let specs = build_session_specs(&cfg);
        let sched = TenantSchedule::build(&cfg, 4, &ChaosPlan::empty(), &specs);
        assert!(sched.attested(0));
        assert!(!sched.attested(1), "the asymmetric engine must not pass attestation");
        assert!(sched.attested(2));
    }

    #[test]
    fn seal_context_owner_and_foreign_never_cross_authenticate() {
        let mut cfg = FleetConfig::new(4, 1);
        cfg.tenants = 2;
        let specs = build_session_specs(&cfg);
        let sched = TenantSchedule::build(&cfg, 4, &ChaosPlan::empty(), &specs);
        for spec in &specs {
            let ctx = sched.seal_context(spec, 0);
            let blob = ctx.owner.seal(KeyPurpose::WalAtRest, spec.id, "secret");
            assert!(ctx.owner.can_authenticate(KeyPurpose::WalAtRest, &blob));
            assert!(!ctx.foreign.can_authenticate(KeyPurpose::WalAtRest, &blob));
        }
        // Single-tenant fleets still get a meaningful foreign ring.
        cfg.tenants = 1;
        let specs = build_session_specs(&cfg);
        let sched = TenantSchedule::build(&cfg, 4, &ChaosPlan::empty(), &specs);
        let ctx = sched.seal_context(&specs[0], 0);
        let blob = ctx.owner.seal(KeyPurpose::WalAtRest, 0, "secret");
        assert!(!ctx.foreign.can_authenticate(KeyPurpose::WalAtRest, &blob));
    }

    #[test]
    fn schedule_is_a_pure_function_of_its_inputs() {
        let mut cfg = FleetConfig::new(16, 1);
        cfg.tenants = 2;
        cfg.tenant_deny = vec!["citibank.com".into()];
        cfg.tenant_window = Some((8, 3));
        let specs = build_session_specs(&cfg);
        let plan = ChaosPlan::canned("tenant-rotation").unwrap();
        let a = TenantSchedule::build(&cfg, 4, &plan, &specs);
        let b = TenantSchedule::build(&cfg, 4, &plan, &specs);
        assert_eq!(a.denied, b.denied);
        assert_eq!(a.attested, b.attested);
        for spec in &specs {
            assert_eq!(a.faults(spec), b.faults(spec));
            assert_eq!(
                a.keyring(spec.tenant, a.faults(spec).epoch),
                b.keyring(spec.tenant, b.faults(spec).epoch)
            );
        }
    }
}
