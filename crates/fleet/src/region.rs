//! Trusted-node regions: grouping pool shards behind a deterministic
//! load-balancer front.
//!
//! A region models a failure domain (a rack, an availability zone, an
//! operator's maintenance unit). Placement becomes two-level: a session's
//! placement key first picks its *home region* (the salted region hash),
//! then the consistent-hash ring picks nodes — but the failover order is
//! stable-partitioned so every home-region node is tried before any
//! foreign-region one. A session served outside its home region is a
//! *region failover* and is counted as such in the fleet report.
//!
//! With `regions <= 1` the map is the identity: [`RegionMap::order`]
//! returns exactly [`NodePool::replica_order`], so flat fleets keep
//! byte-identical reports — the determinism contract's compatibility
//! clause.

use tinman_sim::SplitMix64;

use crate::failure::FleetError;
use crate::pool::NodePool;

/// Salt mixed into the placement key when picking a session's home
/// region, so region choice is independent of ring position.
const REGION_SALT: u64 = 0xd1b5_4a32_d192_ed03;

/// The fleet's region layout: a pure function from node index to region
/// and from placement key to home region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionMap {
    regions: u32,
    nodes: usize,
}

impl RegionMap {
    /// Builds a map of `regions` regions over `nodes` pool shards, nodes
    /// assigned round-robin (`region_of(n) = n % regions`). A region
    /// count of 0 rounds up to 1 (the flat fleet). Fails with
    /// [`FleetError::BadRegion`] when there are more regions than nodes —
    /// an empty region can never serve its share of placements.
    pub fn new(regions: u32, nodes: usize) -> Result<RegionMap, FleetError> {
        let regions = regions.max(1);
        if regions as usize > nodes.max(1) {
            return Err(FleetError::BadRegion {
                region: regions - 1,
                regions: nodes.max(1) as u32,
            });
        }
        Ok(RegionMap { regions, nodes })
    }

    /// Number of regions (≥ 1).
    pub fn regions(&self) -> u32 {
        self.regions
    }

    /// True when the map is the identity (one region = the flat fleet).
    pub fn flat(&self) -> bool {
        self.regions <= 1
    }

    /// The region owning pool shard `node`.
    pub fn region_of(&self, node: usize) -> u32 {
        (node as u32) % self.regions
    }

    /// The pool shards belonging to `region`, in index order.
    pub fn nodes_in(&self, region: u32) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes).filter(move |&n| self.region_of(n) == region)
    }

    /// A session's home region: the salted hash of its placement key.
    /// Independent of ring position so region load is spread even when
    /// the ring happens to cluster.
    pub fn home_region(&self, key: u64) -> u32 {
        (SplitMix64::new(key ^ REGION_SALT).next_u64() % self.regions as u64) as u32
    }

    /// The failover order for a placement key: the pool's ring order,
    /// stable-partitioned by region preference — every node of the home
    /// region first, then each foreign region in rotation order
    /// (`home+1, home+2, …` wrapping), ring order preserved within each
    /// region. Identity (exactly [`NodePool::replica_order`]) when the
    /// map is flat.
    pub fn order(&self, pool: &NodePool, key: u64) -> Vec<usize> {
        let ring = pool.replica_order(key);
        if self.flat() {
            return ring;
        }
        let home = self.home_region(key);
        let mut order = Vec::with_capacity(ring.len());
        for offset in 0..self.regions {
            let region = (home + offset) % self.regions;
            order.extend(ring.iter().copied().filter(|&n| self.region_of(n) == region));
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FaultPlan;

    fn pool(nodes: usize) -> NodePool {
        NodePool::new(nodes, 2, &FaultPlan::default()).unwrap()
    }

    #[test]
    fn flat_map_is_the_identity_order() {
        let pool = pool(4);
        let map = RegionMap::new(1, 4).unwrap();
        assert!(map.flat());
        for key in [0u64, 12345, u64::MAX] {
            assert_eq!(map.order(&pool, key), pool.replica_order(key));
        }
        // regions: 0 rounds up to the flat map.
        assert!(RegionMap::new(0, 4).unwrap().flat());
    }

    #[test]
    fn regions_partition_nodes_round_robin() {
        let map = RegionMap::new(2, 4).unwrap();
        assert_eq!(map.region_of(0), 0);
        assert_eq!(map.region_of(1), 1);
        assert_eq!(map.region_of(2), 0);
        assert_eq!(map.region_of(3), 1);
        assert_eq!(map.nodes_in(0).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(map.nodes_in(1).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn order_prefers_the_home_region_and_covers_all_nodes() {
        let pool = pool(4);
        let map = RegionMap::new(2, 4).unwrap();
        let mut h = SplitMix64::new(3);
        let mut homes = [0usize; 2];
        for _ in 0..200 {
            let key = h.next_u64();
            homes[map.home_region(key) as usize] += 1;
            let order = map.order(&pool, key);
            // Complete cover, no duplicates.
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            // Home-region nodes strictly precede foreign ones.
            let home = map.home_region(key);
            let first_foreign =
                order.iter().position(|&n| map.region_of(n) != home).unwrap_or(order.len());
            assert!(
                order[..first_foreign].iter().all(|&n| map.region_of(n) == home),
                "home region first"
            );
            assert!(
                order[first_foreign..].iter().all(|&n| map.region_of(n) != home),
                "foreign regions after"
            );
            // Ring order preserved within the home region.
            let ring = pool.replica_order(key);
            let ring_home: Vec<usize> =
                ring.iter().copied().filter(|&n| map.region_of(n) == home).collect();
            assert_eq!(&order[..first_foreign], &ring_home[..]);
        }
        // Both regions get picked as home across keys.
        assert!(homes[0] > 0 && homes[1] > 0);
    }

    #[test]
    fn more_regions_than_nodes_is_refused() {
        assert!(matches!(
            RegionMap::new(5, 4),
            Err(FleetError::BadRegion { region: 4, regions: 4 })
        ));
    }
}
