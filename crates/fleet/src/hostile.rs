//! Hostile-guest workloads and guard-aware admission for the fleet.
//!
//! The trusted node is trusted; the guest bytecode it runs is not. This
//! module provides the two fleet-side halves of per-session resource
//! governance:
//!
//! - **Hostile workloads** — [`build_hostile_app`] synthesizes one guest
//!   per [`HostileGuestKind`], each engineered to exhaust exactly one
//!   [`GuardPolicy`] budget on the node: `Spin` burns fuel, `HeapBomb`
//!   doubles a string until the heap quota trips, `DeepRecursion` blows
//!   the call-depth limit, and `SyncFlood` ping-pongs DSM migrations
//!   until the sync budget is gone. [`build_hostile_world`] wraps one in
//!   a hermetic session world with the guard armed.
//! - **Load shedding** — [`GuardSchedule`] replays per-node budget
//!   reservations over the session-id axis (the same pure-projection
//!   trick as the chaos `BreakerSchedule`): each placement reserves its
//!   ask from a sliding window of the node's recent admissions, and a
//!   session whose ask does not fit is shed with reason `overloaded`
//!   before any attempt runs. The schedule is a pure function of
//!   `(config, plan, topology)`, so shedding is identical at any worker
//!   count.

use std::collections::{HashSet, VecDeque};

use tinman_chaos::{session_faults, ChaosEvent, ChaosPlan, HostileGuestKind};
use tinman_guard::{GuardPolicy, KillReason};
use tinman_obs::TraceHandle;
use tinman_sim::LinkProfile;
use tinman_vm::{AppImage, Insn, ProgramBuilder};

use crate::pool::NodePool;
use crate::session::{session_runtime, session_store, SessionNet, SessionWorld};
use crate::spec::{FleetConfig, SessionSpec};

/// The cor description every hostile guest asks for; registered by
/// [`build_hostile_world`] so the guest genuinely carries cor — the
/// post-kill node residue scan has something real to look for.
pub const HOSTILE_COR_DESCRIPTION: &str = "Hostile secret";

/// The guard policy the fleet arms on every session of a hostile run:
/// the default envelope, sized so every legitimate workload in this
/// repository finishes with a wide margin while each hostile guest dies
/// against exactly one budget.
pub fn fleet_policy() -> GuardPolicy {
    GuardPolicy::default()
}

/// The budget each hostile kind is engineered to exhaust first.
pub fn expected_kill(kind: HostileGuestKind) -> KillReason {
    match kind {
        HostileGuestKind::Spin => KillReason::Fuel,
        HostileGuestKind::HeapBomb => KillReason::Heap,
        HostileGuestKind::DeepRecursion => KillReason::Depth,
        HostileGuestKind::SyncFlood => KillReason::DsmSyncs,
    }
}

/// Stable workload name for one hostile kind.
pub fn hostile_workload_name(kind: HostileGuestKind) -> &'static str {
    match kind {
        HostileGuestKind::Spin => "hostile-spin",
        HostileGuestKind::HeapBomb => "hostile-heap-bomb",
        HostileGuestKind::DeepRecursion => "hostile-deep-recursion",
        HostileGuestKind::SyncFlood => "hostile-sync-flood",
    }
}

/// Synthesizes the guest program for one hostile kind. Every program
/// first picks a cor and derives from it (the Figure 11 trigger), so the
/// attack runs *on the trusted node* where the real plaintext lives —
/// that is what makes the guard's scrub-on-kill obligation meaningful.
pub fn build_hostile_app(kind: HostileGuestKind) -> AppImage {
    match kind {
        HostileGuestKind::Spin => build_spin(),
        HostileGuestKind::HeapBomb => build_heap_bomb(),
        HostileGuestKind::DeepRecursion => build_deep_recursion(),
        HostileGuestKind::SyncFlood => build_sync_flood(),
    }
}

/// An infinite tainted-read loop: after the offload it re-reads the cor
/// forever, so taint never idles, no migrate-back happens, and the only
/// way out is the node-side fuel budget.
fn build_spin() -> AppImage {
    let mut p = ProgramBuilder::new("hostile-spin");
    let n_select = p.native("ui.select_cor");
    let s_desc = p.string(HOSTILE_COR_DESCRIPTION);
    let s_bang = p.string("!");
    let main = p.define("main", 0, 2, |b, _| {
        // locals: 0=pw, 1=body
        b.op(Insn::ConstS(s_desc)).op(Insn::CallNative(n_select, 1)).store(0);
        // Tainted derive: triggers the offload, so the burn below runs on
        // the trusted node.
        b.load(0).op(Insn::ConstS(s_bang)).op(Insn::StrConcat).store(1);
        let top = b.label();
        b.bind(top);
        b.load(1).const_i(0).op(Insn::StrCharAt).op(Insn::Pop);
        b.jump(top);
        b.const_i(0).op(Insn::Halt); // unreachable
    });
    p.build(main)
}

/// Doubles a cor-derived string forever. The heap has no GC, so live
/// payload bytes grow geometrically and the byte quota trips after a few
/// dozen iterations — long before fuel would.
fn build_heap_bomb() -> AppImage {
    let mut p = ProgramBuilder::new("hostile-heap-bomb");
    let n_select = p.native("ui.select_cor");
    let s_desc = p.string(HOSTILE_COR_DESCRIPTION);
    let main = p.define("main", 0, 2, |b, _| {
        // locals: 0=pw, 1=body
        b.op(Insn::ConstS(s_desc)).op(Insn::CallNative(n_select, 1)).store(0);
        b.load(0).store(1);
        let top = b.label();
        b.bind(top);
        // body = body + body — the first iteration is the offload trigger.
        b.load(1).load(1).op(Insn::StrConcat).store(1);
        b.jump(top);
        b.const_i(0).op(Insn::Halt); // unreachable
    });
    p.build(main)
}

/// Unbounded self-recursion carrying the tainted cor in every frame, so
/// the stack can never migrate back and depth grows until the call-depth
/// budget trips.
fn build_deep_recursion() -> AppImage {
    let mut p = ProgramBuilder::new("hostile-deep-recursion");
    let n_select = p.native("ui.select_cor");
    let s_desc = p.string(HOSTILE_COR_DESCRIPTION);
    let s_bang = p.string("!");
    let rec = p.declare("rec", 1, 1);
    p.define("rec", 1, 1, |b, _| {
        // Touch the taint in every frame so the guest looks busy, not idle.
        b.load(0).const_i(0).op(Insn::StrCharAt).op(Insn::Pop);
        b.load(0).op(Insn::Call(rec));
        b.op(Insn::Ret);
    });
    let main = p.define("main", 0, 2, |b, _| {
        // locals: 0=pw, 1=body
        b.op(Insn::ConstS(s_desc)).op(Insn::CallNative(n_select, 1)).store(0);
        // Trigger the offload first, so the recursion runs on the node.
        b.load(0).op(Insn::ConstS(s_bang)).op(Insn::StrConcat).store(1);
        b.load(1).op(Insn::Call(rec)).op(Insn::Pop);
        b.const_i(0).op(Insn::Halt); // unreachable
    });
    p.build(main)
}

/// Forces a migration pair on every cycle: the cor is parked in a heap
/// field (locals stay untainted), each cycle pokes it once and then runs
/// a long untainted filler. On the node the filler exceeds the
/// taint-idle limit — migrate back; on the client the next poke is a
/// tainted read — offload again. Two DSM syncs per cycle until the sync
/// budget is gone.
fn build_sync_flood() -> AppImage {
    let mut p = ProgramBuilder::new("hostile-sync-flood");
    let n_select = p.native("ui.select_cor");
    let s_desc = p.string(HOSTILE_COR_DESCRIPTION);
    let cls = p.class("Stash", &["secret"]);
    let main = p.define("main", 0, 5, |b, _| {
        // locals: 0=stash, 1=pw, 2=i, 3=limit, 4=acc
        b.op(Insn::New(cls)).store(0);
        b.op(Insn::ConstS(s_desc)).op(Insn::CallNative(n_select, 1)).store(1);
        // Park the cor in the heap (StackToHeap never triggers) and clear
        // the tainted local so migrate-back is never blocked by a resting
        // tainted slot.
        b.load(0).load(1).op(Insn::PutField(0));
        b.const_i(0).store(1);
        b.const_i(0).store(4);
        let top = b.label();
        b.bind(top);
        // The poke: on the client this tainted read is the re-offload
        // trigger; on the node it just resets the idle counter.
        b.load(0).op(Insn::GetField(0)).const_i(0).op(Insn::StrCharAt).op(Insn::Pop);
        // Untainted filler, comfortably longer than the node's taint-idle
        // limit, with nothing tainted on stack or locals: the node
        // migrates back mid-filler every cycle.
        b.const_i(600).store(3);
        b.for_loop(2, 3, |b| {
            b.load(4).const_i(1).op(Insn::Add).store(4);
        });
        b.jump(top);
        b.const_i(0).op(Insn::Halt); // unreachable
    });
    p.build(main)
}

/// Builds the hermetic world for one hostile session: derives the
/// session's cor exactly like a benign world (same spec ⇒ same secret),
/// registers it, arms the guard, and installs the hostile app. No origin
/// server: these guests never get far enough to talk to one.
pub fn build_hostile_world(
    spec: &SessionSpec,
    kind: HostileGuestKind,
    labels: (u8, u8),
    link: LinkProfile,
    trace: &TraceHandle,
) -> Result<SessionWorld, String> {
    let (mut store, mut stream, runtime_seed) =
        session_store(spec, labels).map_err(|e| e.to_string())?;
    let secret = stream.alphanumeric(16);
    store
        .register(&secret, HOSTILE_COR_DESCRIPTION, &["hostile.example"])
        .ok_or_else(|| "label space exhausted".to_owned())?;
    // Hostile worlds stay on the flat net: the attack targets the node's
    // budgets, not the wire, and the guard verdict must not depend on
    // routing detours.
    let mut rt = session_runtime(store, link, runtime_seed, trace, spec.id, SessionNet::default());
    rt.set_guard(fleet_policy());
    let app = build_hostile_app(kind);
    Ok(SessionWorld { rt, app, workload: hostile_workload_name(kind), secrets: vec![secret] })
}

/// A deterministic replay of per-node budget admission over the
/// session-id axis. Armed only when the plan carries hostile-guest
/// events; unarmed it sheds nothing, so clean and ordinary chaos runs
/// are byte-identical to their pre-guard behavior.
#[derive(Clone, Debug)]
pub struct GuardSchedule {
    armed: bool,
    shed: HashSet<u64>,
}

impl GuardSchedule {
    /// Replays placements in session-id order: each session asks the node
    /// it would be placed on for a (fuel, heap-bytes) reservation — the
    /// full policy ceiling for a hostile guest, the nominal fraction for
    /// a well-behaved one — against a sliding window of the node's last
    /// `node_capacity` placements. An ask that does not fit on either
    /// axis is shed (it still occupies a zero-reservation window slot, so
    /// overload ages out deterministically as the window slides).
    pub fn build(
        cfg: &FleetConfig,
        pool: &NodePool,
        plan: &ChaosPlan,
        specs: &[SessionSpec],
    ) -> GuardSchedule {
        let armed = plan.events.iter().any(|e| matches!(e, ChaosEvent::HostileGuest { .. }));
        let mut shed = HashSet::new();
        if armed {
            let policy = fleet_policy();
            let cap_fuel = policy.fuel.saturating_mul(2);
            let cap_heap = policy.max_heap_bytes.saturating_mul(2);
            let window = cfg.node_capacity.max(1);
            let mut recent: Vec<VecDeque<(u64, u64)>> = vec![VecDeque::new(); pool.len()];
            for spec in specs {
                let node = pool.place(spec.placement_key());
                let faults = session_faults(plan, node, spec.id, spec.seed);
                let ask = if faults.hostile_guest.is_some() {
                    (policy.fuel, policy.max_heap_bytes)
                } else {
                    (policy.nominal_fuel(), policy.nominal_heap_bytes())
                };
                let w = &mut recent[node];
                let (fuel_sum, heap_sum) =
                    w.iter().fold((0u64, 0u64), |(f, h), &(af, ah)| (f + af, h + ah));
                let admit = fuel_sum.saturating_add(ask.0) <= cap_fuel
                    && heap_sum.saturating_add(ask.1) <= cap_heap;
                if w.len() == window {
                    w.pop_front();
                }
                w.push_back(if admit { ask } else { (0, 0) });
                if !admit {
                    shed.insert(spec.id);
                }
            }
        }
        GuardSchedule { armed, shed }
    }

    /// True when the plan carries hostile-guest events: only then does
    /// the executor arm guards and consult shedding at all.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// True if admission shed this session before any attempt.
    pub fn shed(&self, session: u64) -> bool {
        self.shed.contains(&session)
    }

    /// How many sessions the schedule sheds.
    pub fn shed_count(&self) -> usize {
        self.shed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FaultPlan;
    use crate::spec::{build_session_specs, LinkKind};
    use tinman_core::runtime::Mode;
    use tinman_core::RuntimeError;
    use tinman_sim::SimDuration;

    fn spec(id: u64) -> SessionSpec {
        SessionSpec {
            id,
            workload: crate::spec::WorkloadKind::Login(0),
            link: LinkKind::Wifi,
            seed: 42 + id,
            tenant: 0,
        }
    }

    fn run_hostile(kind: HostileGuestKind) -> (RuntimeError, SessionWorld) {
        let s = spec(kind as u64);
        let mut world =
            build_hostile_world(&s, kind, (0, 16), LinkProfile::wifi(), &TraceHandle::noop())
                .expect("world builds");
        let err = world
            .rt
            .run_app(&world.app, Mode::TinMan, &std::collections::HashMap::new())
            .expect_err("hostile guest must not complete");
        (err, world)
    }

    #[test]
    fn each_hostile_kind_is_killed_for_its_own_reason() {
        for kind in [
            HostileGuestKind::Spin,
            HostileGuestKind::HeapBomb,
            HostileGuestKind::DeepRecursion,
            HostileGuestKind::SyncFlood,
        ] {
            let (err, _world) = run_hostile(kind);
            match err {
                RuntimeError::GuestKilled { reason } => {
                    assert_eq!(reason, expected_kill(kind), "{kind:?}");
                }
                other => panic!("{kind:?}: expected a guest kill, got {other:?}"),
            }
        }
    }

    #[test]
    fn killed_guest_leaves_no_cor_bytes_in_node_heaps() {
        for kind in [
            HostileGuestKind::Spin,
            HostileGuestKind::HeapBomb,
            HostileGuestKind::DeepRecursion,
            HostileGuestKind::SyncFlood,
        ] {
            let (_, world) = run_hostile(kind);
            let secret = &world.secrets[0];
            assert!(
                world.rt.scan_node_residue(secret).is_empty(),
                "{kind:?}: node heap must be scrubbed after a kill"
            );
        }
    }

    #[test]
    fn kills_are_deterministic_across_runs() {
        for kind in [HostileGuestKind::Spin, HostileGuestKind::SyncFlood] {
            let (a, wa) = run_hostile(kind);
            let (b, wb) = run_hostile(kind);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert_eq!(
                wa.rt.clock().now().since(tinman_sim::SimTime::ZERO),
                wb.rt.clock().now().since(tinman_sim::SimTime::ZERO),
                "{kind:?}: kill lands at the same simulated instant"
            );
        }
    }

    #[test]
    fn deadline_watchdog_kills_an_overdue_benign_session() {
        let s = spec(0);
        let mut world = crate::session::build_session_world(
            &s,
            (0, 16),
            LinkProfile::wifi(),
            &TraceHandle::noop(),
        )
        .expect("world builds");
        let mut policy = fleet_policy();
        policy.deadline = Some(SimDuration::from_nanos(1));
        world.rt.set_guard(policy);
        let err = world
            .rt
            .run_app(&world.app, Mode::TinMan, &crate::session::session_inputs())
            .expect_err("a 1ns deadline cannot be met");
        match err {
            RuntimeError::GuestKilled { reason } => assert_eq!(reason, KillReason::Deadline),
            other => panic!("expected a deadline kill, got {other:?}"),
        }
        for secret in &world.secrets {
            assert!(world.rt.scan_node_residue(secret).is_empty());
        }
    }

    #[test]
    fn guarded_benign_sessions_complete_normally() {
        let s = spec(3);
        let mut world = crate::session::build_session_world(
            &s,
            (0, 16),
            LinkProfile::wifi(),
            &TraceHandle::noop(),
        )
        .expect("world builds");
        world.rt.set_guard(fleet_policy());
        let report = world
            .rt
            .run_app(&world.app, Mode::TinMan, &crate::session::session_inputs())
            .expect("benign session fits the default envelope");
        crate::session::expect_success(&report, world.workload).expect("succeeds");
    }

    #[test]
    fn schedule_unarmed_for_plans_without_hostile_events() {
        let cfg = FleetConfig::new(8, 1);
        let pool = NodePool::new(cfg.nodes, cfg.node_capacity, &FaultPlan::default()).unwrap();
        let specs = build_session_specs(&cfg);
        let sched = GuardSchedule::build(&cfg, &pool, &ChaosPlan::empty(), &specs);
        assert!(!sched.armed());
        assert_eq!(sched.shed_count(), 0);
    }

    #[test]
    fn all_hostile_plan_sheds_beyond_per_node_headroom() {
        let mut cfg = FleetConfig::new(12, 1);
        cfg.nodes = 4;
        let pool = NodePool::new(cfg.nodes, cfg.node_capacity, &FaultPlan::default()).unwrap();
        let specs = build_session_specs(&cfg);
        let plan = ChaosPlan::canned("hostile-guest").expect("canned plan");
        let sched = GuardSchedule::build(&cfg, &pool, &plan, &specs);
        assert!(sched.armed());
        assert!(sched.shed_count() > 0, "full-ceiling asks must overflow node capacity");
        assert!(sched.shed_count() < specs.len(), "the first asks on each node are admitted");
        // Pure replay: building twice sheds the identical set.
        let again = GuardSchedule::build(&cfg, &pool, &plan, &specs);
        let mut a: Vec<u64> = specs.iter().map(|s| s.id).filter(|&id| sched.shed(id)).collect();
        let mut b: Vec<u64> = specs.iter().map(|s| s.id).filter(|&id| again.shed(id)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
