//! Worker-side session execution: builds a hermetic TinMan world for one
//! device session and runs its workload to completion.
//!
//! Everything here is a pure function of the [`SessionSpec`] plus the
//! placement decided by the pool — runtimes are constructed inside the
//! worker thread (they are not `Send` and never need to be), and two
//! executions of the same spec on the same shard produce identical
//! simulated results on any thread.

use std::collections::{HashMap, HashSet};

use sha2::{Digest, Sha256};
use tinman_apps::bankdroid::{build_bankdroid, SAMPLE_TRANSACTIONS};
use tinman_apps::browser::build_browser_checkout;
use tinman_apps::logins::{build_login_app, LoginAppSpec};
use tinman_apps::servers::{install_auth_server, install_payment_server, AuthServerSpec};
use tinman_cor::CorStore;
use tinman_core::runtime::{Mode, RunReport, TinmanConfig, TinmanRuntime};
use tinman_core::server::HttpsServerApp;
use tinman_guard::KillReason;
use tinman_net::{Addr, NetWorld};
use tinman_obs::TraceHandle;
use tinman_sim::{LinkProfile, SimDuration, SplitMix64};
use tinman_tls::TlsConfig;
use tinman_vm::{AppImage, Value};

use crate::failure::FleetError;
use crate::spec::{LinkKind, SessionSpec, WorkloadKind};

/// What one session contributed to the fleet, all plain data. The
/// simulated fields depend only on (spec, shard, link) — never on worker
/// count or wall-clock interleaving.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The session this outcome belongs to.
    pub id: u64,
    /// Shard that ultimately served the session (`None` if every attempt
    /// found its node down).
    pub node: Option<usize>,
    /// Placements tried (1 = primary served it directly).
    pub attempts: u32,
    /// Whether the workload completed with its expected result.
    pub success: bool,
    /// End-to-end simulated latency, including retry backoff.
    pub latency: SimDuration,
    /// Client→node execution migrations.
    pub offloads: u64,
    /// Method invocations on the trusted node.
    pub node_methods: u64,
    /// Method invocations on the client.
    pub client_methods: u64,
    /// DSM synchronizations.
    pub dsm_syncs: u64,
    /// Client battery energy, microjoules.
    pub energy_uj: u64,
    /// Client radio bytes sent.
    pub tx_bytes: u64,
    /// Client radio bytes received.
    pub rx_bytes: u64,
    /// Checkpoint/replay resumptions after a mid-session crash (chaos
    /// runs only; always 0 under the clean scheduler).
    pub replays: u32,
    /// True if the session exhausted its retry/deadline budget and
    /// degraded to a placeholder-only failure (never leaked a cor).
    pub fail_closed: bool,
    /// Unique payload-replacement deliveries the origin server accepted.
    pub deliveries: u64,
    /// Re-sent deliveries the origin server's dedup suppressed.
    pub duplicate_deliveries: u64,
    /// Cor byte sequences found on a device host by the post-run residue
    /// scan. Must be zero; counted so the invariant is checkable.
    pub residue_violations: u64,
    /// Vault recoveries the session's durability audits ran (chaos runs
    /// only: one per attempt).
    pub vault_recoveries: u64,
    /// Torn WAL tails those recoveries truncated away.
    pub torn_tail_repairs: u64,
    /// Lost-cor incidents: a recovered store diverged from its
    /// committed-prefix reference. Must be zero.
    pub lost_cors: u64,
    /// Attempts served from a vault replica whose watermark did not cover
    /// this session's cor writes. Must be zero: cor-aware failover
    /// catches the replica up or fails closed instead.
    pub stale_serves: u64,
    /// LSNs anti-entropy replayed to lagging replicas on this session's
    /// behalf (the catch-up cost is charged into `latency`).
    pub vault_catchup_lsns: u64,
    /// Session secrets found in vault durable bytes (node side — expected
    /// positive under chaos; plaintext belongs on the trusted node).
    pub wal_plaintexts: u64,
    /// Session secrets found in vault bytes *and* on a device surface.
    /// Must be zero: durability never widens exposure toward the device.
    pub wal_device_leaks: u64,
    /// 1 when the tenant declassification policy denied this session's
    /// flow and it failed closed before any attempt ran.
    pub policy_denials: u64,
    /// Sealed vault bytes a *foreign* tenant's keys could authenticate
    /// in this session's durability audit. Must be zero: tenant key
    /// hierarchies are cryptographically disjoint.
    pub cross_tenant_residue: u64,
    /// Placement attempts refused because the candidate node failed the
    /// taint-engine attestation challenge (tenancy on only).
    pub unattested_refusals: u64,
    /// Tenant key rotations this session paid the re-encryption cost
    /// for (0 or 1).
    pub tenant_key_rotations: u64,
    /// Why the guard killed this session's guest (`None` if it was not
    /// killed). A kill is terminal: the node heap was scrubbed and the
    /// session failed closed without retries.
    pub guest_kill: Option<KillReason>,
    /// True if guard admission shed this session (reason `overloaded`)
    /// before any attempt ran.
    pub shed: bool,
    /// Mid-session mobility handoffs the session's world applied
    /// (topology runs only).
    pub handoffs: u64,
    /// Untrusted-wire segments whose source the NAT gateway rewrote.
    pub nat_rewrites: u64,
    /// NAT bindings transparently re-punched after a handoff.
    pub nat_rebinds: u64,
    /// DNS lookups that failed closed inside an outage window.
    pub dns_faults: u64,
    /// Segments dropped by routing (router down / firewall deny).
    pub route_drops: u64,
    /// Live migrations: checkpointed hand-offs of this session's
    /// in-flight guest from a draining or dying node to a peer.
    pub migrations: u64,
    /// The subset of `migrations` triggered by a *planned* drain (the
    /// source node checkpointed voluntarily at a sync point).
    pub evacuations: u64,
    /// 1 when the session was ultimately served outside its home region
    /// (region mode only).
    pub region_failovers: u64,
    /// Cor bytes found on a source node's heap *after* its migration
    /// scrub. Must be zero: a node hands off its guest clean or not at
    /// all.
    pub migration_residue: u64,
    /// True when the session failed closed because no attested,
    /// caught-up, policy-admissible target existed inside its deadline
    /// after a migration (reason `no_region`).
    pub no_region: bool,
}

impl SessionOutcome {
    /// A failed outcome carrying only the accumulated backoff latency.
    pub fn failed(id: u64, attempts: u32, backoff: SimDuration) -> SessionOutcome {
        SessionOutcome {
            id,
            node: None,
            attempts,
            success: false,
            latency: backoff,
            offloads: 0,
            node_methods: 0,
            client_methods: 0,
            dsm_syncs: 0,
            energy_uj: 0,
            tx_bytes: 0,
            rx_bytes: 0,
            replays: 0,
            fail_closed: false,
            deliveries: 0,
            duplicate_deliveries: 0,
            residue_violations: 0,
            vault_recoveries: 0,
            torn_tail_repairs: 0,
            lost_cors: 0,
            stale_serves: 0,
            vault_catchup_lsns: 0,
            wal_plaintexts: 0,
            wal_device_leaks: 0,
            policy_denials: 0,
            cross_tenant_residue: 0,
            unattested_refusals: 0,
            tenant_key_rotations: 0,
            guest_kill: None,
            shed: false,
            handoffs: 0,
            nat_rewrites: 0,
            nat_rebinds: 0,
            dns_faults: 0,
            route_drops: 0,
            migrations: 0,
            evacuations: 0,
            region_failovers: 0,
            migration_residue: 0,
            no_region: false,
        }
    }
}

/// The base link profile for a session's radio.
pub fn base_link(kind: LinkKind) -> LinkProfile {
    match kind {
        LinkKind::Wifi => LinkProfile::wifi(),
        LinkKind::ThreeG => LinkProfile::three_g(),
    }
}

pub(crate) fn session_inputs() -> HashMap<String, String> {
    HashMap::from([
        ("username".to_owned(), "alice".to_owned()),
        ("amount".to_owned(), "99.95".to_owned()),
    ])
}

/// The per-session derivation stream plus the cor store it seeds. Cors
/// are registered into the store *before* the runtime is built (they are
/// provisioned "in a safe environment in advance", §2.3).
///
/// Fails with [`FleetError::BadLabelRange`] instead of panicking: pool
/// shards carry valid ranges by construction, but membership makes a
/// decommissioned or mis-sliced shard a reachable runtime state and the
/// executor must degrade it to a failover, not abort the worker.
pub(crate) fn session_store(
    spec: &SessionSpec,
    labels: (u8, u8),
) -> Result<(CorStore, SplitMix64, u64), FleetError> {
    let mut stream = SplitMix64::new(spec.seed);
    let store_seed = stream.next_u64();
    let runtime_seed = stream.next_u64();
    let store = CorStore::with_label_range(store_seed, labels.0, labels.1).map_err(|e| {
        FleetError::BadLabelRange { start: labels.0, end: labels.1, reason: e.to_string() }
    })?;
    Ok((store, stream, runtime_seed))
}

/// Network shape for a session world. The default — flat link, no
/// retries — reproduces the historical worlds byte-for-byte.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionNet {
    /// Build the session's world as a routed internet (subnets, routers,
    /// NAT in front of the phone, DNS) instead of the flat link.
    pub topology: bool,
    /// Bounded DSM re-sync retries after a sync timeout (mobility
    /// blackout recovery); 0 surfaces the timeout immediately.
    pub resync_retries: u32,
}

pub(crate) fn session_runtime(
    store: CorStore,
    link: LinkProfile,
    runtime_seed: u64,
    trace: &TraceHandle,
    track: u64,
    net: SessionNet,
) -> TinmanRuntime {
    let config = TinmanConfig {
        seed: runtime_seed,
        topology: net.topology,
        resync_retries: net.resync_retries,
        ..TinmanConfig::default()
    };
    let mut rt = TinmanRuntime::new(store, link, config);
    if trace.is_enabled() {
        rt.set_trace(trace.clone(), track);
    }
    rt
}

/// A bank that expects `sha256(password)` and serves transactions after a
/// successful login on the same connection (the §4.1 server, stateful).
fn install_bank_server(
    world: &mut NetWorld,
    tls: TlsConfig,
    domain: &'static str,
    password: &str,
    think: SimDuration,
) {
    let expected_hash: String =
        Sha256::digest(password.as_bytes()).iter().map(|b| format!("{b:02x}")).collect();
    let mut authed: HashSet<Addr> = HashSet::new();
    let app = HttpsServerApp::new(tls, move |peer: Addr, request: &str| {
        if request.starts_with("GET /transactions") {
            if authed.contains(&peer) {
                (SAMPLE_TRANSACTIONS.to_owned(), think)
            } else {
                ("401 UNAUTHENTICATED".to_owned(), SimDuration::from_millis(10))
            }
        } else {
            let user = request.split('&').find_map(|kv| kv.strip_prefix("user=")).unwrap_or("");
            let pass = request.split('&').find_map(|kv| kv.strip_prefix("pass=")).unwrap_or("");
            if user == "alice" && pass == expected_hash {
                authed.insert(peer);
                ("200 OK welcome".to_owned(), think)
            } else {
                ("403 FORBIDDEN".to_owned(), SimDuration::from_millis(20))
            }
        }
    });
    let host = world.add_host(domain, LinkProfile::ethernet());
    world.install_server(Addr::new(host, 443), Box::new(app));
}

/// Runs one session on the shard owning labels `labels`, over `link`.
/// Returns the runtime's report; the caller folds in placement metadata.
pub fn run_session(
    spec: &SessionSpec,
    labels: (u8, u8),
    link: LinkProfile,
) -> Result<RunReport, String> {
    run_session_traced(spec, labels, link, &TraceHandle::noop())
}

/// A fully built, not-yet-run session world: the hermetic runtime with
/// its origin server installed, the workload's app image, and the secret
/// plaintexts the post-run residue scan must never find on a device host.
///
/// Splitting construction from execution is what makes checkpoint/replay
/// possible: the chaos executor rebuilds the identical world on a replica
/// (same spec ⇒ same secrets, same server, same app) and re-runs it.
pub struct SessionWorld {
    /// The hermetic per-session runtime (client, node, servers, clock).
    pub rt: TinmanRuntime,
    /// The workload's app image.
    pub app: AppImage,
    /// Stable workload name for error messages.
    pub workload: &'static str,
    /// Every cor plaintext this session registered.
    pub secrets: Vec<String>,
}

/// Builds the hermetic world for one session without running it: derives
/// the session's cors, registers them in a store scoped to the shard's
/// label range, installs the origin server, and assembles the app image.
pub fn build_session_world(
    spec: &SessionSpec,
    labels: (u8, u8),
    link: LinkProfile,
    trace: &TraceHandle,
) -> Result<SessionWorld, String> {
    build_session_world_net(spec, labels, link, trace, SessionNet::default())
}

/// [`build_session_world`] with an explicit network shape: a routed
/// topology (NAT, routers, DNS) and/or bounded re-sync retries. The
/// default shape reproduces [`build_session_world`] exactly.
pub fn build_session_world_net(
    spec: &SessionSpec,
    labels: (u8, u8),
    link: LinkProfile,
    trace: &TraceHandle,
    net: SessionNet,
) -> Result<SessionWorld, String> {
    match spec.workload {
        WorkloadKind::Login(idx) => {
            let apps = LoginAppSpec::table3();
            let login = &apps[idx % apps.len()];
            let (mut store, mut stream, runtime_seed) =
                session_store(spec, labels).map_err(|e| e.to_string())?;
            let password = stream.alphanumeric(16);
            store
                .register(&password, login.cor_description, &[login.domain])
                .ok_or_else(|| "label space exhausted".to_owned())?;
            let mut rt = session_runtime(store, link, runtime_seed, trace, spec.id, net);
            let tls = rt.server_tls_config();
            install_auth_server(
                &mut rt.world,
                tls,
                AuthServerSpec {
                    domain: login.domain,
                    user: "alice",
                    password: password.clone(),
                    hash_login: login.hash_login,
                    think: SimDuration::from_millis(300),
                    page_bytes: 60_000,
                },
            );
            let app = build_login_app(login);
            Ok(SessionWorld { rt, app, workload: login.name, secrets: vec![password] })
        }
        WorkloadKind::Bankdroid => {
            let (mut store, mut stream, runtime_seed) =
                session_store(spec, labels).map_err(|e| e.to_string())?;
            let password = stream.alphanumeric(16);
            store
                .register(&password, "Citibank password", &["citibank.com"])
                .ok_or_else(|| "label space exhausted".to_owned())?;
            let mut rt = session_runtime(store, link, runtime_seed, trace, spec.id, net);
            let tls = rt.server_tls_config();
            install_bank_server(
                &mut rt.world,
                tls,
                "citibank.com",
                &password,
                SimDuration::from_millis(150),
            );
            let app = build_bankdroid("citibank.com", "Citibank password");
            Ok(SessionWorld { rt, app, workload: "bankdroid", secrets: vec![password] })
        }
        WorkloadKind::BrowserCheckout => {
            let (mut store, mut stream, runtime_seed) =
                session_store(spec, labels).map_err(|e| e.to_string())?;
            let mut card = String::with_capacity(16);
            for _ in 0..16 {
                card.push(char::from(b'0' + stream.below(10) as u8));
            }
            let mut cvv = String::with_capacity(3);
            for _ in 0..3 {
                cvv.push(char::from(b'0' + stream.below(10) as u8));
            }
            store
                .register(&card, "Visa card number", &["shop.com"])
                .ok_or_else(|| "label space exhausted".to_owned())?;
            store
                .register(&cvv, "Visa security code", &["shop.com"])
                .ok_or_else(|| "label space exhausted".to_owned())?;
            let mut rt = session_runtime(store, link, runtime_seed, trace, spec.id, net);
            let tls = rt.server_tls_config();
            install_payment_server(
                &mut rt.world,
                tls,
                "shop.com",
                &card,
                &cvv,
                SimDuration::from_millis(200),
            );
            let app = build_browser_checkout("shop.com", "Visa card number", "Visa security code");
            Ok(SessionWorld { rt, app, workload: "browser-checkout", secrets: vec![card, cvv] })
        }
    }
}

/// [`run_session`] with a trace sink: the session's runtime events land
/// on track `spec.id`, so a fleet trace shows one row per device session.
/// Tracing never changes the simulated result — the scheduler's
/// determinism tests run with the no-op handle, and the observability
/// integration tests compare traced and untraced reports.
pub fn run_session_traced(
    spec: &SessionSpec,
    labels: (u8, u8),
    link: LinkProfile,
    trace: &TraceHandle,
) -> Result<RunReport, String> {
    let mut world = build_session_world(spec, labels, link, trace)?;
    let report =
        world.rt.run_app(&world.app, Mode::TinMan, &session_inputs()).map_err(|e| e.to_string())?;
    expect_success(&report, world.workload)?;
    Ok(report)
}

pub(crate) fn expect_success(report: &RunReport, workload: &str) -> Result<(), String> {
    if report.result == Value::Int(1) {
        Ok(())
    } else {
        Err(format!("{workload} finished with {:?}, expected Int(1)", report.result))
    }
}

/// Folds a run report plus placement metadata into an outcome row.
pub fn outcome_from_report(
    spec: &SessionSpec,
    node: usize,
    attempts: u32,
    backoff: SimDuration,
    report: &RunReport,
) -> SessionOutcome {
    SessionOutcome {
        id: spec.id,
        node: Some(node),
        attempts,
        success: true,
        latency: report.latency + backoff,
        offloads: report.offloads,
        node_methods: report.node_methods,
        client_methods: report.client_methods,
        dsm_syncs: report.dsm.sync_count,
        energy_uj: report.energy.as_microjoules(),
        tx_bytes: report.traffic.tx_bytes,
        rx_bytes: report.traffic.rx_bytes,
        replays: 0,
        fail_closed: false,
        deliveries: 0,
        duplicate_deliveries: 0,
        residue_violations: 0,
        vault_recoveries: 0,
        torn_tail_repairs: 0,
        lost_cors: 0,
        stale_serves: 0,
        vault_catchup_lsns: 0,
        wal_plaintexts: 0,
        wal_device_leaks: 0,
        policy_denials: 0,
        cross_tenant_residue: 0,
        unattested_refusals: 0,
        tenant_key_rotations: 0,
        guest_kill: None,
        shed: false,
        handoffs: 0,
        nat_rewrites: 0,
        nat_rebinds: 0,
        dns_faults: 0,
        route_drops: 0,
        migrations: 0,
        evacuations: 0,
        region_failovers: 0,
        migration_residue: 0,
        no_region: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FleetConfig, SessionSpec};

    fn spec(id: u64, workload: WorkloadKind) -> SessionSpec {
        SessionSpec { id, workload, link: LinkKind::Wifi, seed: 42 + id, tenant: 0 }
    }

    #[test]
    fn every_workload_family_completes() {
        for (i, w) in [
            WorkloadKind::Login(0),
            WorkloadKind::Login(2),
            WorkloadKind::Bankdroid,
            WorkloadKind::BrowserCheckout,
        ]
        .into_iter()
        .enumerate()
        {
            let s = spec(i as u64, w);
            let report = run_session(&s, (0, 16), LinkProfile::wifi()).expect("session runs");
            assert!(report.offloads >= 1, "{w:?} offloaded");
        }
    }

    #[test]
    fn same_spec_same_shard_is_bit_identical() {
        let s = spec(7, WorkloadKind::Bankdroid);
        let a = run_session(&s, (16, 32), LinkProfile::wifi()).unwrap();
        let b = run_session(&s, (16, 32), LinkProfile::wifi()).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.offloads, b.offloads);
        assert_eq!(a.traffic.tx_bytes, b.traffic.tx_bytes);
        assert_eq!(a.energy.as_microjoules(), b.energy.as_microjoules());
    }

    #[test]
    fn specs_from_config_all_run() {
        let cfg = FleetConfig::new(6, 1);
        for s in crate::spec::build_session_specs(&cfg) {
            let link = base_link(s.link);
            run_session(&s, (0, 16), link).expect("config-derived session runs");
        }
    }
}
