//! The trusted-node pool: label-space sharding, consistent-hash
//! placement, per-node admission control, and health tracking.

use parking_lot::{Condvar, Mutex};
use tinman_sim::SplitMix64;
use tinman_taint::Label;

use crate::failure::{FaultPlan, FaultPlanError, NodeHealth};

/// Virtual points per node on the consistent-hash ring. Enough to spread
/// load within a few percent at fleet scale.
const VNODES: usize = 16;

/// One trusted-node shard: a disjoint slice of the cor label space plus
/// the shared-state the scheduler needs (health, in-flight count).
pub struct NodeShard {
    /// Shard index, `0..nodes`.
    pub id: usize,
    /// Host name sessions connect to.
    pub name: String,
    /// Inclusive lower bound of this shard's label range.
    pub label_start: u8,
    /// Exclusive upper bound of this shard's label range.
    pub label_end: u8,
    health: Mutex<NodeHealth>,
    inflight: Mutex<usize>,
    admit: Condvar,
    capacity: usize,
    /// Highest vault LSN this node has acknowledged as durable. Rejoin
    /// after `Down` is gated on it reaching the pool's high-water mark.
    watermark: Mutex<u64>,
}

/// RAII admission permit: holding one counts against the node's capacity.
pub struct CapacityPermit<'a> {
    shard: &'a NodeShard,
}

impl Drop for CapacityPermit<'_> {
    fn drop(&mut self) {
        let mut inflight = self.shard.inflight.lock();
        *inflight -= 1;
        drop(inflight);
        self.shard.admit.notify_one();
    }
}

impl NodeShard {
    /// Current health.
    pub fn health(&self) -> NodeHealth {
        *self.health.lock()
    }

    /// Sessions currently admitted.
    pub fn inflight(&self) -> usize {
        *self.inflight.lock()
    }

    /// Highest vault LSN this node has acknowledged as durable.
    pub fn watermark(&self) -> u64 {
        *self.watermark.lock()
    }

    /// Blocks until the node has capacity, then admits the caller.
    /// Admission is wall-clock flow control only; it never changes
    /// simulated results.
    pub fn acquire(&self) -> CapacityPermit<'_> {
        let mut inflight = self.inflight.lock();
        while *inflight >= self.capacity {
            self.admit.wait(&mut inflight);
        }
        *inflight += 1;
        CapacityPermit { shard: self }
    }
}

/// Error from [`NodePool::set_health`]: the shard index does not exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoSuchNode {
    /// The out-of-range index the caller passed.
    pub node: usize,
    /// How many shards the pool actually has.
    pub pool_len: usize,
}

impl std::fmt::Display for NoSuchNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no node {} in a pool of {} shards", self.node, self.pool_len)
    }
}

impl std::error::Error for NoSuchNode {}

/// The pool of trusted-node shards a fleet runs against.
pub struct NodePool {
    shards: Vec<NodeShard>,
    /// Consistent-hash ring: `(point, shard)` sorted by point.
    ring: Vec<(u64, usize)>,
    /// The node count the caller asked for, before clamping.
    requested: usize,
}

impl NodePool {
    /// The largest shard count a pool will build: every shard must keep at
    /// least four labels of the cor label space (a session registers one
    /// user cor plus a few derived ones), so with [`Label::MAX_LABELS`]
    /// labels this is `MAX_LABELS / 4`.
    pub fn max_nodes() -> usize {
        (Label::MAX_LABELS as usize) / 4
    }

    /// Builds `nodes` shards partitioning the label space evenly, each
    /// with the given concurrent-session capacity, health-initialized from
    /// the fault plan.
    ///
    /// The shard count is clamped to `1..=`[`NodePool::max_nodes`]. A
    /// clamped request is **not** silent: [`NodePool::requested_nodes`]
    /// and [`NodePool::was_clamped`] expose it, the fleet report carries
    /// `nodes_requested`/`nodes_effective`, and the scheduler emits a
    /// `pool_clamp` trace event when tracing is on.
    ///
    /// Fails with [`FaultPlanError`] if the plan names nodes outside the
    /// *effective* (post-clamp) shard range — a fault plan that silently
    /// does nothing is worse than one that refuses to build.
    pub fn new(
        nodes: usize,
        capacity: usize,
        faults: &FaultPlan,
    ) -> Result<NodePool, FaultPlanError> {
        let n = nodes.clamp(1, NodePool::max_nodes());
        faults.validate(n)?;
        let span = Label::MAX_LABELS as usize;
        let shards: Vec<NodeShard> = (0..n)
            .map(|i| NodeShard {
                id: i,
                name: format!("node{i}.pool.tinman"),
                label_start: (i * span / n) as u8,
                label_end: ((i + 1) * span / n) as u8,
                health: Mutex::new(faults.initial_health(i)),
                inflight: Mutex::new(0),
                admit: Condvar::new(),
                capacity: capacity.max(1),
                watermark: Mutex::new(0),
            })
            .collect();
        let mut ring = Vec::with_capacity(n * VNODES);
        for shard in &shards {
            let mut h = SplitMix64::new(0xf1ee_7000 ^ shard.id as u64);
            for _ in 0..VNODES {
                ring.push((h.next_u64(), shard.id));
            }
        }
        ring.sort_unstable();
        Ok(NodePool { shards, ring, requested: nodes })
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// The shard count the caller asked [`NodePool::new`] for, before
    /// clamping to `1..=`[`NodePool::max_nodes`].
    pub fn requested_nodes(&self) -> usize {
        self.requested
    }

    /// True if the pool is running fewer (or more — `nodes: 0` rounds up
    /// to one) shards than requested.
    pub fn was_clamped(&self) -> bool {
        self.requested != self.shards.len()
    }

    /// True if the pool has no shards (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard at `id`. Panics on an out-of-range index; only safe for
    /// callers iterating `0..len()`. Ring- or schedule-derived indices
    /// must go through [`NodePool::try_shard`].
    pub fn shard(&self, id: usize) -> &NodeShard {
        &self.shards[id]
    }

    /// The shard at `id`, or [`NoSuchNode`] when the index is out of
    /// range. Membership change makes "node vanished mid-call" a real
    /// runtime path — a stale placement order can outlive the shard it
    /// names — so the executors use this instead of panicking.
    pub fn try_shard(&self, id: usize) -> Result<&NodeShard, NoSuchNode> {
        self.shards.get(id).ok_or(NoSuchNode { node: id, pool_len: self.shards.len() })
    }

    /// The primary shard for a placement key: the first ring point at or
    /// after the key, wrapping.
    pub fn place(&self, key: u64) -> usize {
        let i = self.ring.partition_point(|&(p, _)| p < key);
        self.ring[i % self.ring.len()].1
    }

    /// Primary followed by replicas: the distinct shards in ring order
    /// starting at the key. Failover walks this list.
    pub fn replica_order(&self, key: u64) -> Vec<usize> {
        let start = self.ring.partition_point(|&(p, _)| p < key);
        let mut order = Vec::with_capacity(self.shards.len());
        for off in 0..self.ring.len() {
            let shard = self.ring[(start + off) % self.ring.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }

    /// Fault-injection hook: flips a node's health mid-run. Sessions
    /// placed on a `Down` node fail over per their retry schedule.
    ///
    /// A node leaving `Down` does **not** rejoin as serving instantly:
    /// if its vault watermark is behind the pool's high-water mark, the
    /// requested `Healthy`/`Degraded` is downgraded to
    /// [`NodeHealth::CatchingUp`] — some cor binding exists that this
    /// node provably does not hold, so serving would hand sessions a
    /// stale store. [`NodePool::catch_up`] completes the rejoin.
    ///
    /// Returns [`NoSuchNode`] for an out-of-range index instead of
    /// panicking — fault plans are frequently written against the
    /// *requested* node count, which the pool may have clamped down.
    pub fn set_health(&self, node: usize, health: NodeHealth) -> Result<(), NoSuchNode> {
        let shard =
            self.shards.get(node).ok_or(NoSuchNode { node, pool_len: self.shards.len() })?;
        // Read the watermarks before taking the health lock: high_water
        // walks every shard's watermark mutex and must not nest inside
        // this shard's own guard.
        let own = *shard.watermark.lock();
        let behind = own < self.high_water();
        let mut current = shard.health.lock();
        let rejoining = matches!(*current, NodeHealth::Down | NodeHealth::CatchingUp);
        *current =
            if health.can_serve() && rejoining && behind { NodeHealth::CatchingUp } else { health };
        Ok(())
    }

    /// Records that `node`'s vault acknowledged `lsn` as durable. The
    /// watermark is monotonic: stale acknowledgements never regress it.
    pub fn set_watermark(&self, node: usize, lsn: u64) -> Result<(), NoSuchNode> {
        let shard =
            self.shards.get(node).ok_or(NoSuchNode { node, pool_len: self.shards.len() })?;
        let mut w = shard.watermark.lock();
        *w = (*w).max(lsn);
        Ok(())
    }

    /// The pool-wide high-water mark: the highest watermark any shard
    /// has acknowledged. A rejoining node must reach this before serving.
    pub fn high_water(&self) -> u64 {
        self.shards.iter().map(|s| *s.watermark.lock()).max().unwrap_or(0)
    }

    /// Anti-entropy completion for a rejoining node: advances its
    /// watermark to the pool's high-water mark and, if it was gated in
    /// [`NodeHealth::CatchingUp`], promotes it to `Healthy`. Returns the
    /// LSNs the catch-up covered.
    pub fn catch_up(&self, node: usize) -> Result<u64, NoSuchNode> {
        let shard =
            self.shards.get(node).ok_or(NoSuchNode { node, pool_len: self.shards.len() })?;
        let target = self.high_water();
        let mut w = shard.watermark.lock();
        let applied = target.saturating_sub(*w);
        *w = target;
        drop(w);
        let mut health = shard.health.lock();
        if *health == NodeHealth::CatchingUp {
            *health = NodeHealth::Healthy;
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_ranges_partition_the_space() {
        let pool = NodePool::new(4, 2, &FaultPlan::default()).unwrap();
        let mut covered = vec![false; Label::MAX_LABELS as usize];
        for i in 0..pool.len() {
            let s = pool.shard(i);
            assert!(s.label_start < s.label_end);
            for l in s.label_start..s.label_end {
                assert!(!covered[l as usize], "label {l} owned twice");
                covered[l as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "every label owned");
    }

    #[test]
    fn placement_is_deterministic_and_spread() {
        let pool = NodePool::new(4, 2, &FaultPlan::default()).unwrap();
        let mut counts = vec![0usize; pool.len()];
        let mut h = SplitMix64::new(9);
        for _ in 0..4000 {
            let key = h.next_u64();
            let a = pool.place(key);
            assert_eq!(a, pool.place(key), "placement is a pure function");
            counts[a] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 400, "shard {i} got only {c}/4000 sessions");
        }
    }

    #[test]
    fn replica_order_starts_at_primary_and_covers_all() {
        let pool = NodePool::new(3, 2, &FaultPlan::default()).unwrap();
        let order = pool.replica_order(12345);
        assert_eq!(order[0], pool.place(12345));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn capacity_gates_admission() {
        let pool = NodePool::new(1, 2, &FaultPlan::default()).unwrap();
        let s = pool.shard(0);
        let a = s.acquire();
        let _b = s.acquire();
        assert_eq!(s.inflight(), 2);
        drop(a);
        assert_eq!(s.inflight(), 1);
        let _c = s.acquire();
        assert_eq!(s.inflight(), 2);
    }

    #[test]
    fn health_hooks_flip_state() {
        let pool =
            NodePool::new(2, 1, &FaultPlan { down_nodes: vec![1], slow_nodes: vec![] }).unwrap();
        assert_eq!(pool.shard(0).health(), NodeHealth::Healthy);
        assert_eq!(pool.shard(1).health(), NodeHealth::Down);
        pool.set_health(1, NodeHealth::Healthy).unwrap();
        assert_eq!(pool.shard(1).health(), NodeHealth::Healthy);
    }

    #[test]
    fn rejoin_is_gated_on_vault_catch_up() {
        let pool =
            NodePool::new(2, 1, &FaultPlan { down_nodes: vec![1], slow_nodes: vec![] }).unwrap();
        // The surviving node's vault advanced while node 1 was down.
        pool.set_watermark(0, 7).unwrap();
        assert_eq!(pool.high_water(), 7);
        // Rejoin while behind: downgraded to CatchingUp, not serving.
        pool.set_health(1, NodeHealth::Healthy).unwrap();
        assert_eq!(pool.shard(1).health(), NodeHealth::CatchingUp);
        assert!(!pool.shard(1).health().can_serve());
        // Anti-entropy closes the gap and completes the rejoin.
        assert_eq!(pool.catch_up(1).unwrap(), 7);
        assert_eq!(pool.shard(1).watermark(), 7);
        assert_eq!(pool.shard(1).health(), NodeHealth::Healthy);
        // A node already at the high-water mark rejoins directly.
        pool.set_health(1, NodeHealth::Down).unwrap();
        pool.set_health(1, NodeHealth::Healthy).unwrap();
        assert_eq!(pool.shard(1).health(), NodeHealth::Healthy);
    }

    #[test]
    fn watermarks_are_monotonic() {
        let pool = NodePool::new(1, 1, &FaultPlan::default()).unwrap();
        pool.set_watermark(0, 5).unwrap();
        pool.set_watermark(0, 3).unwrap();
        assert_eq!(pool.shard(0).watermark(), 5, "stale acks never regress");
        assert!(pool.set_watermark(9, 1).is_err());
        assert!(pool.catch_up(9).is_err());
    }

    #[test]
    fn healthy_nodes_are_not_demoted_by_set_health() {
        let pool = NodePool::new(2, 1, &FaultPlan::default()).unwrap();
        pool.set_watermark(0, 4).unwrap();
        // Node 1 is behind but was never Down: flipping it Degraded is a
        // link statement, not a rejoin, and must stick.
        pool.set_health(1, NodeHealth::Degraded).unwrap();
        assert_eq!(pool.shard(1).health(), NodeHealth::Degraded);
    }

    #[test]
    fn new_rejects_fault_plans_naming_missing_nodes() {
        let plan = FaultPlan { down_nodes: vec![7], slow_nodes: vec![] };
        let err = NodePool::new(2, 1, &plan).map(|_| ()).unwrap_err();
        assert_eq!(err.bad_down, vec![7]);
        assert_eq!(err.pool_len, 2);
        // Validation runs against the *clamped* size: node 1 exists in a
        // 2-shard pool but not after a 0-node request rounds up to one.
        let one = FaultPlan { down_nodes: vec![1], slow_nodes: vec![] };
        assert!(NodePool::new(0, 1, &one).is_err());
    }

    #[test]
    fn try_shard_rejects_bad_index_without_panicking() {
        let pool = NodePool::new(2, 1, &FaultPlan::default()).unwrap();
        assert!(pool.try_shard(1).is_ok());
        let err = pool.try_shard(9).err().expect("out of range");
        assert_eq!(err, NoSuchNode { node: 9, pool_len: 2 });
    }

    #[test]
    fn set_health_rejects_bad_index_without_panicking() {
        let pool = NodePool::new(2, 1, &FaultPlan::default()).unwrap();
        let err = pool.set_health(7, NodeHealth::Down).unwrap_err();
        assert_eq!(err, NoSuchNode { node: 7, pool_len: 2 });
        assert!(err.to_string().contains("no node 7"));
        // Healthy state untouched by the failed call.
        assert_eq!(pool.shard(0).health(), NodeHealth::Healthy);
        assert_eq!(pool.shard(1).health(), NodeHealth::Healthy);
    }

    #[test]
    fn clamp_is_surfaced_not_silent() {
        let max = NodePool::max_nodes();
        let big = NodePool::new(max + 10, 1, &FaultPlan::default()).unwrap();
        assert_eq!(big.len(), max);
        assert_eq!(big.requested_nodes(), max + 10);
        assert!(big.was_clamped());

        let zero = NodePool::new(0, 1, &FaultPlan::default()).unwrap();
        assert_eq!(zero.len(), 1);
        assert!(zero.was_clamped());

        let exact = NodePool::new(4, 1, &FaultPlan::default()).unwrap();
        assert_eq!(exact.requested_nodes(), 4);
        assert!(!exact.was_clamped());
    }
}
