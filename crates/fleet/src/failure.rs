//! Failure model: per-node health, fault-injection hooks, and the
//! deterministic retry/backoff schedule.

use tinman_sim::{LinkProfile, RetryPolicy, SimDuration};

/// A trusted node's health as the fleet sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeHealth {
    /// Serving normally.
    Healthy,
    /// Serving, but behind a degraded link (sessions still succeed, just
    /// slower).
    Degraded,
    /// Not serving; sessions placed here fail over to a replica.
    Down,
    /// Rejoining after `Down` but its vault watermark is still behind the
    /// pool's high-water mark: not serving until anti-entropy catches it
    /// up. Serving now could hand a session a stale cor store.
    CatchingUp,
}

impl NodeHealth {
    /// Stable lowercase name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Degraded => "degraded",
            NodeHealth::Down => "down",
            NodeHealth::CatchingUp => "catching_up",
        }
    }

    /// True if the scheduler may place a session here. `Down` nodes are
    /// gone; `CatchingUp` nodes are alive but would serve from a cor
    /// store that is provably behind — both fail over to a replica.
    pub fn can_serve(self) -> bool {
        matches!(self, NodeHealth::Healthy | NodeHealth::Degraded)
    }
}

/// Static fault injection applied when the pool is built. Dynamic
/// injection mid-run goes through [`crate::pool::NodePool::set_health`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Nodes that refuse every session (tested by the failover path).
    pub down_nodes: Vec<usize>,
    /// Nodes reachable only over a degraded link.
    pub slow_nodes: Vec<usize>,
}

impl FaultPlan {
    /// True if `node` starts the run down.
    pub fn is_down(&self, node: usize) -> bool {
        self.down_nodes.contains(&node)
    }

    /// True if `node` starts the run behind a slow link.
    pub fn is_slow(&self, node: usize) -> bool {
        self.slow_nodes.contains(&node)
    }

    /// The health a node starts with under this plan.
    pub fn initial_health(&self, node: usize) -> NodeHealth {
        if self.is_down(node) {
            NodeHealth::Down
        } else if self.is_slow(node) {
            NodeHealth::Degraded
        } else {
            NodeHealth::Healthy
        }
    }

    /// Checks every node index against the (effective, post-clamp) pool
    /// size. A plan naming nodes that don't exist used to be silently
    /// ignored — the operator thought they had injected a fault and the
    /// run quietly tested nothing.
    pub fn validate(&self, pool_len: usize) -> Result<(), FaultPlanError> {
        let bad = |ns: &[usize]| -> Vec<usize> {
            let mut v: Vec<usize> = ns.iter().copied().filter(|&n| n >= pool_len).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let bad_down = bad(&self.down_nodes);
        let bad_slow = bad(&self.slow_nodes);
        if bad_down.is_empty() && bad_slow.is_empty() {
            Ok(())
        } else {
            Err(FaultPlanError { bad_down, bad_slow, pool_len })
        }
    }
}

/// A [`FaultPlan`] referenced nodes outside the pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanError {
    /// `down_nodes` entries with no matching shard, sorted and deduped.
    pub bad_down: Vec<usize>,
    /// `slow_nodes` entries with no matching shard, sorted and deduped.
    pub bad_slow: Vec<usize>,
    /// The effective pool size the plan was checked against.
    pub pool_len: usize,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault plan names nodes outside the pool of {} shards: down {:?}, slow {:?}",
            self.pool_len, self.bad_down, self.bad_slow
        )
    }
}

impl std::error::Error for FaultPlanError {}

/// Any error a fleet run can refuse to start with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// The static fault plan names nonexistent nodes.
    FaultPlan(FaultPlanError),
    /// The chaos plan is internally inconsistent or names nonexistent
    /// nodes.
    ChaosPlan(tinman_chaos::ChaosPlanError),
    /// A membership event targets a region outside the configured region
    /// count — the plan would silently test nothing, so refuse loudly.
    BadRegion {
        /// The region the plan named.
        region: u32,
        /// Regions the fleet actually has.
        regions: u32,
    },
    /// A pool operation named a shard that does not exist (membership
    /// makes "node vanished mid-call" reachable; it must surface as a
    /// typed refusal, not a panic).
    NoSuchNode(crate::pool::NoSuchNode),
    /// A shard's cor label range could not back a session store. This
    /// was an `expect` before membership; a decommissioned shard handing
    /// out its range now makes it a real runtime path.
    BadLabelRange {
        /// First label of the rejected range.
        start: u8,
        /// One-past-last label of the rejected range.
        end: u8,
        /// What the cor store objected to.
        reason: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::FaultPlan(e) => write!(f, "{e}"),
            FleetError::ChaosPlan(e) => write!(f, "{e}"),
            FleetError::BadRegion { region, regions } => {
                write!(f, "membership event names region {region} but the fleet has {regions}")
            }
            FleetError::NoSuchNode(e) => write!(f, "{e}"),
            FleetError::BadLabelRange { start, end, reason } => {
                write!(
                    f,
                    "shard label range [{start}, {end}) cannot back a session store: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<FaultPlanError> for FleetError {
    fn from(e: FaultPlanError) -> Self {
        FleetError::FaultPlan(e)
    }
}

impl From<tinman_chaos::ChaosPlanError> for FleetError {
    fn from(e: tinman_chaos::ChaosPlanError) -> Self {
        FleetError::ChaosPlan(e)
    }
}

impl From<crate::pool::NoSuchNode> for FleetError {
    fn from(e: crate::pool::NoSuchNode) -> Self {
        FleetError::NoSuchNode(e)
    }
}

/// Hard ceiling on any single retry delay. Exponential backoff with only
/// a shift clamp still reaches `base * 65536` — for the default 250ms base
/// that is over four simulated hours charged to one session's latency.
/// Thirty seconds is already far past the point where a replica either
/// answered or the session failed.
pub const MAX_BACKOFF: SimDuration = SimDuration::from_secs(30);

/// The fleet failover curve as a shared [`RetryPolicy`]: exponential,
/// shift-clamped at 16, capped at [`MAX_BACKOFF`], no jitter. The
/// zero-jitter construction keeps every pre-existing report
/// byte-identical to the hand-rolled implementation this replaced.
pub fn failover_policy(base: SimDuration) -> RetryPolicy {
    RetryPolicy::exponential(base, 16, Some(MAX_BACKOFF))
}

/// Simulated wait before retry attempt `attempt` (0-based): exponential,
/// `base * 2^attempt`, capped at [`MAX_BACKOFF`]. Purely simulated time —
/// it is added to the session's reported latency, never slept.
/// Delegates to the shared [`RetryPolicy`]; the curve (and therefore
/// every report) is unchanged.
pub fn backoff_delay(base: SimDuration, attempt: u32) -> SimDuration {
    failover_policy(base).delay(attempt as u64)
}

/// The link a session sees when its node is degraded: 4x the round-trip
/// time and a quarter of the goodput of `base`.
pub fn degraded_link(base: &LinkProfile) -> LinkProfile {
    LinkProfile {
        name: "degraded",
        rtt: base.rtt * 4,
        bytes_per_sec: (base.bytes_per_sec / 4).max(1),
        tx_nj_per_byte: base.tx_nj_per_byte,
        rx_nj_per_byte: base.rx_nj_per_byte,
        active_radio_mw: base.active_radio_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential() {
        let base = SimDuration::from_millis(100);
        assert_eq!(backoff_delay(base, 0), SimDuration::from_millis(100));
        assert_eq!(backoff_delay(base, 1), SimDuration::from_millis(200));
        assert_eq!(backoff_delay(base, 3), SimDuration::from_millis(800));
    }

    #[test]
    fn backoff_is_capped() {
        let base = SimDuration::from_millis(250);
        // 250ms << 16 = ~4.5 hours without the ceiling.
        assert_eq!(backoff_delay(base, 16), MAX_BACKOFF);
        assert_eq!(backoff_delay(base, u32::MAX), MAX_BACKOFF);
        // A huge base saturates the multiply instead of wrapping, then caps.
        let huge = SimDuration::from_nanos(u64::MAX);
        assert_eq!(backoff_delay(huge, 8), MAX_BACKOFF);
        // The cap never *raises* a small delay.
        assert!(backoff_delay(base, 2) < MAX_BACKOFF);
    }

    #[test]
    fn serving_is_gated_on_health() {
        assert!(NodeHealth::Healthy.can_serve());
        assert!(NodeHealth::Degraded.can_serve());
        assert!(!NodeHealth::Down.can_serve());
        assert!(!NodeHealth::CatchingUp.can_serve(), "a stale store must not serve");
        assert_eq!(NodeHealth::CatchingUp.as_str(), "catching_up");
    }

    #[test]
    fn fault_plan_maps_to_health() {
        let plan = FaultPlan { down_nodes: vec![1], slow_nodes: vec![2] };
        assert_eq!(plan.initial_health(0), NodeHealth::Healthy);
        assert_eq!(plan.initial_health(1), NodeHealth::Down);
        assert_eq!(plan.initial_health(2), NodeHealth::Degraded);
    }

    #[test]
    fn validate_rejects_out_of_range_nodes() {
        let plan = FaultPlan { down_nodes: vec![0, 5, 5, 9], slow_nodes: vec![1, 4] };
        let err = plan.validate(4).unwrap_err();
        assert_eq!(err.bad_down, vec![5, 9], "sorted and deduped");
        assert_eq!(err.bad_slow, vec![4]);
        assert_eq!(err.pool_len, 4);
        assert!(err.to_string().contains("outside the pool of 4 shards"));
        // In-range plans pass.
        let ok = FaultPlan { down_nodes: vec![0], slow_nodes: vec![3] };
        assert!(ok.validate(4).is_ok());
        assert!(FaultPlan::default().validate(1).is_ok());
    }

    #[test]
    fn degraded_link_is_slower() {
        let wifi = LinkProfile::wifi();
        let slow = degraded_link(&wifi);
        assert!(slow.rtt > wifi.rtt);
        assert!(slow.bytes_per_sec < wifi.bytes_per_sec);
    }
}
