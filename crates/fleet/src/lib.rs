//! **tinman-fleet** — a concurrent session-serving subsystem that drives
//! many deterministic TinMan device sessions against a pool of trusted
//! nodes.
//!
//! The paper evaluates TinMan one device at a time; this crate answers
//! the deployment question: what does a *node* see when it serves
//! thousands of devices? It is built from four parts:
//!
//! - [`pool`] — trusted-node shards partitioning the cor label space,
//!   with consistent-hash placement (a user's cors always land on the
//!   same node), per-node admission control, and health state.
//! - [`spec`] — deterministic generation of session specs (workload,
//!   link, seed) from a single fleet seed.
//! - [`sched`] — the worker-thread scheduler: bounded-queue fan-out with
//!   backpressure, retry-with-backoff failover onto replica shards.
//! - [`report`] — the aggregated [`FleetReport`]: throughput, latency
//!   percentiles, offload totals, per-node utilization, JSON export.
//! - [`chaos_run`] — the chaos scheduler: runs the fleet under a
//!   `tinman-chaos` fault plan with circuit-breaker placement,
//!   checkpoint/replay recovery, exactly-once payload replacement, and
//!   checked fail-closed degradation.
//! - [`vault_audit`] — the per-session durability audit: replays each
//!   session's cor writes through a `tinman-vault` WAL, injects the
//!   plan's crash, recovers, and byte-compares against the
//!   committed-prefix reference (lost cors must be zero).
//! - [`tenancy`] — multi-tenant scheduling: per-tenant declassification
//!   policy verdicts, the taint-engine attestation gate, and
//!   `tinman-tenant` key-hierarchy plumbing (sealed WAL audits, key
//!   epochs from the chaos plan), all precomputed as pure replays so
//!   tenancy keeps the determinism contract.
//! - [`region`] + [`membership`] — trusted-node regions behind a
//!   deterministic load-balancer front, the per-node membership state
//!   machine (drains, outages, rolling upgrades, flapping rejoins), and
//!   the live-migration machinery: a draining or dying node checkpoints
//!   its in-flight guest at a DSM sync point, scrubs its heap, and the
//!   executor resumes the session on an attested peer — or fails it
//!   closed (`no_region`).
//! - [`retry`] — the one deterministic retry/backoff/budget policy
//!   shared by failover, DSM re-sync, vault catch-up, and migration
//!   shipping.
//!
//! # Determinism contract
//!
//! Every session's **simulated** result is a pure function of the fleet
//! seed, the session id, and the static topology (node count, fault
//! plan). Worker count, admission stalls, and OS scheduling affect only
//! the wall-clock fields. Concretely:
//! [`FleetReport::simulated_value`] serializes to identical bytes for
//! `workers = 1` and `workers = 8` — the tests enforce it.

pub mod chaos_run;
pub mod failure;
pub mod hostile;
pub mod membership;
pub mod pool;
pub mod region;
pub mod report;
pub mod retry;
pub mod sched;
pub mod session;
pub mod spec;
pub mod tenancy;
pub mod vault_audit;

pub use chaos_run::{apply_session_faults, execute_with_chaos, run_fleet_chaos};
pub use failure::{
    backoff_delay, degraded_link, failover_policy, FaultPlan, FaultPlanError, FleetError,
    NodeHealth, MAX_BACKOFF,
};
pub use hostile::{
    build_hostile_app, build_hostile_world, expected_kill, fleet_policy, hostile_workload_name,
    GuardSchedule, HOSTILE_COR_DESCRIPTION,
};
pub use membership::{MembershipSchedule, MembershipState, CATCHUP_SESSIONS};
pub use pool::{CapacityPermit, NoSuchNode, NodePool, NodeShard};
pub use region::RegionMap;
pub use report::{FleetReport, LatencyStats, NodeReport};
pub use retry::{migration_policy, BackoffShape, RetryBudget, RetryPolicy};
pub use sched::{
    execute_with_failover, execute_with_failover_obs, run_fleet, run_fleet_obs, FleetObs,
};
pub use session::{
    build_session_world, build_session_world_net, run_session, run_session_traced, SessionNet,
    SessionOutcome, SessionWorld,
};
pub use spec::{build_session_specs, FleetConfig, LinkKind, SessionSpec, WorkloadKind};
pub use tenancy::{workload_domain, TenantSchedule, TenantSealContext};
pub use vault_audit::{audit_session_vault, audit_session_vault_sealed, VaultAudit};
