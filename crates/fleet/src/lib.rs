//! **tinman-fleet** — a concurrent session-serving subsystem that drives
//! many deterministic TinMan device sessions against a pool of trusted
//! nodes.
//!
//! The paper evaluates TinMan one device at a time; this crate answers
//! the deployment question: what does a *node* see when it serves
//! thousands of devices? It is built from four parts:
//!
//! - [`pool`] — trusted-node shards partitioning the cor label space,
//!   with consistent-hash placement (a user's cors always land on the
//!   same node), per-node admission control, and health state.
//! - [`spec`] — deterministic generation of session specs (workload,
//!   link, seed) from a single fleet seed.
//! - [`sched`] — the worker-thread scheduler: bounded-queue fan-out with
//!   backpressure, retry-with-backoff failover onto replica shards.
//! - [`report`] — the aggregated [`FleetReport`]: throughput, latency
//!   percentiles, offload totals, per-node utilization, JSON export.
//!
//! # Determinism contract
//!
//! Every session's **simulated** result is a pure function of the fleet
//! seed, the session id, and the static topology (node count, fault
//! plan). Worker count, admission stalls, and OS scheduling affect only
//! the wall-clock fields. Concretely:
//! [`FleetReport::simulated_value`] serializes to identical bytes for
//! `workers = 1` and `workers = 8` — the tests enforce it.

pub mod failure;
pub mod pool;
pub mod report;
pub mod sched;
pub mod session;
pub mod spec;

pub use failure::{backoff_delay, degraded_link, FaultPlan, NodeHealth, MAX_BACKOFF};
pub use pool::{CapacityPermit, NoSuchNode, NodePool, NodeShard};
pub use report::{FleetReport, LatencyStats, NodeReport};
pub use sched::{
    execute_with_failover, execute_with_failover_obs, run_fleet, run_fleet_obs, FleetObs,
};
pub use session::{run_session, run_session_traced, SessionOutcome};
pub use spec::{build_session_specs, FleetConfig, LinkKind, SessionSpec, WorkloadKind};
