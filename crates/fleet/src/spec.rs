//! Fleet configuration and deterministic session-spec generation.

use tinman_sim::{SimDuration, SplitMix64};

use crate::failure::FaultPlan;

/// Which application a session runs. The fleet cycles through the three
/// workload families the paper evaluates (§4 case studies + §6 logins).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// One of the Table 3 login apps (index into
    /// `LoginAppSpec::table3()`).
    Login(usize),
    /// The §4.1 BankDroid hash-of-password login.
    Bankdroid,
    /// The §4.2 browser checkout with credit-card cors.
    BrowserCheckout,
}

/// The device's radio link for a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Home/office Wi-Fi.
    Wifi,
    /// Cellular 3G.
    ThreeG,
}

/// Everything a worker needs to run one device session, all plain data
/// (`Send`): the runtime itself is constructed inside the worker thread.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Session index, `0..sessions`; doubles as the user identity.
    pub id: u64,
    /// Which app this session runs.
    pub workload: WorkloadKind,
    /// Which link profile the device uses.
    pub link: LinkKind,
    /// Seed for all of this session's randomness (cor plaintexts,
    /// placeholder minting, runtime nonces). Derived from the fleet seed
    /// and `id` only, so results are independent of scheduling.
    pub seed: u64,
    /// Raw tenant number this session belongs to (`id % cfg.tenants`;
    /// 0 when tenancy is disabled). The tenant decides which key
    /// hierarchy seals the session's vault bytes and which
    /// declassification policy governs its flows.
    pub tenant: u64,
}

impl SessionSpec {
    /// The consistent-hash key placing this session's cors on a shard.
    /// Keyed by the user identity *and* tenant, not the arrival order,
    /// so the same user's secrets always live on the same trusted node
    /// and tenants get distinct placement streams (per-tenant
    /// placement). Tenant 0 — including every session when tenancy is
    /// off — preserves the historical single-tenant keying exactly.
    pub fn placement_key(&self) -> u64 {
        SplitMix64::new(
            self.id ^ 0x9e37_79b9_7f4a_7c15 ^ self.tenant.wrapping_mul(0xd6e8_feb8_6659_fd93),
        )
        .next_u64()
    }
}

/// Fleet-wide configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of device sessions to drive.
    pub sessions: usize,
    /// Worker threads executing sessions. Affects wall-clock only; the
    /// simulated aggregate is bit-identical for any worker count.
    pub workers: usize,
    /// Trusted-node shards partitioning the cor label space.
    pub nodes: usize,
    /// Max sessions one node serves concurrently (admission control;
    /// wall-clock only).
    pub node_capacity: usize,
    /// Bound of the dispatch queue — producers block when it fills, which
    /// is the fleet's backpressure.
    pub queue_depth: usize,
    /// Master seed; every per-session seed derives from it.
    pub seed: u64,
    /// Injected faults (downed nodes, slow links).
    pub faults: FaultPlan,
    /// How many placements a session tries (primary + replicas) before it
    /// is reported failed.
    pub max_attempts: u32,
    /// Base simulated retry backoff; attempt `n` waits `base * 2^n`.
    pub backoff: SimDuration,
    /// Number of tenants sessions are round-robined over. 0 disables
    /// tenancy entirely (the historical single-tenant behaviour,
    /// byte-identical reports included); ≥ 1 turns on per-tenant key
    /// hierarchies, sealed vault audits, the declassification policy
    /// layer, and the attestation gate.
    pub tenants: usize,
    /// Node indices that fail the taint-engine attestation challenge
    /// (they run the asymmetric engine instead of the full one). With
    /// tenancy on, these nodes are refused tenant plaintext placement.
    pub unattested_nodes: Vec<usize>,
    /// Domains every tenant's declassification policy denies (suffix
    /// match). Sessions whose workload targets a denied domain fail
    /// closed with reason `policy_denied`.
    pub tenant_deny: Vec<String>,
    /// Optional per-tenant declassification rate window
    /// `(window_sessions, max_declass)` on the session-id axis.
    pub tenant_window: Option<(u64, u32)>,
    /// Run every session's world as a routed internet (subnets, routers,
    /// NAT in front of the phone, a DNS resolver) instead of the flat
    /// link. Required for the `RouterCrash`/`NatTableFlush`/`DnsOutage`/
    /// `HandoffStorm` chaos families to have any effect.
    pub topology: bool,
    /// Schedule a standing Wi-Fi ↔ 3G handoff storm in every session
    /// (two handoffs, the first mid-offload), on top of whatever the
    /// chaos plan injects. Implies nothing unless `topology` is on.
    pub handoff: bool,
    /// Number of regions the node pool is split into behind the
    /// deterministic load-balancer front (round-robin by node index).
    /// 0 or 1 = the flat fleet, byte-identical reports included; ≥ 2
    /// turns on region-salted placement, region-failover accounting,
    /// and the region block in the report.
    pub regions: u32,
    /// Layer a standing drain of node 0 (a `NodeDrain` covering every
    /// session) on top of whatever the chaos plan carries, so benches
    /// can demand live migration without authoring a plan.
    pub drain: bool,
}

impl FleetConfig {
    /// A config with sensible defaults for the given scale.
    pub fn new(sessions: usize, workers: usize) -> Self {
        FleetConfig {
            sessions,
            workers: workers.max(1),
            nodes: 4,
            node_capacity: 8,
            queue_depth: 64,
            seed: 0x7153_1a2b_3c4d_5e6f,
            faults: FaultPlan::default(),
            max_attempts: 3,
            backoff: SimDuration::from_millis(250),
            tenants: 0,
            unattested_nodes: Vec::new(),
            tenant_deny: Vec::new(),
            tenant_window: None,
            topology: false,
            handoff: false,
            regions: 1,
            drain: false,
        }
    }
}

/// The deterministic spec list for a config: workloads cycle through the
/// families, links and seeds come from per-session streams of the master
/// seed. Independent of worker count and of execution order by
/// construction.
pub fn build_session_specs(cfg: &FleetConfig) -> Vec<SessionSpec> {
    (0..cfg.sessions as u64)
        .map(|id| {
            let mut stream = SplitMix64::new(cfg.seed ^ id.wrapping_mul(0xa076_1d64_78bd_642f));
            let workload = match id % 6 {
                0 => WorkloadKind::Login(0),
                1 => WorkloadKind::Login(1),
                2 => WorkloadKind::Login(2),
                3 => WorkloadKind::Login(3),
                4 => WorkloadKind::Bankdroid,
                _ => WorkloadKind::BrowserCheckout,
            };
            let link = if stream.below(4) == 0 { LinkKind::ThreeG } else { LinkKind::Wifi };
            let tenant = if cfg.tenants == 0 { 0 } else { id % cfg.tenants as u64 };
            SessionSpec { id, workload, link, seed: stream.next_u64(), tenant }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic_and_cover_all_workloads() {
        let cfg = FleetConfig::new(24, 4);
        let a = build_session_specs(&cfg);
        let b = build_session_specs(&cfg);
        assert_eq!(a.len(), 24);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.workload, y.workload);
            assert_eq!(x.link, y.link);
            assert_eq!(x.seed, y.seed);
        }
        assert!(a.iter().any(|s| s.workload == WorkloadKind::Bankdroid));
        assert!(a.iter().any(|s| s.workload == WorkloadKind::BrowserCheckout));
        assert!(a.iter().any(|s| matches!(s.workload, WorkloadKind::Login(_))));
    }

    #[test]
    fn tenants_round_robin_and_salt_placement() {
        let mut cfg = FleetConfig::new(8, 1);
        cfg.tenants = 3;
        let specs = build_session_specs(&cfg);
        for s in &specs {
            assert_eq!(s.tenant, s.id % 3);
        }
        // Tenant 0 keeps the historical placement key; other tenants
        // get distinct streams.
        let baseline = build_session_specs(&FleetConfig::new(8, 1));
        assert_eq!(specs[0].placement_key(), baseline[0].placement_key());
        assert_ne!(specs[1].placement_key(), baseline[1].placement_key());
    }

    #[test]
    fn different_fleet_seeds_give_different_session_seeds() {
        let mut a = FleetConfig::new(8, 1);
        let mut b = FleetConfig::new(8, 1);
        a.seed = 1;
        b.seed = 2;
        let sa = build_session_specs(&a);
        let sb = build_session_specs(&b);
        assert!(sa.iter().zip(&sb).any(|(x, y)| x.seed != y.seed));
    }
}
