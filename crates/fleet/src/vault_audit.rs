//! Per-session vault durability audit.
//!
//! After every chaos attempt the executor replays the session's node-side
//! cor writes through a real [`Vault`] on a simulated fsync-barrier disk,
//! injects the crash the chaos plan projected for this `(node, session)`
//! pair, recovers, and byte-compares the recovered store against the
//! committed-prefix reference. Divergence is a **lost-cor incident** — a
//! wrong placeholder↔plaintext binding, the one thing the paper's trusted
//! node may never produce.
//!
//! The audit is hermetic per session (its own disk, its own stores), so
//! it is a pure function of `(node store, crash kind, dice seed)` — the
//! fleet's simulated report stays byte-identical at any worker count.

use tinman_chaos::VaultCrashKind;
use tinman_cor::{CorRecord, CorStore};
use tinman_core::runtime::TinmanRuntime;
use tinman_sim::SplitMix64;
use tinman_tenant::KeyPurpose;
use tinman_vault::{
    CompactionCrash, ReplicatedVault, SimDisk, Vault, VaultOp, SNAP_FILE, SNAP_TMP, WAL_FILE,
};

use crate::tenancy::TenantSealContext;

/// What one session's durability audit observed. All counters, all
/// deterministic; the executor folds them into the session's outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VaultAudit {
    /// Recoveries run (1 per attempt; the audit always recovers).
    pub recoveries: u64,
    /// Torn WAL tails truncated away during recovery.
    pub torn_repairs: u64,
    /// Lost-cor incidents: the recovered store diverged from the
    /// committed-prefix reference, or recovery failed outright. The
    /// acceptance bar is zero.
    pub lost_cors: u64,
    /// Duplicated appends the idempotent LSN apply skipped.
    pub duplicates: u64,
    /// Highest LSN the recovered store reached.
    pub applied_lsn: u64,
    /// Disk appends the audit's vault issued.
    pub appends: u64,
    /// Fsync barriers the audit's vault issued.
    pub fsyncs: u64,
    /// Session secrets found in the vault's durable bytes. Expected
    /// positive fleet-wide: plaintext *belongs* on the trusted node's
    /// disk, which is what makes the device-side scan meaningful.
    pub wal_plaintexts: u64,
    /// Session secrets found in vault bytes **and** on a device surface
    /// by the residue scan. The fail-closed bar is zero: durability must
    /// never widen the exposure surface toward the device.
    pub wal_device_leaks: u64,
    /// Sealed vault blobs a *foreign* tenant's keys authenticated
    /// (sealed audits only). The isolation bar is zero: tenant key
    /// hierarchies must be cryptographically disjoint.
    pub cross_tenant_hits: u64,
}

/// Builds the audit's base store: same label range as the node's, empty.
fn empty_base(store: &CorStore, seed: u64) -> Option<CorStore> {
    let (lo, hi) = store.label_range();
    CorStore::with_label_range(seed, lo, hi).ok()
}

/// Installs `records` into a fresh base — the committed-prefix reference
/// the recovered store must match byte-for-byte.
fn reference_json(store: &CorStore, seed: u64, records: &[CorRecord]) -> Option<String> {
    let mut reference = empty_base(store, seed)?;
    for r in records {
        reference.install_record(r.clone(), r.id.raw() + 1).ok()?;
    }
    reference.to_json().ok()
}

/// Scans the crashed disk's durable bytes for each secret and checks the
/// device side for the same needle: `(in_vault, also_on_device)` counts.
fn scan_vault_bytes(disk: &SimDisk, rt: &TinmanRuntime, secrets: &[String]) -> (u64, u64) {
    let mut hay = String::from_utf8_lossy(disk.read(WAL_FILE)).into_owned();
    hay.push_str(&String::from_utf8_lossy(disk.read(SNAP_FILE)));
    hay.push_str(&String::from_utf8_lossy(disk.read(SNAP_TMP)));
    let mut in_vault = 0u64;
    let mut on_device = 0u64;
    for secret in secrets {
        if hay.contains(secret.as_str()) {
            in_vault += 1;
            if !rt.scan_residue(secret).is_empty() {
                on_device += 1;
            }
        }
    }
    (in_vault, on_device)
}

/// Runs the durability audit for one session attempt: log the node
/// store's records into a vault (committing per record), inject the
/// projected crash, recover, and compare against the committed-prefix
/// reference. Never panics; every internal failure lands in `lost_cors`.
pub fn audit_session_vault(
    rt: &TinmanRuntime,
    secrets: &[String],
    crash: Option<VaultCrashKind>,
    dice_seed: u64,
) -> VaultAudit {
    run_audit(rt, secrets, crash, dice_seed, None)
}

/// The multi-tenant audit: identical crash/recover flow, but every
/// record's plaintext is sealed under the owning tenant's WAL-at-rest
/// key before it touches the log, so the same residue scan that must
/// find plaintext in the single-tenant vault must find **zero** here.
/// After recovery the owner keyring must open every committed blob back
/// to its original plaintext (anything else is a lost cor), the foreign
/// keyring must authenticate none of them (any hit is cross-tenant
/// residue), and a replica ships only ciphertext.
pub fn audit_session_vault_sealed(
    rt: &TinmanRuntime,
    secrets: &[String],
    crash: Option<VaultCrashKind>,
    dice_seed: u64,
    seal: &TenantSealContext,
) -> VaultAudit {
    run_audit(rt, secrets, crash, dice_seed, Some(seal))
}

fn run_audit(
    rt: &TinmanRuntime,
    secrets: &[String],
    crash: Option<VaultCrashKind>,
    dice_seed: u64,
    seal: Option<&TenantSealContext>,
) -> VaultAudit {
    let mut audit = VaultAudit::default();
    let mut dice = SplitMix64::new(dice_seed ^ 0x7a61_1e55_0c0d_e5af);
    let seed = dice.next_u64();
    let store = &rt.node.store;
    let plain_records = store.export_records();
    // With a seal context the log carries ciphertext: each record's
    // plaintext is replaced by its tmt1 blob (nonce bound to the dice
    // seed and record id, so attempts stay deterministic).
    let records: Vec<CorRecord> = match seal {
        Some(ctx) => plain_records
            .iter()
            .map(|r| {
                let mut sealed = r.clone();
                sealed.plaintext = ctx.owner.seal(
                    KeyPurpose::WalAtRest,
                    dice_seed ^ u64::from(r.id.raw()),
                    &r.plaintext,
                );
                sealed
            })
            .collect(),
        None => plain_records.clone(),
    };
    let n = records.len();
    // How much of the log the crash lets become durable: mid-commit and
    // torn-tail cut the final record short; compaction and clean
    // shutdown lose nothing committed.
    let committed_len = match crash {
        Some(VaultCrashKind::MidCommit) | Some(VaultCrashKind::TornTail) => n.saturating_sub(1),
        _ => n,
    };

    let (Some(base), Some(expected)) =
        (empty_base(store, seed), reference_json(store, seed, &records[..committed_len]))
    else {
        audit.lost_cors += 1;
        return audit;
    };
    let Ok(mut vault) = Vault::create(&base) else {
        audit.lost_cors += 1;
        return audit;
    };

    let op = |r: &CorRecord| VaultOp::Put { record: r.clone(), next_id: r.id.raw() + 1 };
    for r in &records[..committed_len] {
        if vault.append(&op(r)).is_err() {
            audit.lost_cors += 1;
            return audit;
        }
        vault.commit();
    }

    let disk = match crash {
        Some(VaultCrashKind::MidCommit) => {
            // The retry path re-sent the last committed frame (its ack
            // was lost) and the power died before the next barrier: a
            // duplicate lands, the staged final record does not.
            vault.inject_duplicate_of_last_committed();
            vault.commit();
            if let Some(last) = records.last() {
                let _ = vault.append(&op(last));
            }
            let mut disk = vault.into_disk();
            disk.crash_losing_pending();
            disk
        }
        Some(VaultCrashKind::TornTail) => {
            // The final append lands as a seeded prefix: a torn write
            // recovery must truncate away.
            if let Some(last) = records.last() {
                let _ = vault.append(&op(last));
            }
            let mut disk = vault.into_disk();
            let pending = disk.pending_bytes(WAL_FILE);
            let budget = if pending > 1 { 1 + dice.below(pending as u64 - 1) as usize } else { 0 };
            disk.crash_keeping(WAL_FILE, budget);
            disk
        }
        Some(VaultCrashKind::Compaction) => {
            // Die at a seeded point inside the snapshot+truncate publish.
            let point =
                CompactionCrash::ALL[dice.below(CompactionCrash::ALL.len() as u64) as usize];
            let Ok(reference) = CorStore::from_json(&expected, seed ^ 1) else {
                audit.lost_cors += 1;
                return audit;
            };
            match vault.compact_crashing_at(&reference, point, dice.next_u64()) {
                Ok(disk) => disk,
                Err(_) => {
                    audit.lost_cors += 1;
                    return audit;
                }
            }
        }
        None => vault.into_disk(),
    };

    let stats = disk.stats();
    audit.appends = stats.appends;
    audit.fsyncs = stats.fsyncs;
    let (in_vault, on_device) = scan_vault_bytes(&disk, rt, secrets);
    audit.wal_plaintexts = in_vault;
    audit.wal_device_leaks = on_device;

    audit.recoveries = 1;
    match Vault::recover(disk, seed ^ 2) {
        Ok(recovered) => {
            audit.torn_repairs = u64::from(recovered.report.torn_tail_repaired);
            audit.duplicates = recovered.report.duplicates;
            audit.applied_lsn = recovered.report.applied_lsn;
            match recovered.store.to_json() {
                Ok(json) if json == expected => {}
                _ => audit.lost_cors += 1,
            }
        }
        Err(_) => audit.lost_cors += 1,
    }

    if let Some(ctx) = seal {
        // Cryptographic isolation check on every committed blob: the
        // owner must round-trip it, the foreign ring must not even
        // authenticate it.
        for (plain, sealed) in plain_records[..committed_len].iter().zip(&records[..committed_len])
        {
            match ctx.owner.open(KeyPurpose::WalAtRest, &sealed.plaintext) {
                Ok(pt) if pt == plain.plaintext => {}
                _ => audit.lost_cors += 1,
            }
            if ctx.foreign.can_authenticate(KeyPurpose::WalAtRest, &sealed.plaintext) {
                audit.cross_tenant_hits += 1;
            }
        }
        // Replica shipping must also stay ciphertext: ship the sealed
        // log to one replica and scan its store image for plaintext.
        match sealed_shipping_leaks(store, seed, &records[..committed_len], secrets) {
            Some(leaks) => audit.wal_plaintexts += leaks,
            None => audit.lost_cors += 1,
        }
    }
    audit
}

/// Ships `records` through a single-replica [`ReplicatedVault`] and
/// counts how many session secrets appear in the replica's store image
/// (`None` when shipping itself fails).
fn sealed_shipping_leaks(
    store: &CorStore,
    seed: u64,
    records: &[CorRecord],
    secrets: &[String],
) -> Option<u64> {
    let base = empty_base(store, seed ^ 3)?;
    let mut replicated = ReplicatedVault::new(&base, 1).ok()?;
    for r in records {
        replicated.append(&VaultOp::Put { record: r.clone(), next_id: r.id.raw() + 1 }).ok()?;
        replicated.commit_and_ship().ok()?;
    }
    let image = replicated.replica_store_json(0).ok()?;
    Some(secrets.iter().filter(|s| image.contains(s.as_str())).count() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::build_session_world;
    use crate::spec::{LinkKind, SessionSpec, WorkloadKind};
    use tinman_core::runtime::Mode;
    use tinman_obs::TraceHandle;
    use tinman_sim::LinkProfile;

    fn ran_world(workload: WorkloadKind) -> crate::session::SessionWorld {
        let spec = SessionSpec { id: 3, workload, link: LinkKind::Wifi, seed: 77, tenant: 0 };
        let mut world =
            build_session_world(&spec, (0, 16), LinkProfile::wifi(), &TraceHandle::noop())
                .expect("world builds");
        world
            .rt
            .run_app(&world.app, Mode::TinMan, &crate::session::session_inputs())
            .expect("session runs");
        world
    }

    #[test]
    fn clean_audit_recovers_exactly() {
        let world = ran_world(WorkloadKind::Bankdroid);
        let audit = audit_session_vault(&world.rt, &world.secrets, None, 0xd1ce);
        assert_eq!(audit.recoveries, 1);
        assert_eq!(audit.lost_cors, 0, "clean shutdown must recover exactly");
        assert_eq!(audit.torn_repairs, 0);
        assert!(audit.wal_plaintexts > 0, "the node-side WAL holds plaintext by design");
        assert_eq!(audit.wal_device_leaks, 0, "vault bytes never reach a device surface");
        assert!(audit.fsyncs > 0, "commit discipline means barriers ran");
    }

    #[test]
    fn every_crash_kind_recovers_without_losing_committed_cors() {
        let world = ran_world(WorkloadKind::BrowserCheckout);
        for kind in
            [VaultCrashKind::MidCommit, VaultCrashKind::TornTail, VaultCrashKind::Compaction]
        {
            for seed in 0..8u64 {
                let audit =
                    audit_session_vault(&world.rt, &world.secrets, Some(kind), 0xabc0 + seed);
                assert_eq!(audit.recoveries, 1, "{kind:?}/{seed}");
                assert_eq!(audit.lost_cors, 0, "{kind:?}/{seed}: committed cors survived");
                assert_eq!(audit.wal_device_leaks, 0, "{kind:?}/{seed}");
            }
        }
    }

    #[test]
    fn torn_tail_is_actually_torn_and_repaired() {
        let world = ran_world(WorkloadKind::Bankdroid);
        let repaired: u64 = (0..16u64)
            .map(|s| {
                audit_session_vault(&world.rt, &world.secrets, Some(VaultCrashKind::TornTail), s)
                    .torn_repairs
            })
            .sum();
        assert!(repaired > 0, "seeded tears must exercise the truncation repair");
    }

    #[test]
    fn mid_commit_duplicates_are_deduped() {
        let world = ran_world(WorkloadKind::Bankdroid);
        let audit =
            audit_session_vault(&world.rt, &world.secrets, Some(VaultCrashKind::MidCommit), 5);
        assert!(audit.duplicates > 0, "the re-sent frame landed and was skipped by LSN");
        assert_eq!(audit.lost_cors, 0);
    }

    #[test]
    fn audit_is_a_pure_function_of_its_inputs() {
        let world = ran_world(WorkloadKind::Login(0));
        let a = audit_session_vault(&world.rt, &world.secrets, Some(VaultCrashKind::TornTail), 9);
        let b = audit_session_vault(&world.rt, &world.secrets, Some(VaultCrashKind::TornTail), 9);
        assert_eq!(a, b);
    }

    fn seal_ctx() -> TenantSealContext {
        use tinman_tenant::{TenantId, TenantKeyring};
        TenantSealContext {
            owner: TenantKeyring::derive(0xfeed, TenantId::new(0), 0),
            foreign: TenantKeyring::derive(0xfeed, TenantId::new(1), 0),
        }
    }

    #[test]
    fn sealed_audit_leaves_no_plaintext_and_no_cross_tenant_residue() {
        let world = ran_world(WorkloadKind::Bankdroid);
        let ctx = seal_ctx();
        let audit = audit_session_vault_sealed(&world.rt, &world.secrets, None, 0xd1ce, &ctx);
        assert_eq!(audit.lost_cors, 0, "owner keyring round-trips every committed blob");
        assert_eq!(audit.wal_plaintexts, 0, "sealed WAL and replica image hold no plaintext");
        assert_eq!(audit.cross_tenant_hits, 0, "foreign keyring authenticates nothing");
        assert_eq!(audit.wal_device_leaks, 0);
        assert_eq!(audit.recoveries, 1);
    }

    #[test]
    fn sealed_audit_survives_every_crash_kind() {
        let world = ran_world(WorkloadKind::BrowserCheckout);
        let ctx = seal_ctx();
        for kind in
            [VaultCrashKind::MidCommit, VaultCrashKind::TornTail, VaultCrashKind::Compaction]
        {
            for seed in 0..4u64 {
                let audit = audit_session_vault_sealed(
                    &world.rt,
                    &world.secrets,
                    Some(kind),
                    0xbee0 + seed,
                    &ctx,
                );
                assert_eq!(audit.lost_cors, 0, "{kind:?}/{seed}");
                assert_eq!(audit.wal_plaintexts, 0, "{kind:?}/{seed}: ciphertext at rest");
                assert_eq!(audit.cross_tenant_hits, 0, "{kind:?}/{seed}");
            }
        }
    }
}
